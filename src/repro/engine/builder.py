"""The fluent query builder: one sentence from question to answer.

    engine.query('(Color ~ "red") AND (Shape ~ "round")').top(10)
    engine.query().using(MINIMUM).strategy("fagin").top(5)
    engine.query(MEDIAN).cursor().next_k(20)

A builder is cheap and immutable-ish: each fluent call returns the
builder itself after recording the option; terminal calls (:meth:`top`,
:meth:`cursor`, :meth:`plan`, :meth:`explain`) hand the accumulated
specification to the engine. Nothing touches a subsystem until a
terminal call runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.aggregation import AggregationFunction
from repro.core.certify import validate_epsilon
from repro.core.query import Query

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.cursor import ResultCursor
    from repro.engine.engine import Engine
    from repro.middleware.plan import PhysicalPlan

__all__ = ["QueryBuilder"]


class QueryBuilder:
    """Accumulates one query's options, then executes through the engine.

    Obtained from :meth:`Engine.query`; not constructed directly.
    """

    def __init__(
        self,
        engine: "Engine",
        query: "str | Query | AggregationFunction | None" = None,
    ) -> None:
        self._engine = engine
        self._query: str | Query | None = None
        self._aggregation: AggregationFunction | None = None
        self._strategy: str | object | None = None
        self._conjunction: str | None = None
        self._adaptive: bool | None = None
        self._epsilon: float | None = None
        if isinstance(query, AggregationFunction):
            # engine.query(MINIMUM) reads naturally for source-backed
            # engines, where the aggregation *is* the whole query.
            self._aggregation = query
        else:
            self._query = query

    # ------------------------------------------------------------------
    # Fluent options
    # ------------------------------------------------------------------

    def using(self, aggregation: AggregationFunction) -> "QueryBuilder":
        """Aggregate with ``aggregation`` (the t of ``Ft(A1..Am)``).

        Required for source-backed engines, where there is no query
        tree to compile an aggregation from.
        """
        if not isinstance(aggregation, AggregationFunction):
            raise TypeError(
                f"using() expects an AggregationFunction, "
                f"got {type(aggregation).__name__}"
            )
        self._aggregation = aggregation
        return self

    def strategy(self, strategy: "str | object") -> "QueryBuilder":
        """Force a strategy instead of auto-selection.

        Accepts a registry name (``"fagin"``, ``"nra"``, ...) — the
        registry then verifies capability, so forcing a random-access
        strategy onto a stream-only workload raises instead of
        silently returning wrong answers — or an already-constructed
        :class:`~repro.algorithms.base.TopKAlgorithm` instance, for
        algorithms tuned through constructor arguments (e.g.
        ``UllmanAlgorithm(sorted_list=1)``); instances validate their
        own preconditions at run time.
        """
        self._strategy = strategy
        return self

    def conjunction(self, mode: str) -> "QueryBuilder":
        """Override the context's conjunction mode (Section 8)."""
        self._conjunction = mode
        return self

    def adaptive(self, enabled: bool = True) -> "QueryBuilder":
        """Opt this query out of (or back into) adaptive planning.

        ``adaptive(False)`` bypasses the engine's plan cache and
        measured-history chooser for this query alone: the static
        planner runs fresh and nothing is recorded. A no-op when the
        context already disabled the adaptive layer engine-wide.
        """
        if not isinstance(enabled, bool):
            raise TypeError(
                f"adaptive() expects a bool, got {type(enabled).__name__}"
            )
        self._adaptive = enabled
        return self

    def epsilon(self, epsilon: float) -> "QueryBuilder":
        """Accept a certified ε-approximate answer (θ/(1+ε) stopping).

        With ``epsilon > 0``, contract-aware algorithms (TA, NRA) may
        stop as soon as the k-th best certified grade is within a
        ``(1 + ε)`` factor of the threshold: every returned item y then
        carries the certificate ``(1 + ε) · μ(y) >= μ(z)`` for every
        excluded z. The result's ``guarantee`` records what was
        actually delivered — algorithms whose termination cannot be
        relaxed (A0's match-count stop) run to completion and deliver
        ``exact``, which satisfies any ε. ``epsilon(0)`` is the exact
        contract and is bit-identical to not calling this at all;
        this per-query value overrides the context's ``epsilon``.
        """
        self._epsilon = validate_epsilon(epsilon)
        return self

    # ------------------------------------------------------------------
    # Terminal operations
    # ------------------------------------------------------------------

    def top(self, k: int | None = None):
        """Execute and return the top-k answer.

        Returns a :class:`~repro.middleware.executor.QueryAnswer` for
        catalog-backed engines (plan + provenance included) and a
        :class:`~repro.algorithms.base.TopKResult` for source-backed
        ones.
        """
        return self._engine._execute(
            query=self._query,
            aggregation=self._aggregation,
            strategy=self._strategy,
            conjunction=self._conjunction,
            k=k,
            adaptive=self._adaptive,
            epsilon=self._epsilon,
        )

    def run(self, k: int | None = None):
        """Alias of :meth:`top` for callers who read better with it."""
        return self.top(k)

    def cursor(self) -> "ResultCursor":
        """Open an incremental cursor instead of a one-shot answer.

        Cursors always page with the incremental Fagin machinery, so
        combining ``.strategy()`` with ``.cursor()`` raises rather
        than silently ignoring the forced strategy.
        """
        return self._engine._open_cursor(
            query=self._query,
            aggregation=self._aggregation,
            strategy=self._strategy,
            conjunction=self._conjunction,
            epsilon=self._epsilon,
        )

    def plan(self) -> "PhysicalPlan":
        """The physical plan this query would execute (no execution)."""
        return self._engine._plan_for(
            query=self._query,
            aggregation=self._aggregation,
            strategy=self._strategy,
            conjunction=self._conjunction,
            adaptive=self._adaptive,
        )

    def explain(self) -> str:
        """Human-readable strategy description (no execution).

        With adaptive planning on, appends the plan-cache state, the
        calibrated cost estimate and the measured history for this
        query's shape.
        """
        return self._engine._explain_spec(
            self._query,
            self._aggregation,
            self._strategy,
            self._conjunction,
            self._adaptive,
            epsilon=self._epsilon,
        )

    def __repr__(self) -> str:
        parts = []
        if self._query is not None:
            parts.append(f"query={self._query!r}")
        if self._aggregation is not None:
            parts.append(f"using={self._aggregation.name}")
        if self._strategy is not None:
            parts.append(f"strategy={self._strategy!r}")
        if self._epsilon is not None:
            parts.append(f"epsilon={self._epsilon:g}")
        return f"QueryBuilder({', '.join(parts)})"
