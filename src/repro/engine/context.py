"""The execution context: one object for every run-time knob.

Before the engine existed, semantics, cost model and planner options
were threaded separately through ``Garlic``, the planner and the
benchmark harness. :class:`ExecutionContext` unifies them: build one,
hand it to :class:`~repro.engine.engine.Engine`, and every query,
cursor and batch executed by that engine shares the same rules —
the same way one Garlic deployment would serve one installation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.access.cost import UNWEIGHTED, CostModel
from repro.core.certify import validate_epsilon
from repro.core.semantics import STANDARD_FUZZY, FuzzySemantics
from repro.engine.adaptive import AdaptiveOptions
from repro.middleware.planner import PlannerOptions

__all__ = ["ExecutionContext"]

#: Conjunction evaluation modes (Section 8): external re-aggregates in
#: the middleware; internal pushes the conjunction into a capable
#: subsystem, whose own semantics then applies.
_CONJUNCTION_MODES = ("external", "internal")


@dataclass(frozen=True)
class ExecutionContext:
    """Everything an engine run needs besides the query itself.

    Attributes
    ----------
    semantics:
        The fuzzy evaluation rules; defaults to the standard min/max/
        (1 - x) rules that Theorem 3.1 singles out.
    cost_model:
        The (c1, c2) access-cost weighting of Section 5; used for
        strategy selection (expensive random access prefers NRA) and
        for pricing results. Defaults to the unweighted model.
    planner:
        Planner tuning (filtered-conjunct threshold, cost-based
        comparison, internal-conjunction opt-in).
    conjunction:
        Default conjunction mode, ``"external"`` or ``"internal"``
        (Section 8); individual queries may override it.
    default_k:
        The k used when a query does not name one (the usual "page
        size" of a deployment).
    batch_size:
        Deployment-wide cap on the federation's negotiated batch size
        (how many ranked objects a subsystem ships per exchange).
        ``None`` — the default — lets each query's subsystems agree
        among themselves
        (:func:`~repro.subsystems.base.negotiate_batch_size`); the
        negotiation still falls back to unit access whenever an
        involved subsystem lacks ``supports_batched_access``, so this
        knob can shrink pages but never force batching on a subsystem
        that cannot serve it.
    adaptive:
        Enable the adaptive planning layer
        (:class:`~repro.engine.adaptive.AdaptivePlanner`): the
        shape-keyed plan cache, the calibrated cost model, and the
        measured-history chooser. On by default; individual queries
        can opt out with ``QueryBuilder.adaptive(False)``.
    adaptive_options:
        Tuning for the adaptive layer (cache capacity, exploration
        cadence, calibration decay).
    epsilon:
        Deployment-wide default approximation slack. 0 (the default)
        keeps every query exact; ε > 0 lets contract-aware algorithms
        stop under the θ/(1+ε) rule, certifying that every returned
        grade is within a (1+ε) factor of anything excluded.
        Individual queries override it with
        ``QueryBuilder.epsilon(...)``.
    """

    semantics: FuzzySemantics = STANDARD_FUZZY
    cost_model: CostModel = UNWEIGHTED
    planner: PlannerOptions = field(default_factory=PlannerOptions)
    conjunction: str = "external"
    default_k: int = 10
    batch_size: int | None = None
    adaptive: bool = True
    adaptive_options: AdaptiveOptions = field(default_factory=AdaptiveOptions)
    epsilon: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "epsilon", validate_epsilon(self.epsilon))
        if self.conjunction not in _CONJUNCTION_MODES:
            raise ValueError(
                f"conjunction must be one of {_CONJUNCTION_MODES}, "
                f"got {self.conjunction!r}"
            )
        if self.default_k < 1:
            raise ValueError(
                f"default_k must be at least 1, got {self.default_k}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be positive (or None), got {self.batch_size}"
            )

    def planner_options(self, conjunction: str | None = None) -> PlannerOptions:
        """Planner options with the conjunction mode folded in."""
        mode = conjunction if conjunction is not None else self.conjunction
        if mode not in _CONJUNCTION_MODES:
            raise ValueError(
                f"conjunction must be one of {_CONJUNCTION_MODES}, "
                f"got {mode!r}"
            )
        options = self.planner
        if mode == "internal" and not options.allow_internal_conjunction:
            options = replace(options, allow_internal_conjunction=True)
        return options

    def but(self, **changes: object) -> "ExecutionContext":
        """A copy with the given fields replaced (fluent tweaks)."""
        return replace(self, **changes)  # type: ignore[arg-type]
