"""The strategy registry: algorithms self-describe, selection is lookup.

The paper establishes a small decision table (Sections 4, 6, 7 and
Remark 6.1) mapping query shape to the best applicable algorithm:

* standard fuzzy **disjunction** (max) — algorithm B0, cost m*k
  (Theorem 4.5, Remark 6.1);
* **median** aggregation, m >= 3 — the Remark 6.1 construction,
  cost O(sqrt(N*k)) for m = 3;
* standard fuzzy **conjunction** (min) — algorithm A0' (Theorem 4.4),
  a constant factor cheaper than A0 in random accesses;
* any other **monotone** query — algorithm A0 (Theorem 4.2);
* anything else (negation, non-monotone aggregations) — only the naive
  full scan is guaranteed correct (and for Q AND NOT Q, Theorem 7.1
  shows nothing asymptotically better exists).

Instead of hard-coding that table in one function, each algorithm
module registers itself here with **capability metadata** (is it
restricted to monotone queries? does it need random access? which
aggregations does it accept?) plus, for table members, a *selector*
that claims a workload with a paper-grounded justification.
:func:`select_strategy` walks the registrations in priority order —
the table is now a registry lookup, and new algorithms join it by
registering, not by editing a selection function.

Users can also force a strategy by name through
``Engine.query(...).strategy("fagin")``; :func:`capable_strategies`
answers "which registered strategies could run this workload at all?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.access.cost import CostModel
from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps imports acyclic
    from repro.algorithms.base import TopKAlgorithm
    from repro.core.aggregation import AggregationFunction

__all__ = [
    "EXPENSIVE_RANDOM_ACCESS_RATIO",
    "StrategyCapabilities",
    "StrategyRegistration",
    "StrategyChoice",
    "UnknownStrategyError",
    "register_strategy",
    "get_registration",
    "create_strategy",
    "available_strategies",
    "capable_strategies",
    "batch_aware_strategies",
    "select_strategy",
    "estimate_access_costs",
]

#: An access-count envelope: ``(num_objects, num_lists, k) ->
#: (estimated sorted accesses, estimated random accesses)``. Coarse by
#: design — paper-grounded expected-case formulas (Theorem 5.3's depth
#: envelope and the per-algorithm access patterns), used by the
#: adaptive chooser to rank candidates and bound exploration, never to
#: certify a cost.
CostEstimator = Callable[[int, int, int], tuple[float, float]]


def envelope_depth(num_objects: int, num_lists: int, k: int) -> float:
    """Theorem 5.3's expected sorted depth ``N^((m-1)/m) * k^(1/m)``.

    The per-list depth at which the top-k intersection is expected to
    close on independently-drawn lists — the common building block of
    the registered access-count envelopes.
    """
    if num_lists <= 1:
        return float(k)
    return float(num_objects) ** ((num_lists - 1) / num_lists) * float(
        k
    ) ** (1 / num_lists)

#: If random access costs at least this many times a sorted access
#: (c2/c1), prefer the sorted-only NRA for monotone queries. The E16
#: benchmark calibrates this heuristic: NRA's sorted phase runs a small
#: constant factor deeper than A0's, but avoids ~c2 * (number of seen
#: objects) of random-access spend.
EXPENSIVE_RANDOM_ACCESS_RATIO = 10.0


class UnknownStrategyError(ReproError, KeyError):
    """Raised when a strategy name is not in the registry."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        super().__init__(
            f"no strategy named {name!r} is registered "
            f"(known: {', '.join(sorted(known)) or '<none>'})"
        )

    # KeyError.__str__ repr-quotes the message; keep it readable.
    __str__ = Exception.__str__


@dataclass(frozen=True)
class StrategyCapabilities:
    """What a registered strategy can and cannot evaluate.

    Attributes
    ----------
    monotone_only:
        The strategy is only guaranteed correct for monotone
        aggregations (Theorem 4.2's precondition). The naive scan is
        the one registered strategy with this off.
    needs_random_access:
        The strategy performs random accesses, so every involved
        subsystem must support them (Section 4, footnote 5).
    strict_only:
        The strategy's *optimality* story additionally assumes a strict
        aggregation (Theorem 6.5); correctness never requires it, so
        this is advisory metadata, surfaced by ``explain``-style tools.
    min_lists:
        Smallest m the strategy supports (3 for the Remark 6.1 median
        construction, 2 for Ullman's two-subsystem algorithm).
    aggregation_guard:
        Optional predicate ``(aggregation, num_lists) -> bool`` for
        strategies tied to one aggregation (B0 to max, A0' to min,
        MedianTopK to the median).
    batch_aware:
        The strategy's hot loops consume the batched access protocol
        (``sorted_access_batch`` / ``random_access_many``) and so run
        at full speed on columnar backends. Advisory metadata — every
        strategy still runs on unit-only sources via the protocol's
        loop fallbacks, and batch-aware strategies charge exactly the
        unit-access costs (batches are an implementation detail).
    """

    monotone_only: bool = True
    needs_random_access: bool = True
    strict_only: bool = False
    min_lists: int = 1
    aggregation_guard: (
        Callable[["AggregationFunction", int], bool] | None
    ) = None
    batch_aware: bool = False

    def admits(
        self,
        aggregation: "AggregationFunction | None",
        num_lists: int | None,
        random_access: bool,
    ) -> bool:
        """Can a strategy with these capabilities run this workload?"""
        if self.needs_random_access and not random_access:
            return False
        if num_lists is not None and num_lists < self.min_lists:
            return False
        if aggregation is not None:
            if self.monotone_only and not aggregation.monotone:
                return False
            if self.strict_only and not getattr(aggregation, "strict", False):
                return False
            if self.aggregation_guard is not None:
                if num_lists is None or not self.aggregation_guard(
                    aggregation, num_lists
                ):
                    return False
        return True


#: A selector claims a workload for its strategy: it returns the
#: paper-grounded justification string, or None to pass.
Selector = Callable[
    ["AggregationFunction", int, bool, CostModel | None], "str | None"
]


@dataclass(frozen=True)
class StrategyRegistration:
    """One registered strategy: factory, capabilities, selection hook."""

    name: str
    factory: Callable[[], "TopKAlgorithm"]
    capabilities: StrategyCapabilities
    #: Position in the auto-selection scan; None = manual-only (the
    #: strategy can be forced by name but never auto-selected).
    priority: int | None = None
    selector: Selector | None = None
    aliases: tuple[str, ...] = ()
    summary: str = ""
    #: Optional access-count envelope (see :data:`CostEstimator`).
    #: Strategies without one are never auto-explored by the adaptive
    #: chooser (it cannot bound what a trial would cost).
    cost_estimate: CostEstimator | None = None

    def create(self) -> "TopKAlgorithm":
        return self.factory()


@dataclass(frozen=True)
class StrategyChoice:
    """A selected strategy plus the justification for the choice."""

    algorithm: "TopKAlgorithm"
    reason: str

    @property
    def name(self) -> str:
        return self.algorithm.name


_REGISTRY: dict[str, StrategyRegistration] = {}
_ALIASES: dict[str, str] = {}


def register_strategy(
    name: str,
    factory: Callable[[], "TopKAlgorithm"],
    capabilities: StrategyCapabilities,
    *,
    priority: int | None = None,
    selector: Selector | None = None,
    aliases: tuple[str, ...] = (),
    summary: str = "",
    cost_estimate: CostEstimator | None = None,
) -> StrategyRegistration:
    """Register a top-k strategy under ``name`` (idempotent per name).

    Called at import time by each algorithm module — the registry is
    how :func:`select_strategy` (and through it the planner and the
    deprecated ``choose_algorithm``) finds algorithms. Re-registering
    the same name replaces the entry, so module reloads stay safe.
    """
    registration = StrategyRegistration(
        name=name,
        factory=factory,
        capabilities=capabilities,
        priority=priority,
        selector=selector,
        aliases=tuple(aliases),
        summary=summary,
        cost_estimate=cost_estimate,
    )
    _REGISTRY[name] = registration
    for alias in registration.aliases:
        _ALIASES[alias] = name
    return registration


def _ensure_registered() -> None:
    """Import the algorithm catalogue so self-registrations have run."""
    import repro.algorithms  # noqa: F401  (import side effect)


def get_registration(name: str) -> StrategyRegistration:
    """Look up a registration by name or alias."""
    _ensure_registered()
    key = _ALIASES.get(name, name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownStrategyError(name, tuple(_REGISTRY)) from None


def create_strategy(name: str) -> "TopKAlgorithm":
    """A fresh instance of the named strategy."""
    return get_registration(name).create()


def available_strategies() -> Mapping[str, StrategyRegistration]:
    """All registrations, keyed by canonical name."""
    _ensure_registered()
    return dict(_REGISTRY)


def _in_priority_order() -> Iterator[StrategyRegistration]:
    autoselectable = [r for r in _REGISTRY.values() if r.priority is not None]
    return iter(sorted(autoselectable, key=lambda r: r.priority))  # type: ignore[arg-type]


def capable_strategies(
    aggregation: "AggregationFunction | None" = None,
    num_lists: int | None = None,
    *,
    random_access: bool = True,
) -> tuple[str, ...]:
    """Names of every registered strategy able to run this workload.

    Pure capability filtering — no ranking. A strategy appears iff its
    declared capabilities admit the aggregation (monotonicity and any
    aggregation guard), the list count, and the random-access regime.
    """
    _ensure_registered()
    return tuple(
        sorted(
            r.name
            for r in _REGISTRY.values()
            if r.capabilities.admits(aggregation, num_lists, random_access)
        )
    )


def batch_aware_strategies() -> tuple[str, ...]:
    """Names of the strategies whose hot loops consume access batches.

    These are the strategies the columnar backend accelerates most;
    all of them degrade gracefully to unit accesses on sources that
    only implement ``next_sorted``/``random_access``.
    """
    _ensure_registered()
    return tuple(
        sorted(
            r.name for r in _REGISTRY.values() if r.capabilities.batch_aware
        )
    )


def select_strategy(
    aggregation: "AggregationFunction",
    num_lists: int,
    *,
    random_access: bool = True,
    cost_model: CostModel | None = None,
    require: str | None = None,
) -> StrategyChoice:
    """Select the best applicable strategy for ``Ft(A1..Am)``.

    The paper's decision table as a registry scan: registrations are
    visited in priority order and the first selector to claim the
    workload wins, returning its justification. With ``require`` the
    scan is skipped — the named strategy is instantiated after a
    capability check (the registry still refuses impossible pairings,
    e.g. a random-access strategy without random access).
    """
    if num_lists < 1:
        raise ValueError(f"need at least one list, got {num_lists}")
    _ensure_registered()

    if require is not None:
        registration = get_registration(require)
        if not registration.capabilities.admits(
            aggregation, num_lists, random_access
        ):
            raise ValueError(
                f"strategy {registration.name!r} cannot evaluate this "
                f"workload (aggregation {aggregation.name!r}, m="
                f"{num_lists}, random_access={random_access}); capable "
                f"strategies: "
                f"{', '.join(capable_strategies(aggregation, num_lists, random_access=random_access))}"
            )
        return StrategyChoice(
            registration.create(),
            f"strategy {registration.name!r} forced by caller",
        )

    for registration in _in_priority_order():
        assert registration.selector is not None, registration.name
        reason = registration.selector(
            aggregation, num_lists, random_access, cost_model
        )
        if reason is not None:
            return StrategyChoice(registration.create(), reason)
    raise ReproError(  # pragma: no cover - naive's selector is total
        f"no registered strategy claims aggregation {aggregation.name!r}"
    )


def estimate_access_costs(
    aggregation: "AggregationFunction",
    num_lists: int,
    num_objects: int,
    k: int,
    *,
    random_access: bool = True,
    cost_model: CostModel | None = None,
) -> list[tuple[str, float]]:
    """Estimated weighted costs of every estimable capable strategy.

    For each registration whose capabilities admit the workload *and*
    which registered a :data:`CostEstimator`, evaluates the envelope at
    ``(num_objects, num_lists, k)`` and weights it under ``cost_model``
    (unweighted S + R by default). Returns ``(canonical name, cost)``
    pairs sorted cheapest-first — the adaptive chooser's candidate
    slate.
    """
    _ensure_registered()
    weights = cost_model or CostModel()
    out: list[tuple[str, float]] = []
    for registration in _REGISTRY.values():
        if registration.cost_estimate is None:
            continue
        if not registration.capabilities.admits(
            aggregation, num_lists, random_access
        ):
            continue
        est_sorted, est_random = registration.cost_estimate(
            num_objects, num_lists, k
        )
        out.append(
            (
                registration.name,
                weights.sorted_weight * est_sorted
                + weights.random_weight * est_random,
            )
        )
    return sorted(out, key=lambda pair: (pair[1], pair[0]))
