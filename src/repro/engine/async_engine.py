"""The async facade: embed the engine in an event-loop server.

The paper's middleware is a *serving* layer — Garlic answering many
users' fuzzy queries over autonomous subsystems. Modern server
frameworks (asyncio, ASGI apps) want that surface awaitable:

    async with AsyncEngine(engine, max_workers=8) as serving:
        result = await serving.top_k(MINIMUM, k=10)
        batch = await serving.run_many([MINIMUM, MEDIAN], k=10)
        async for page in serving.cursor(MINIMUM, page_size=25):
            ...

:class:`AsyncEngine` owns a :class:`~concurrent.futures.ThreadPoolExecutor`
and delegates every call to the wrapped (synchronous)
:class:`~repro.engine.engine.Engine` on it, so the event loop never
blocks on a sorted-access drain. Concurrency safety comes from the
engine's serving architecture, not from magic here: the backing stores
are shared read-only, every query run mints its own session, and the
subsystem ranking caches are single-flight — see DESIGN.md's
"Concurrency model". The one stateful object, a paging cursor, is
wrapped in :class:`AsyncResultCursor`, which serialises its page
fetches behind an :class:`asyncio.Lock` (a cursor is single-consumer
by contract).
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from repro.core.aggregation import AggregationFunction
from repro.engine.batch import BatchResult
from repro.engine.cursor import ResultCursor
from repro.engine.engine import Engine
from repro.exceptions import EngineConfigurationError

__all__ = ["AsyncEngine", "AsyncResultCursor", "POOL_PARALLELISM"]

#: Sentinel default for :meth:`AsyncEngine.run_many`'s ``parallel``:
#: "use the facade's own worker count". Distinct from ``None``, which
#: the engine defines as the serial shared-session batch path.
POOL_PARALLELISM = object()

#: Default worker count for the facade's pool — a small multiple of a
#: typical request fan-out, not of the core count: the work is mostly
#: lock-free reads over shared stores, and the pool also bounds how
#: many sessions a burst of requests mints at once.
DEFAULT_MAX_WORKERS = 8


class AsyncEngine:
    """Awaitable wrapper over an :class:`~repro.engine.engine.Engine`.

    Parameters
    ----------
    engine:
        The synchronous engine to serve. It must be safe to run
        queries on from several threads: catalog-backed engines and
        source-backed engines over a database or session factory are
        (each run mints its own session); an engine over a single live
        :class:`~repro.access.session.MiddlewareSession` is
        single-consumer and is refused up front.
    max_workers:
        Size of the facade's thread pool — the maximum number of
        queries in flight at once.
    """

    def __init__(
        self, engine: Engine, *, max_workers: int = DEFAULT_MAX_WORKERS
    ) -> None:
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be at least 1, got {max_workers}"
            )
        from repro.access.session import MiddlewareSession

        if isinstance(engine._backing, MiddlewareSession):
            raise EngineConfigurationError(
                "an engine over a live MiddlewareSession is single-"
                "consumer and cannot be served concurrently; back it "
                "with a database or session factory"
            )
        self.engine = engine
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-async-engine"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Shut the pool down (idempotent); in-flight queries finish.

        Also releases the wrapped engine's owned execution resources —
        for a sharded engine, its worker processes and shared-memory
        segments — after the drain, so no in-flight query loses its
        substrate (``Engine.close`` is a no-op on other backings).
        """
        if not self._closed:
            self._closed = True
            pool = self._pool
            # shutdown(wait=True) blocks until drained — keep that off
            # the event loop.
            await asyncio.get_running_loop().run_in_executor(
                None, functools.partial(pool.shutdown, wait=True)
            )
            await asyncio.get_running_loop().run_in_executor(
                None, self.engine.close
            )

    def close(self) -> None:
        """Synchronous shutdown, for non-async teardown paths."""
        self._closed = True
        self._pool.shutdown(wait=True)
        self.engine.close()

    async def _call(self, fn, /, *args, **kwargs):
        if self._closed:
            raise EngineConfigurationError(
                "this AsyncEngine is closed; create a new one"
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, functools.partial(fn, *args, **kwargs)
        )

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------

    def _builder(
        self, query, strategy, conjunction, adaptive=None, epsilon=None
    ):
        builder = self.engine.query(query)
        if strategy is not None:
            builder.strategy(strategy)
        if conjunction is not None:
            builder.conjunction(conjunction)
        if adaptive is not None:
            builder.adaptive(adaptive)
        if epsilon is not None:
            builder.epsilon(epsilon)
        return builder

    async def top_k(
        self,
        query: "str | object | AggregationFunction | None" = None,
        k: int | None = None,
        *,
        strategy: object | None = None,
        conjunction: str | None = None,
        adaptive: "bool | None" = None,
        epsilon: "float | None" = None,
    ):
        """``engine.query(query).top(k)``, off the event loop.

        ``query`` is a string/AST for catalog-backed engines or an
        aggregation function for source-backed ones — the same
        contract as :meth:`Engine.query`. ``adaptive=False`` opts this
        query out of the engine's adaptive planning layer; ``epsilon``
        accepts a certified ε-approximate answer (the θ/(1+ε)
        stopping rule), overriding the context default.
        """
        return await self._call(
            lambda: self._builder(
                query, strategy, conjunction, adaptive, epsilon
            ).top(k)
        )

    async def run_many(
        self,
        queries: Iterable[object],
        k: int | None = None,
        parallel: "int | None" = POOL_PARALLELISM,
    ) -> BatchResult:
        """``engine.run_many``, off the event loop.

        ``parallel`` defaults to :data:`POOL_PARALLELISM` — the
        facade's worker count, so one awaited batch saturates the pool
        it already owns. Pass an explicit ``parallel=None`` to request
        the engine's *serial* batch semantics (the shared-session /
        shared-ledger path), or any positive int to size the batch's
        own worker pool.

        Note the batch runs on a pool of its own inside
        ``Engine.run_many`` while one facade worker awaits it — a
        deliberate simplicity tradeoff (thread spawn is microseconds
        against a batch's milliseconds of access work; sharing the
        facade pool would deadlock once batches queued behind their
        own members).
        """
        if parallel is POOL_PARALLELISM:
            # Sharded engines refuse an explicit parallel= (their
            # worker-process pool is the parallelism); the facade's
            # default resolves to the engine-default batch path there.
            parallel = (
                None if self.engine.sharding is not None else self.max_workers
            )
        return await self._call(
            self.engine.run_many, list(queries), k=k, parallel=parallel
        )

    async def explain(self, query: object, conjunction: str | None = None):
        """``engine.explain`` (catalog-backed engines), off the loop."""
        return await self._call(self.engine.explain, query, conjunction)

    async def metrics_snapshot(self) -> dict:
        """``engine.metrics_snapshot``, off the event loop.

        The snapshot itself is a cheap locked read, but it is routed
        through the pool like every other engine call so a closed
        facade refuses it consistently and the lock is never taken on
        the event loop thread.
        """
        return await self._call(self.engine.metrics_snapshot)

    def cursor(
        self,
        query: "str | object | AggregationFunction | None" = None,
        *,
        conjunction: str | None = None,
        page_size: int | None = None,
        epsilon: "float | None" = None,
    ) -> "AsyncResultCursor":
        """An async paging cursor: ``await next_k`` / ``async for``.

        Nothing touches a subsystem until the first page is awaited
        (opening the cursor mints sources, so it happens on the pool).
        Each awaited page carries the live anytime bound state (see
        :meth:`AsyncResultCursor.live_bounds`), and :meth:`stop` seals
        the cursor into a certified partial answer.
        """
        if page_size is not None and page_size < 1:
            raise ValueError(
                f"page size must be at least 1, got {page_size}"
            )
        return AsyncResultCursor(
            self,
            opener=lambda: self._builder(
                query, None, conjunction, epsilon=epsilon
            ).cursor(),
            page_size=page_size,
        )

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"workers={self.max_workers}"
        return f"AsyncEngine({self.engine!r}, {state})"


class AsyncResultCursor:
    """Async wrapper over :class:`~repro.engine.cursor.ResultCursor`.

    Pages with ``await cursor.next_k(k)`` or ``async for page in
    cursor`` (pages of ``page_size``, ending cleanly when the
    population is exhausted). A cursor is single-consumer: an
    :class:`asyncio.Lock` serialises page fetches, so two concurrent
    awaits cannot interleave the underlying incremental state.
    """

    def __init__(self, owner: AsyncEngine, opener, page_size: int | None) -> None:
        self._owner = owner
        self._opener = opener
        self._page_size = page_size
        self._cursor: ResultCursor | None = None
        self._fetch_lock = asyncio.Lock()

    async def _ensure_open(self) -> ResultCursor:
        if self._cursor is None:
            self._cursor = await self._owner._call(self._opener)
        return self._cursor

    async def next_k(self, k: int | None = None):
        """The next ``k`` best answers (one serialised page fetch).

        Without an explicit ``k`` the cursor's configured ``page_size``
        applies (falling back to the engine context's default page), so
        ``next_k()`` and ``async for`` page at the same size.
        """
        if k is not None and k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if k is None:
            k = self._page_size  # None falls through to the default
        async with self._fetch_lock:
            cursor = await self._ensure_open()
            return await self._owner._call(cursor.next_k, k)

    def __aiter__(self) -> "AsyncResultCursor":
        return self

    async def __anext__(self):
        async with self._fetch_lock:
            cursor = await self._ensure_open()
            remaining = cursor.remaining
            if remaining <= 0 or cursor.closed:
                raise StopAsyncIteration
            page = self._page_size
            if page is None:
                page = cursor.default_k
            page = min(page, remaining)
            return await self._owner._call(cursor.next_k, page)

    # ------------------------------------------------------------------
    # Introspection (safe without await: plain reads of paged state)
    # ------------------------------------------------------------------

    @property
    def pages_fetched(self) -> int:
        return 0 if self._cursor is None else self._cursor.pages_fetched

    @property
    def answers_fetched(self) -> int:
        return 0 if self._cursor is None else self._cursor.answers_fetched

    @property
    def remaining(self) -> int | None:
        """Answers the population can still yield, mirroring
        :attr:`~repro.engine.cursor.ResultCursor.remaining` so paging
        clients can stop cleanly instead of provoking
        ``InsufficientObjectsError`` on a final over-page.

        ``None`` until the first page has been awaited: an unopened
        cursor has not minted its session yet, so the population size
        is not known (and opening it here would mean subsystem work on
        the event loop thread).
        """
        return None if self._cursor is None else self._cursor.remaining

    def live_bounds(self) -> dict | None:
        """The certified anytime bound state after the last page.

        Mirrors :meth:`~repro.engine.cursor.ResultCursor.live_bounds`:
        ``None`` until a page has been awaited, then a dict whose
        ``remaining_upper`` tightens monotonically as paging deepens.
        A plain read of already-paged state — safe without await.
        """
        return None if self._cursor is None else self._cursor.live_bounds()

    @property
    def guarantee(self):
        """The guarantee of the answer-so-far (None before any page)."""
        return None if self._cursor is None else self._cursor.guarantee

    async def stop(self):
        """Seal the cursor into a certified partial answer.

        Serialised behind the fetch lock so an in-flight page completes
        (and its bounds land) before the cursor is certified — the
        returned :class:`~repro.core.certify.CertifiedResult` always
        covers everything actually fetched. An unopened cursor is
        opened first, certifying the honest empty prefix.
        """
        async with self._fetch_lock:
            cursor = await self._ensure_open()
            return await self._owner._call(cursor.stop)

    def total_stats(self):
        """Accesses spent across all pages (zero-page cursors excluded)."""
        if self._cursor is None:
            raise EngineConfigurationError(
                "no pages fetched yet; await next_k() first"
            )
        return self._cursor.total_stats()

    def __repr__(self) -> str:
        if self._cursor is None:
            return "AsyncResultCursor(unopened)"
        return f"Async{self._cursor!r}"
