"""Adaptive planning: measured costs, a plan cache, and a chooser.

Section 5 prices every run as ``c1*S + c2*R`` — but the paper's
constants are *givens*, while a running middleware can measure them.
This module closes that loop with three cooperating pieces:

* :class:`CalibratedCostModel` — fits per-subsystem sorted/random unit
  costs (seconds per access) and batch-amortization factors from the
  ``AccessStats`` + wall-clock telemetry every executed query already
  produces. Exponentially-decayed online least squares, thread-safe,
  snapshot/restore serializable.
* :class:`PlanCache` — memoizes physical plans under a *normalized
  query shape* (atoms modulo constants, aggregation, k-band,
  subsystem set, store fingerprint), so the dominant traffic pattern
  at scale — repeated query shapes — skips ``Planner.plan`` entirely.
  Single-flight minting (the :class:`~repro.subsystems.base.RankingCache`
  discipline), LRU-bounded, invalidated whenever the catalog or store
  fingerprint moves.
* :class:`AdaptiveChooser` — keeps a per-(shape, strategy) ledger of
  *measured* access costs and overrides the static selection when the
  evidence disagrees with the estimate (explore rarely, exploit the
  winner). Decisions are surfaced through ``explain()`` with both the
  estimate and the evidence.

Determinism contract
--------------------
The chooser must not make perf-harness replays (or parallel batches)
nondeterministic, so every input to a *decision* is a deterministic
function of the query sequence:

* histories record **access counts** weighted by the context's static
  :class:`~repro.access.cost.CostModel` — never wall-clock seconds;
* exploration is **counter-based** (every ``explore_every``-th query of
  a shape after a warmup), not randomized;
* ``run_many`` batches and cursors reuse cached plans but never consult
  nor advance the chooser — the serial/parallel count-parity gates stay
  bit-identical.

The calibrated *seconds* feed estimates, ``explain()`` text and the
``/metrics`` planner block only.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace as _dc_replace
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.access.cost import AccessStats, CostModel
from repro.core.query import And, AtomicQuery, Ft, Not, Or, Query, Weighted
from repro.engine.registry import (
    estimate_access_costs,
    get_registration,
    select_strategy,
)
from repro.middleware.compile import CompiledQueryAggregation
from repro.middleware.plan import (
    AlgorithmPlan,
    FilteredConjunctPlan,
    FullScanPlan,
    InternalConjunctionPlan,
    PhysicalPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregation import AggregationFunction
    from repro.core.semantics import FuzzySemantics
    from repro.middleware.catalog import Catalog

__all__ = [
    "AdaptiveOptions",
    "CalibratedCostModel",
    "QueryShape",
    "shape_of_query",
    "shape_of_aggregation",
    "PlanCache",
    "AdaptiveChooser",
    "AdaptiveDecision",
    "AdaptivePlanner",
]


# ----------------------------------------------------------------------
# Options
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveOptions:
    """Tuning knobs for the adaptive planning layer.

    The defaults are deliberately conservative: a shape must repeat
    ``explore_after`` times before the first exploration, so short-lived
    engines (tests, scripts) behave exactly like the static planner.
    Serving deployments with long-lived engines and a latency budget
    for trials can lower ``explore_after``/``explore_every``.

    Attributes
    ----------
    plan_cache_capacity:
        LRU bound on distinct cached shapes.
    calibration_decay:
        Forgetting factor of the decayed least-squares fit (weight of
        history per new observation; closer to 1 = longer memory).
    history_decay:
        EWMA step for the per-(shape, strategy) measured-cost ledger:
        ``new = (1 - history_decay) * old + history_decay * sample``.
    explore_after:
        Number of decisions a shape must accumulate before the chooser
        may run its first exploration trial.
    explore_every:
        Deterministic cadence of exploration slots after the warmup
        (every Nth decision on the shape is a trial slot).
    min_trials:
        Samples a strategy needs on a shape before its measured cost
        can win an override (and before exploration stops re-trialing
        it).
    override_margin:
        A measured winner must beat the incumbent's measured cost by
        this factor to take over (guards against noise flapping).
    explore_cost_cap:
        Never trial a candidate whose *estimated* cost exceeds this
        multiple of the best measured cost on the shape — exploration
        must not torch the latency budget (e.g. a naive full scan on a
        shape the incumbent answers in hundreds of accesses).
    """

    plan_cache_capacity: int = 256
    calibration_decay: float = 0.9
    history_decay: float = 0.3
    explore_after: int = 32
    explore_every: int = 64
    min_trials: int = 3
    override_margin: float = 0.9
    explore_cost_cap: float = 3.0

    def __post_init__(self) -> None:
        if self.plan_cache_capacity < 1:
            raise ValueError(
                f"plan_cache_capacity must be positive, "
                f"got {self.plan_cache_capacity}"
            )
        if not 0.0 < self.calibration_decay <= 1.0:
            raise ValueError(
                f"calibration_decay must be in (0, 1], "
                f"got {self.calibration_decay}"
            )
        if not 0.0 < self.history_decay <= 1.0:
            raise ValueError(
                f"history_decay must be in (0, 1], got {self.history_decay}"
            )
        if self.explore_after < 1 or self.explore_every < 1:
            raise ValueError(
                "explore_after and explore_every must be positive, got "
                f"{self.explore_after}/{self.explore_every}"
            )
        if self.min_trials < 1:
            raise ValueError(
                f"min_trials must be positive, got {self.min_trials}"
            )
        if not 0.0 < self.override_margin <= 1.0:
            raise ValueError(
                f"override_margin must be in (0, 1], "
                f"got {self.override_margin}"
            )
        if self.explore_cost_cap < 1.0:
            raise ValueError(
                f"explore_cost_cap must be >= 1, got {self.explore_cost_cap}"
            )


# ----------------------------------------------------------------------
# Calibrated cost model
# ----------------------------------------------------------------------

#: Pseudo-scope aggregating every observation (the global fit reported
#: when a per-subsystem scope has too little data).
GLOBAL_SCOPE = "__all__"

#: Observations a scope needs before its fitted units are trusted.
MIN_CALIBRATION_OBSERVATIONS = 5


class _ScopeFit:
    """Decayed least-squares state for one scope (subsystem or global).

    Fits ``elapsed ~= c1 * S + c2 * R`` by minimizing the
    exponentially-weighted squared error; the sufficient statistics are
    five decayed sums, so an update is O(1) and a solve is a 2x2
    system. When the design is degenerate (e.g. the scope never served
    a random access) the fit falls back to a per-access rate.
    """

    __slots__ = (
        "ss", "rr", "sr", "st", "rt", "tt",
        "weight", "observations",
        "unit_seconds", "batched_seconds",
    )

    def __init__(self) -> None:
        self.ss = self.rr = self.sr = self.st = self.rt = self.tt = 0.0
        self.weight = 0.0
        self.observations = 0
        #: EWMA seconds-per-access over unit-transport observations
        #: and over batched-transport ones; their ratio is the batch
        #: amortization factor.
        self.unit_seconds: float | None = None
        self.batched_seconds: float | None = None

    def observe(
        self,
        sorted_count: int,
        random_count: int,
        elapsed: float,
        decay: float,
        batched: bool | None,
    ) -> None:
        s = float(sorted_count)
        r = float(random_count)
        self.ss = decay * self.ss + s * s
        self.rr = decay * self.rr + r * r
        self.sr = decay * self.sr + s * r
        self.st = decay * self.st + s * elapsed
        self.rt = decay * self.rt + r * elapsed
        self.tt = decay * self.tt + elapsed
        self.weight = decay * self.weight + (s + r)
        self.observations += 1
        total = s + r
        if batched is not None and total > 0:
            per_access = elapsed / total
            if batched:
                prior = self.batched_seconds
                self.batched_seconds = (
                    per_access if prior is None
                    else 0.7 * prior + 0.3 * per_access
                )
            else:
                prior = self.unit_seconds
                self.unit_seconds = (
                    per_access if prior is None
                    else 0.7 * prior + 0.3 * per_access
                )

    def units(self) -> tuple[float, float] | None:
        """Fitted (sorted, random) seconds per access, or None."""
        if self.observations == 0 or self.weight <= 0:
            return None
        rate = self.tt / self.weight  # blended seconds per access
        det = self.ss * self.rr - self.sr * self.sr
        if det > 1e-18 * max(self.ss, self.rr, 1.0) ** 2:
            c1 = (self.st * self.rr - self.rt * self.sr) / det
            c2 = (self.rt * self.ss - self.st * self.sr) / det
            # A negative coefficient means the design is too collinear
            # for a 2-parameter fit; fall back to the blended rate for
            # the offending axis.
            if c1 > 0 and c2 > 0:
                return (c1, c2)
        if self.ss > 0 and self.rr == 0:
            return (self.st / self.ss, rate)
        if self.rr > 0 and self.ss == 0:
            return (rate, self.rt / self.rr)
        return (rate, rate)

    def amortization(self) -> float | None:
        """batched/unit seconds-per-access ratio (< 1 = batching pays)."""
        if self.unit_seconds is None or self.batched_seconds is None:
            return None
        if self.unit_seconds <= 0:
            return None
        return self.batched_seconds / self.unit_seconds

    def snapshot(self) -> dict:
        return {
            "ss": self.ss, "rr": self.rr, "sr": self.sr,
            "st": self.st, "rt": self.rt, "tt": self.tt,
            "weight": self.weight,
            "observations": self.observations,
            "unit_seconds": self.unit_seconds,
            "batched_seconds": self.batched_seconds,
        }

    @classmethod
    def from_snapshot(cls, data: Mapping) -> "_ScopeFit":
        fit = cls()
        fit.ss = float(data["ss"])
        fit.rr = float(data["rr"])
        fit.sr = float(data["sr"])
        fit.st = float(data["st"])
        fit.rt = float(data["rt"])
        fit.tt = float(data["tt"])
        fit.weight = float(data["weight"])
        fit.observations = int(data["observations"])
        fit.unit_seconds = data.get("unit_seconds")
        fit.batched_seconds = data.get("batched_seconds")
        return fit


class CalibratedCostModel:
    """Online fit of per-scope access unit costs from telemetry.

    ``observe`` apportions one query's elapsed wall-clock across the
    subsystem scopes it touched (proportionally to their access
    counts) and updates each scope's decayed least-squares state plus
    the global scope. Thread-safe; all reads return plain data.
    """

    def __init__(self, decay: float = 0.9) -> None:
        self._decay = decay
        self._lock = threading.Lock()
        self._scopes: dict[str, _ScopeFit] = {}

    def observe(
        self,
        scopes: Mapping[str, tuple[int, int]],
        elapsed: float,
        batched: bool | None = None,
    ) -> None:
        """Record one completed query.

        ``scopes`` maps scope name -> (sorted, random) access counts;
        ``elapsed`` is the query's wall-clock seconds; ``batched``
        says which transport served it (None = unknown).
        """
        if elapsed < 0:
            return
        total = sum(s + r for s, r in scopes.values())
        if total <= 0:
            return
        with self._lock:
            for name, (s, r) in scopes.items():
                share = elapsed * (s + r) / total
                self._fit(name).observe(s, r, share, self._decay, batched)
            global_s = sum(s for s, _ in scopes.values())
            global_r = sum(r for _, r in scopes.values())
            self._fit(GLOBAL_SCOPE).observe(
                global_s, global_r, elapsed, self._decay, batched
            )

    def _fit(self, name: str) -> _ScopeFit:
        fit = self._scopes.get(name)
        if fit is None:
            fit = self._scopes[name] = _ScopeFit()
        return fit

    @property
    def observations(self) -> int:
        with self._lock:
            fit = self._scopes.get(GLOBAL_SCOPE)
            return fit.observations if fit is not None else 0

    def units(self, scope: str = GLOBAL_SCOPE) -> tuple[float, float] | None:
        """(sorted, random) seconds per access for a scope, or None."""
        with self._lock:
            fit = self._scopes.get(scope)
            if fit is None or fit.observations < MIN_CALIBRATION_OBSERVATIONS:
                return None
            return fit.units()

    def estimate_seconds(
        self, sorted_count: float, random_count: float
    ) -> float | None:
        """Predicted wall-clock for (S, R) accesses under the global fit."""
        units = self.units()
        if units is None:
            return None
        return units[0] * sorted_count + units[1] * random_count

    def as_cost_model(self) -> CostModel | None:
        """The calibrated (c1, c2) as a normalized :class:`CostModel`."""
        units = self.units()
        if units is None:
            return None
        return CostModel.from_calibration(*units)

    def snapshot(self) -> dict:
        """Serializable state: per-scope sums plus solved units."""
        with self._lock:
            scopes = {
                name: fit.snapshot() for name, fit in self._scopes.items()
            }
        return {"decay": self._decay, "scopes": scopes}

    def restore(self, data: Mapping) -> None:
        """Load a :meth:`snapshot` (replaces current state)."""
        scopes = {
            str(name): _ScopeFit.from_snapshot(fit)
            for name, fit in dict(data.get("scopes", {})).items()
        }
        with self._lock:
            self._decay = float(data.get("decay", self._decay))
            self._scopes = scopes

    def metrics(self) -> dict:
        """JSON-ready per-scope units for the ``/metrics`` plane."""
        with self._lock:
            fits = dict(self._scopes)
            out: dict[str, object] = {}
            for name, fit in fits.items():
                units = fit.units() if fit.observations else None
                out[name] = {
                    "observations": fit.observations,
                    "sorted_unit_us": (
                        round(units[0] * 1e6, 4) if units else None
                    ),
                    "random_unit_us": (
                        round(units[1] * 1e6, 4) if units else None
                    ),
                    "batch_amortization": (
                        round(fit.amortization(), 4)
                        if fit.amortization() is not None
                        else None
                    ),
                }
        return out


# ----------------------------------------------------------------------
# Query shapes
# ----------------------------------------------------------------------


def k_band(k: int) -> int:
    """The power-of-two band a k falls in (k in [2^(b-1), 2^b))."""
    return max(1, int(k).bit_length())


def _selectivity_band(selectivity: float | None) -> int | None:
    """Quantized selectivity: -log2 bucketed, or None when unknown.

    Coarse on purpose — the band only has to keep apart atoms whose
    selectivity difference would flip the planner's filtered-conjunct
    decision, without making every constant its own shape.
    """
    if selectivity is None:
        return None
    return min(30, max(0, int(-math.log2(max(selectivity, 1e-9)))))


@dataclass(frozen=True)
class QueryShape:
    """A normalized query identity: structure modulo constants.

    Two queries share a shape iff the plan the static planner would
    mint — and the candidate set the chooser ranks — are the same up
    to rebinding the atoms' target constants.
    """

    kind: str  # "catalog" | "source"
    structure: tuple
    aggregation: str
    band: int
    num_atoms: int
    conjunction: str
    random_access: bool
    fingerprint: tuple
    #: The quality contract's approximation slack. ε-relaxed runs stop
    #: earlier, so their measured access counts would poison the exact
    #: histories (and vice versa): the slack is part of the identity,
    #: separating plan-cache entries and cost ledgers per ε.
    epsilon: float = 0.0

    @property
    def label(self) -> str:
        """Compact human-readable form for explain() and metrics."""
        lo = 2 ** (self.band - 1)
        hi = 2 ** self.band
        text = (
            f"{_structure_label(self.structure)} | agg={self.aggregation} "
            f"| k∈[{lo},{hi}) | m={self.num_atoms}"
        )
        if self.epsilon:
            text += f" | ε={self.epsilon:g}"
        return text


def _structure_label(structure: tuple) -> str:
    tag = structure[0]
    if tag == "atom":
        _, attribute, op, crisp, band = structure
        suffix = f"#s{band}" if crisp and band is not None else ""
        return f"{attribute}{op}{suffix}"
    if tag in ("and", "or"):
        inner = ", ".join(_structure_label(s) for s in structure[1:])
        return f"{tag.upper()}({inner})"
    if tag == "not":
        return f"NOT {_structure_label(structure[1])}"
    if tag == "ft":
        inner = ", ".join(_structure_label(s) for s in structure[2:])
        return f"F[{structure[1]}]({inner})"
    if tag == "weighted":
        inner = ", ".join(_structure_label(s) for s in structure[2:])
        return f"W({inner})"
    if tag == "agg":
        return f"{structure[1]}×{structure[2]}"
    return repr(structure)  # pragma: no cover - future node kinds


def _normalize(query: Query, catalog: "Catalog") -> tuple:
    """The structure tuple of a query: atoms keep (attribute, op,
    crispness, selectivity band) but drop their target constants."""
    if isinstance(query, AtomicQuery):
        crisp = catalog.is_crisp(query)
        band = (
            _selectivity_band(catalog.selectivity(query)) if crisp else None
        )
        return ("atom", query.attribute, query.op, crisp, band)
    if isinstance(query, And):
        return ("and", *(_normalize(op, catalog) for op in query.operands))
    if isinstance(query, Or):
        return ("or", *(_normalize(op, catalog) for op in query.operands))
    if isinstance(query, Not):
        return ("not", _normalize(query.operand, catalog))
    if isinstance(query, Ft):
        return (
            "ft",
            query.aggregation.name,
            *(_normalize(op, catalog) for op in query.operands),
        )
    if isinstance(query, Weighted):
        return (
            "weighted",
            query.weights,
            *(_normalize(op, catalog) for op in query.operands),
        )
    raise TypeError(  # pragma: no cover - exhaustive over the AST
        f"cannot normalize query node {type(query).__name__}"
    )


def shape_of_query(
    query: Query,
    catalog: "Catalog",
    k: int,
    conjunction: str,
    random_access: bool,
    fingerprint: tuple,
    epsilon: float = 0.0,
) -> QueryShape:
    """The normalized shape of a catalog query (post-rewrite)."""
    atoms = query.atoms()
    return QueryShape(
        kind="catalog",
        structure=_normalize(query, catalog),
        aggregation="<compiled>",
        band=k_band(k),
        num_atoms=len(atoms),
        conjunction=conjunction,
        random_access=random_access,
        fingerprint=fingerprint,
        epsilon=epsilon,
    )


def shape_of_aggregation(
    aggregation: "AggregationFunction",
    num_lists: int,
    k: int,
    random_access: bool,
    fingerprint: tuple,
    epsilon: float = 0.0,
) -> QueryShape:
    """The shape of a source-backed run: aggregation identity + m."""
    return QueryShape(
        kind="source",
        structure=("agg", aggregation.name, num_lists),
        aggregation=aggregation.name,
        band=k_band(k),
        num_atoms=num_lists,
        conjunction="external",
        random_access=random_access,
        fingerprint=fingerprint,
        epsilon=epsilon,
    )


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _CachedPlan:
    """One cache entry: the minted plan and the query it was built for
    (kept so a hit with different constants knows to rebind)."""

    plan: PhysicalPlan
    query: Query


class PlanCache:
    """LRU, single-flight cache of physical plans keyed by QueryShape.

    Mirrors :class:`~repro.subsystems.base.RankingCache`'s concurrency
    discipline: a per-shape build lock ensures concurrent first
    requests plan once; every later request is a dict hit under the
    cache lock — O(1) planner work on the hot path.

    Invalidation: every lookup carries the current store fingerprint
    (catalog version + population, or the source backing's identity).
    The first lookup under a new fingerprint clears the cache — plans
    minted against a replaced store never survive it.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[QueryShape, _CachedPlan]" = OrderedDict()
        self._building: dict[QueryShape, threading.Lock] = {}
        self._fingerprint: tuple | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _check_fingerprint_locked(self, fingerprint: tuple) -> None:
        # Called under self._lock.
        if self._fingerprint != fingerprint:
            if self._fingerprint is not None and self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._fingerprint = fingerprint

    def lookup(
        self, shape: QueryShape, build: Callable[[], _CachedPlan]
    ) -> tuple[_CachedPlan, bool]:
        """The cached entry for ``shape`` (built single-flight on miss).

        Returns ``(entry, hit)``.
        """
        with self._lock:
            self._check_fingerprint_locked(shape.fingerprint)
            entry = self._entries.get(shape)
            if entry is not None:
                self._entries.move_to_end(shape)
                self.hits += 1
                return entry, True
            build_lock = self._building.setdefault(shape, threading.Lock())
        with build_lock:
            with self._lock:
                # Re-check: another thread may have built while we
                # waited, or the fingerprint may have moved again.
                self._check_fingerprint_locked(shape.fingerprint)
                entry = self._entries.get(shape)
                if entry is not None:
                    self._entries.move_to_end(shape)
                    self.hits += 1
                    return entry, True
            entry = build()
            with self._lock:
                self._check_fingerprint_locked(shape.fingerprint)
                self.misses += 1
                self._entries[shape] = entry
                self._entries.move_to_end(shape)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                self._building.pop(shape, None)
            return entry, False

    def clear(self) -> None:
        with self._lock:
            if self._entries:
                self.invalidations += 1
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


def rebind_plan(
    plan: PhysicalPlan,
    cached_query: Query,
    query: Query,
    semantics: "FuzzySemantics",
) -> PhysicalPlan:
    """A cached plan re-targeted at a same-shape query.

    Same shape means same tree structure, attributes, operators and
    crispness — only the target constants may differ — so the plan
    *kind*, strategy and batch size carry over verbatim; the atoms and
    any compiled aggregation are rebuilt from the new query.
    """
    if query == cached_query:
        return plan
    atoms = query.atoms()
    if isinstance(plan, AlgorithmPlan):
        aggregation = plan.aggregation
        if isinstance(aggregation, CompiledQueryAggregation):
            aggregation = CompiledQueryAggregation(query, semantics)
        return _dc_replace(
            plan, query=query, atoms=atoms, aggregation=aggregation
        )
    if isinstance(plan, FilteredConjunctPlan):
        cached_atoms = cached_query.atoms()
        filter_idx = [
            i for i, a in enumerate(cached_atoms) if a in plan.filter_atoms
        ]
        filter_atoms = tuple(atoms[i] for i in filter_idx)
        graded_atoms = tuple(
            a for i, a in enumerate(atoms) if i not in set(filter_idx)
        )
        return _dc_replace(
            plan,
            query=query,
            filter_atoms=filter_atoms,
            graded_atoms=graded_atoms,
            aggregation=CompiledQueryAggregation(query, semantics),
        )
    if isinstance(plan, InternalConjunctionPlan):
        return _dc_replace(plan, query=query, atoms=atoms)
    if isinstance(plan, FullScanPlan):
        return _dc_replace(
            plan,
            query=query,
            atoms=atoms,
            aggregation=CompiledQueryAggregation(query, semantics),
        )
    return plan  # pragma: no cover - future plan kinds plan fresh


# ----------------------------------------------------------------------
# Adaptive chooser
# ----------------------------------------------------------------------


class _HistoryCell:
    __slots__ = ("ewma", "samples")

    def __init__(self) -> None:
        self.ewma = 0.0
        self.samples = 0

    def update(self, cost: float, alpha: float) -> None:
        if self.samples == 0:
            self.ewma = cost
        else:
            self.ewma = (1.0 - alpha) * self.ewma + alpha * cost
        self.samples += 1


@dataclass(frozen=True)
class AdaptiveDecision:
    """One chooser verdict, carried into the plan's reason string."""

    strategy: str
    mode: str  # "static" | "explore" | "exploit"
    reason: str


def canonical_strategy_name(name: str) -> str:
    """Registry-canonical name for an algorithm's self-reported name."""
    try:
        return get_registration(name).name
    except Exception:
        return name


class AdaptiveChooser:
    """Per-(shape, strategy) measured-cost ledger + decision rule.

    All decisions are deterministic functions of the decision sequence
    (see the module docstring's determinism contract).
    """

    def __init__(self, options: AdaptiveOptions) -> None:
        self._options = options
        self._lock = threading.Lock()
        self._history: dict[tuple[QueryShape, str], _HistoryCell] = {}
        self._counts: dict[QueryShape, int] = {}
        self.decisions = 0
        self.explorations = 0
        self.overrides = 0

    def _cell(self, shape: QueryShape, name: str) -> _HistoryCell:
        key = (shape, name)
        cell = self._history.get(key)
        if cell is None:
            cell = self._history[key] = _HistoryCell()
        return cell

    def record(self, shape: QueryShape, name: str, cost: float) -> None:
        """Fold one measured run (static cost-model units) into the ledger."""
        with self._lock:
            self._cell(shape, canonical_strategy_name(name)).update(
                cost, self._options.history_decay
            )

    def decide(
        self,
        shape: QueryShape,
        incumbent: str,
        candidates: Sequence[tuple[str, float]],
    ) -> AdaptiveDecision:
        """Pick the strategy for this run of ``shape``.

        ``incumbent`` is the static selection's canonical name;
        ``candidates`` are (canonical name, estimated cost) pairs for
        every capable strategy with a registered cost estimator.
        """
        opts = self._options
        with self._lock:
            count = self._counts.get(shape, 0)
            self._counts[shape] = count + 1
            self.decisions += 1

            sampled = {
                name: self._history.get((shape, name))
                for name, _ in candidates
            }
            measured = {
                name: cell
                for name, cell in sampled.items()
                if cell is not None and cell.samples >= opts.min_trials
            }
            best_name = min(
                measured, key=lambda n: measured[n].ewma, default=None
            )

            explore_slot = (
                count >= opts.explore_after
                and (count - opts.explore_after) % opts.explore_every == 0
            )
            if explore_slot:
                anchor = None
                if best_name is not None:
                    anchor = measured[best_name].ewma
                else:
                    cell = sampled.get(incumbent)
                    if cell is not None and cell.samples > 0:
                        anchor = cell.ewma
                if anchor is not None:
                    cap = opts.explore_cost_cap * anchor
                    untried = sorted(
                        (
                            (
                                sampled[name].samples if sampled[name] else 0,
                                estimate,
                                name,
                            )
                            for name, estimate in candidates
                            if name != incumbent
                            and (
                                sampled[name] is None
                                or sampled[name].samples < opts.min_trials
                            )
                            and estimate <= cap
                        ),
                    )
                    if untried:
                        _, estimate, name = untried[0]
                        self.explorations += 1
                        return AdaptiveDecision(
                            strategy=name,
                            mode="explore",
                            reason=(
                                f"trial {name!r} (estimate ~{estimate:.0f} "
                                f"accesses, under {opts.explore_cost_cap}x "
                                f"the measured anchor {anchor:.0f})"
                            ),
                        )

            incumbent_cell = sampled.get(incumbent)
            if (
                best_name is not None
                and best_name != incumbent
                and incumbent_cell is not None
                and incumbent_cell.samples >= opts.min_trials
                and measured[best_name].ewma
                < opts.override_margin * incumbent_cell.ewma
            ):
                self.overrides += 1
                return AdaptiveDecision(
                    strategy=best_name,
                    mode="exploit",
                    reason=(
                        f"measured winner {best_name!r} averages "
                        f"{measured[best_name].ewma:.0f} accesses vs the "
                        f"static choice {incumbent!r} at "
                        f"{incumbent_cell.ewma:.0f} — the ledger overrules "
                        "the estimate"
                    ),
                )
            return AdaptiveDecision(
                strategy=incumbent,
                mode="static",
                reason=f"static selection {incumbent!r} stands",
            )

    def evidence(self, shape: QueryShape) -> list[tuple[str, float, int]]:
        """Measured (strategy, avg cost, samples) rows for a shape."""
        with self._lock:
            rows = [
                (name, cell.ewma, cell.samples)
                for (s, name), cell in self._history.items()
                if s == shape and cell.samples > 0
            ]
        return sorted(rows, key=lambda r: r[1])

    def metrics(self) -> dict:
        with self._lock:
            return {
                "decisions": self.decisions,
                "explorations": self.explorations,
                "overrides": self.overrides,
                "shapes": len(self._counts),
            }


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------


class AdaptivePlanner:
    """The engine-facing bundle: calibration + plan cache + chooser.

    One instance per :class:`~repro.engine.engine.Engine`; every method
    is thread-safe. The engine consults it in three places: plan
    minting (cache), one-shot strategy choice (chooser), and query
    completion (telemetry).
    """

    def __init__(self, options: AdaptiveOptions | None = None) -> None:
        self.options = options or AdaptiveOptions()
        self.calibration = CalibratedCostModel(self.options.calibration_decay)
        self.plan_cache = PlanCache(self.options.plan_cache_capacity)
        self.chooser = AdaptiveChooser(self.options)

    # -- plan cache ----------------------------------------------------

    @staticmethod
    def catalog_fingerprint(catalog: "Catalog") -> tuple:
        return ("catalog", catalog.version)

    @staticmethod
    def source_fingerprint(backing: object) -> tuple:
        return ("source", id(backing))

    def plan_catalog(
        self,
        query: Query,
        shape: QueryShape,
        semantics: "FuzzySemantics",
        build: Callable[[], PhysicalPlan],
    ) -> tuple[PhysicalPlan, bool]:
        """The (possibly cached) plan for a rewritten catalog query.

        On a hit the cached template is rebound to this query's
        constants and — for algorithm plans — gets a fresh strategy
        instance, so concurrent consumers never share algorithm state.
        Returns ``(plan, cache_hit)``.
        """
        entry, hit = self.plan_cache.lookup(
            shape, lambda: _CachedPlan(plan=build(), query=query)
        )
        plan = entry.plan
        if hit:
            plan = rebind_plan(plan, entry.query, query, semantics)
            if isinstance(plan, AlgorithmPlan) and plan.algorithm is not None:
                plan = _dc_replace(
                    plan,
                    algorithm=get_registration(
                        plan.algorithm.name
                    ).create(),
                )
        return plan, hit

    # -- chooser -------------------------------------------------------

    def _candidates(
        self,
        aggregation: "AggregationFunction",
        num_lists: int,
        num_objects: int,
        k: int,
        random_access: bool,
        cost_model: CostModel,
    ) -> list[tuple[str, float]]:
        return estimate_access_costs(
            aggregation,
            num_lists,
            num_objects,
            k,
            random_access=random_access,
            cost_model=cost_model,
        )

    def choose_catalog(
        self,
        shape: QueryShape,
        plan: PhysicalPlan,
        num_objects: int,
        k: int,
        random_access: bool,
        cost_model: CostModel,
    ) -> tuple[PhysicalPlan, AdaptiveDecision | None]:
        """Apply the chooser to an auto-selected algorithm plan.

        Non-algorithm plans (filtered conjunct, pushdown, full scan)
        pass through: their strategy is structural, not a table pick.
        """
        if not isinstance(plan, AlgorithmPlan) or plan.algorithm is None:
            return plan, None
        assert plan.aggregation is not None
        incumbent = canonical_strategy_name(plan.algorithm.name)
        candidates = self._candidates(
            plan.aggregation, len(plan.atoms), num_objects, k,
            random_access, cost_model,
        )
        decision = self.chooser.decide(shape, incumbent, candidates)
        if decision.strategy == incumbent:
            return plan, decision
        choice = select_strategy(
            plan.aggregation,
            len(plan.atoms),
            random_access=random_access,
            cost_model=cost_model,
            require=decision.strategy,
        )
        return (
            _dc_replace(
                plan,
                algorithm=choice.algorithm,
                reason=f"{plan.reason} | adaptive {decision.mode}: "
                f"{decision.reason}",
            ),
            decision,
        )

    def choose_source(
        self,
        shape: QueryShape,
        incumbent_name: str,
        aggregation: "AggregationFunction",
        num_lists: int,
        num_objects: int,
        k: int,
        random_access: bool,
        cost_model: CostModel,
    ) -> AdaptiveDecision:
        """The chooser's verdict for a source-backed run."""
        candidates = self._candidates(
            aggregation, num_lists, num_objects, k, random_access, cost_model
        )
        return self.chooser.decide(
            shape, canonical_strategy_name(incumbent_name), candidates
        )

    # -- telemetry -----------------------------------------------------

    def record(
        self,
        shape: QueryShape | None,
        strategy_name: str | None,
        stats: AccessStats,
        elapsed: float,
        scopes: Mapping[str, tuple[int, int]],
        cost_model: CostModel,
        batched: bool | None = None,
    ) -> None:
        """Fold one completed query into calibration and (when the run
        had a choosable strategy) the chooser's ledger."""
        self.calibration.observe(scopes, elapsed, batched)
        if shape is not None and strategy_name is not None:
            self.chooser.record(shape, strategy_name, cost_model.cost(stats))

    # -- reporting -----------------------------------------------------

    def explain_lines(
        self,
        shape: QueryShape,
        plan: PhysicalPlan,
        cache_hit: bool,
        num_objects: int,
        k: int,
        random_access: bool,
        cost_model: CostModel,
    ) -> list[str]:
        """The adaptive suffix of an ``explain()`` report."""
        stats = self.plan_cache.stats()
        state = "HIT (cached plan rebound)" if cache_hit else "MISS (minted)"
        lines = [
            "--- adaptive planning ---",
            f"shape: {shape.label}",
            f"plan cache: {state} — {stats['entries']} entries, "
            f"{stats['hits']} hits / {stats['misses']} misses",
        ]
        if isinstance(plan, AlgorithmPlan) and plan.algorithm is not None:
            name = canonical_strategy_name(plan.algorithm.name)
            assert plan.aggregation is not None
            for cand, estimate in self._candidates(
                plan.aggregation, len(plan.atoms), num_objects, k,
                random_access, cost_model,
            ):
                if cand == name:
                    seconds = self.calibration.estimate_seconds(estimate, 0)
                    timing = (
                        f" (~{seconds * 1e3:.2f} ms at calibrated units)"
                        if seconds is not None
                        else " (calibration warming up)"
                    )
                    lines.append(
                        f"estimate: {name!r} ~{estimate:.0f} weighted "
                        f"accesses{timing}"
                    )
                    break
        evidence = self.chooser.evidence(shape)
        if evidence:
            rows = "; ".join(
                f"{name}: {cost:.0f} avg over {samples} run(s)"
                for name, cost, samples in evidence
            )
            lines.append(f"measured history: {rows}")
        else:
            lines.append("measured history: none yet for this shape")
        return lines

    def metrics(self) -> dict:
        """The ``planner`` block of ``Engine.metrics_snapshot()``."""
        return {
            "enabled": True,
            "plan_cache": self.plan_cache.stats(),
            "chooser": self.chooser.metrics(),
            "calibration": self.calibration.metrics(),
        }
