"""Result cursors: incremental paging through a graded answer.

Section 4: "the algorithm has the nice feature that after finding the
top k answers, in order to find the next k best answers we can
'continue where we left off.'" :class:`ResultCursor` is that feature as
an API object: open a monotone query once, then pull ``next_k`` pages,
each reusing every sorted- and random-access result of the previous
pages. The union of the pages equals what a single one-shot ``top_k``
with the combined k would return (same grades; ties may resolve to
either valid answer set), which is what makes paging honest.
"""

from __future__ import annotations

import operator

from repro.access.cost import AccessStats, CostModel, UNWEIGHTED
from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKResult
from repro.algorithms.fa import IncrementalFagin
from repro.core.aggregation import AggregationFunction
from repro.core.certify import (
    CertifiedResult,
    GradeBounds,
    Guarantee,
    validate_epsilon,
)
from repro.core.query import Query
from repro.exceptions import EngineConfigurationError, PlanningError

__all__ = ["ResultCursor", "validate_k"]


def validate_k(k: object, what: str = "k") -> int:
    """``k`` as a positive built-in int, or a clear boundary error.

    ``bool`` is an int subclass (``True < 1`` is False), so without
    the explicit rejection ``k=True`` would silently run as k=1; a
    float k would instead fail deep in the paging machinery. Anything
    implementing ``__index__`` (numpy integers included) is accepted
    and normalised.
    """
    if isinstance(k, bool):
        raise ValueError(f"{what} must be an integer, got {k!r}")
    try:
        k = operator.index(k)
    except TypeError:
        raise ValueError(
            f"{what} must be an integer, got {type(k).__name__}"
        ) from None
    if k < 1:
        raise ValueError(f"{what} must be at least 1, got {k}")
    return k


class ResultCursor:
    """A pageable answer stream for one monotone query.

    Created via ``Engine.query(...).cursor()`` (or directly over a
    session for library-level use). Built on
    :class:`~repro.algorithms.fa.IncrementalFagin`, so every page
    "continues where we left off".

    Parameters
    ----------
    session:
        The instrumented sources the cursor may read.
    aggregation:
        The monotone aggregation t of ``Ft(A1..Am)``.
    default_k:
        Page size when :meth:`next_k` is called without one.
    query:
        Optional query AST, for provenance/repr only.
    cost_model:
        Pricing for :meth:`total_cost`.
    on_page:
        Optional observer called with each fetched page's
        :class:`~repro.algorithms.base.TopKResult`. The engine wires
        its serving ledger here so cursor traffic shows up in
        :meth:`~repro.engine.engine.Engine.metrics_snapshot`; the
        callback runs on the fetching thread, after the page is
        recorded, and must not raise.
    epsilon:
        The approximation slack the caller would accept. Incremental
        paging is *exact* per page (Proposition 4.1), so every page
        over-delivers on any ε — the slack is recorded so the cursor's
        certified snapshots state the contract that was asked for.
    """

    def __init__(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        *,
        default_k: int = 10,
        query: Query | None = None,
        cost_model: CostModel = UNWEIGHTED,
        on_page=None,
        epsilon: float = 0.0,
    ) -> None:
        if not aggregation.monotone:
            raise PlanningError(
                "cursors require a monotone aggregation (Theorem 4.2)"
            )
        default_k = validate_k(default_k, "default page size")
        self.query = query
        self._session = session
        self._aggregation = aggregation
        self._default_k = default_k
        self._cost_model = cost_model
        self._epsilon = validate_epsilon(epsilon)
        self._incremental = IncrementalFagin(session, aggregation)
        self._pages: list[TopKResult] = []
        self._on_page = on_page
        self._last_bounds: dict | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Paging
    # ------------------------------------------------------------------

    def next_k(self, k: int | None = None) -> TopKResult:
        """The next ``k`` best answers after everything already paged.

        The page's :class:`~repro.algorithms.base.TopKResult` carries
        the *incremental* access cost — what this page added on top of
        the previous pages' work.

        ``k`` must be positive: the cursor validates it up front (a
        clear error at the API boundary) rather than relying on the
        paging machinery to reject it mid-flight.

        Each page's ``details`` carries a ``certified`` block — the
        anytime bound state *as of that page* (answers certified so
        far, the last certified grade, and the certified upper bound
        on everything unreturned) — and the page's ``guarantee``
        records the anytime contract. The same snapshot is readable
        from :meth:`live_bounds`.
        """
        if self._closed:
            raise EngineConfigurationError(
                "cursor is stopped: stop() sealed it with a certified "
                "partial answer; open a new cursor to page further"
            )
        if k is not None:
            k = validate_k(k)
        page = self._incremental.next_batch(
            self._default_k if k is None else k
        )
        certified = self._certified_block(
            page.items[-1].grade if page.items else None
        )
        page = TopKResult(
            items=page.items,
            stats=page.stats,
            algorithm=page.algorithm,
            details={**page.details, "certified": certified},
            guarantee=self._page_guarantee(certified),
        )
        self._pages.append(page)
        self._last_bounds = certified
        if self._on_page is not None:
            self._on_page(page)
        return page

    def stop(self) -> CertifiedResult:
        """Seal the cursor and certify everything fetched so far.

        Returns a :class:`~repro.core.certify.CertifiedResult` whose
        items are the pages already fetched (an exact top-r by
        Proposition 4.1), whose per-item bounds are degenerate (the
        grades are exact), and whose guarantee's ``threshold`` is the
        certified upper bound on every answer *not* returned — the
        anytime contract: "here is a correct prefix, and nothing you
        are missing grades above θ". Subsequent :meth:`next_k` calls
        raise; :meth:`stop` itself is idempotent.
        """
        self._closed = True
        certified = (
            self._last_bounds
            if self._last_bounds is not None
            else self._certified_block(None)
        )
        items = self.fetched
        return CertifiedResult(
            items=items,
            guarantee=self._page_guarantee(certified),
            bounds={
                item.obj: GradeBounds(item.grade, item.grade)
                for item in items
            },
            details={
                "certified": certified,
                "pages": self.pages_fetched,
                "algorithm": "A0-incremental",
            },
        )

    # ------------------------------------------------------------------
    # Certified bound state
    # ------------------------------------------------------------------

    def _certified_block(self, last_grade: float | None) -> dict:
        """The anytime bound state right now, as a plain dict."""
        return {
            "kind": "anytime",
            "epsilon": self._epsilon,
            "answers_certified": len(self._incremental.returned),
            "last_grade": last_grade,
            "remaining_upper": self._incremental.remaining_upper(),
        }

    def _page_guarantee(self, certified: dict) -> Guarantee:
        return Guarantee(
            "anytime",
            epsilon=0.0,  # pages are exact; ε is over-delivered
            threshold=certified["remaining_upper"],
        )

    def live_bounds(self) -> dict | None:
        """The certified bound state after the most recent page.

        ``None`` before the first page. Otherwise a dict with
        ``answers_certified`` (r — the prefix is an exact top-r),
        ``last_grade`` (the r-th certified grade), and
        ``remaining_upper`` (certified upper bound on every unreturned
        object's grade). ``remaining_upper`` tightens monotonically as
        pages are pulled — watching it fall is the anytime story.
        """
        return dict(self._last_bounds) if self._last_bounds else None

    @property
    def guarantee(self) -> Guarantee | None:
        """The guarantee of the answer-so-far (None before any page)."""
        if self._last_bounds is None:
            return None
        return self._page_guarantee(self._last_bounds)

    @property
    def epsilon(self) -> float:
        """The slack requested at open time (pages stay exact)."""
        return self._epsilon

    @property
    def closed(self) -> bool:
        """True once :meth:`stop` sealed the cursor."""
        return self._closed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def default_k(self) -> int:
        """Page size used when :meth:`next_k` is called without one."""
        return self._default_k

    @property
    def pages_fetched(self) -> int:
        return len(self._pages)

    @property
    def answers_fetched(self) -> int:
        return len(self._incremental.returned)

    @property
    def remaining(self) -> int:
        """Answers the population can still yield (N minus fetched).

        Paging past this raises ``InsufficientObjectsError``; iterators
        (e.g. the async facade's ``async for``) use it to clamp the
        final page and stop cleanly instead.
        """
        return self._session.num_objects - len(self._incremental.returned)

    @property
    def fetched(self) -> tuple:
        """Every answer paged so far, in page order."""
        return tuple(
            item for page in self._pages for item in page.items
        )

    def total_stats(self) -> AccessStats:
        """Accesses spent across all pages (sum of the page deltas)."""
        if not self._pages:
            return AccessStats(
                (0,) * self._session.num_lists,
                (0,) * self._session.num_lists,
            )
        total = self._pages[0].stats
        for page in self._pages[1:]:
            total = total + page.stats
        return total

    def total_cost(self) -> float:
        """c1*S + c2*R spent so far, under the cursor's cost model."""
        return self.total_stats().middleware_cost(self._cost_model)

    def __repr__(self) -> str:
        return (
            f"ResultCursor(pages={self.pages_fetched}, "
            f"answers={self.answers_fetched})"
        )
