"""Result cursors: incremental paging through a graded answer.

Section 4: "the algorithm has the nice feature that after finding the
top k answers, in order to find the next k best answers we can
'continue where we left off.'" :class:`ResultCursor` is that feature as
an API object: open a monotone query once, then pull ``next_k`` pages,
each reusing every sorted- and random-access result of the previous
pages. The union of the pages equals what a single one-shot ``top_k``
with the combined k would return (same grades; ties may resolve to
either valid answer set), which is what makes paging honest.
"""

from __future__ import annotations

from repro.access.cost import AccessStats, CostModel, UNWEIGHTED
from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKResult
from repro.algorithms.fa import IncrementalFagin
from repro.core.aggregation import AggregationFunction
from repro.core.query import Query
from repro.exceptions import PlanningError

__all__ = ["ResultCursor"]


class ResultCursor:
    """A pageable answer stream for one monotone query.

    Created via ``Engine.query(...).cursor()`` (or directly over a
    session for library-level use). Built on
    :class:`~repro.algorithms.fa.IncrementalFagin`, so every page
    "continues where we left off".

    Parameters
    ----------
    session:
        The instrumented sources the cursor may read.
    aggregation:
        The monotone aggregation t of ``Ft(A1..Am)``.
    default_k:
        Page size when :meth:`next_k` is called without one.
    query:
        Optional query AST, for provenance/repr only.
    cost_model:
        Pricing for :meth:`total_cost`.
    """

    def __init__(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        *,
        default_k: int = 10,
        query: Query | None = None,
        cost_model: CostModel = UNWEIGHTED,
    ) -> None:
        if not aggregation.monotone:
            raise PlanningError(
                "cursors require a monotone aggregation (Theorem 4.2)"
            )
        self.query = query
        self._session = session
        self._aggregation = aggregation
        self._default_k = default_k
        self._cost_model = cost_model
        self._incremental = IncrementalFagin(session, aggregation)
        self._pages: list[TopKResult] = []

    # ------------------------------------------------------------------
    # Paging
    # ------------------------------------------------------------------

    def next_k(self, k: int | None = None) -> TopKResult:
        """The next ``k`` best answers after everything already paged.

        The page's :class:`~repro.algorithms.base.TopKResult` carries
        the *incremental* access cost — what this page added on top of
        the previous pages' work.
        """
        page = self._incremental.next_batch(
            self._default_k if k is None else k
        )
        self._pages.append(page)
        return page

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pages_fetched(self) -> int:
        return len(self._pages)

    @property
    def answers_fetched(self) -> int:
        return len(self._incremental.returned)

    @property
    def fetched(self) -> tuple:
        """Every answer paged so far, in page order."""
        return tuple(
            item for page in self._pages for item in page.items
        )

    def total_stats(self) -> AccessStats:
        """Accesses spent across all pages (sum of the page deltas)."""
        if not self._pages:
            return AccessStats(
                (0,) * self._session.num_lists,
                (0,) * self._session.num_lists,
            )
        total = self._pages[0].stats
        for page in self._pages[1:]:
            total = total + page.stats
        return total

    def total_cost(self) -> float:
        """c1*S + c2*R spent so far, under the cursor's cost model."""
        return self.total_stats().middleware_cost(self._cost_model)

    def __repr__(self) -> str:
        return (
            f"ResultCursor(pages={self.pages_fetched}, "
            f"answers={self.answers_fetched})"
        )
