"""Batch execution results: many queries, one shared accounting ledger.

``Engine.run_many`` executes a sequence of queries while sharing
per-engine state across them — the literal session (and therefore one
cost tracker) for source-backed engines, and a shared atom-evaluation
cache for catalog-backed engines, so a subquery appearing in several
batch members is issued to its subsystem once. :class:`BatchResult`
carries the per-query answers plus the batch-wide access totals, the
Section 5 cost ledger lifted to many queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.access.cost import AccessStats, CostModel, UNWEIGHTED
from repro.algorithms.base import TopKResult

__all__ = ["BatchResult", "stats_of"]


def stats_of(answer: object) -> AccessStats:
    """The access stats of either answer shape.

    ``Engine`` returns :class:`~repro.middleware.executor.QueryAnswer`
    for catalog-backed queries and plain
    :class:`~repro.algorithms.base.TopKResult` for source-backed ones;
    both carry the same accounting.
    """
    if isinstance(answer, TopKResult):
        return answer.stats
    result = getattr(answer, "result", None)
    if isinstance(result, TopKResult):
        return result.stats
    raise TypeError(f"no access stats on {type(answer).__name__}")


@dataclass(frozen=True)
class BatchResult:
    """Answers of one ``run_many`` call plus batch-wide cost totals.

    Attributes
    ----------
    answers:
        One answer per submitted query, in submission order.
    total_sorted / total_random:
        Batch-wide S and R — summed across queries (queries may touch
        different list counts, so the totals are scalars, not per-list
        tuples).
    details:
        Batch diagnostics: ``shared_session`` (source-backed),
        ``atom_evaluations`` / ``atom_reuses`` (catalog-backed cache
        accounting), ``parallel`` (worker count, when the batch ran on
        a thread pool — the totals are then per-member stats summed
        after the fact, equal to the serial shared-ledger totals).
    """

    answers: tuple[object, ...]
    total_sorted: int
    total_random: int
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        """S + R across the whole batch (unweighted middleware cost)."""
        return self.total_sorted + self.total_random

    def middleware_cost(self, model: CostModel = UNWEIGHTED) -> float:
        """c1*S + c2*R for the whole batch."""
        return (
            model.sorted_weight * self.total_sorted
            + model.random_weight * self.total_random
        )

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[object]:
        return iter(self.answers)

    def __getitem__(self, index: int) -> object:
        return self.answers[index]

    def __repr__(self) -> str:
        return (
            f"BatchResult({len(self.answers)} queries, "
            f"S={self.total_sorted}, R={self.total_random})"
        )
