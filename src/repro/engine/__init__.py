"""The unified execution engine: one fluent entry point, pluggable
strategies, result cursors, and batch execution.

    from repro.engine import Engine
    engine = Engine.over(independent_database(2, 10_000, seed=0))
    result = engine.query(MINIMUM).top(10)

Exports are loaded lazily (PEP 562) so that algorithm modules can
import :mod:`repro.engine.registry` at class-definition time to
self-register without creating an import cycle through the middleware.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING

__all__ = [
    "Engine",
    "AsyncEngine",
    "AsyncResultCursor",
    "QueryBuilder",
    "ExecutionContext",
    "ResultCursor",
    "BatchResult",
    "StrategyCapabilities",
    "StrategyRegistration",
    "StrategyChoice",
    "UnknownStrategyError",
    "register_strategy",
    "create_strategy",
    "available_strategies",
    "capable_strategies",
    "batch_aware_strategies",
    "select_strategy",
]

_EXPORTS = {
    "Engine": "repro.engine.engine",
    "AsyncEngine": "repro.engine.async_engine",
    "AsyncResultCursor": "repro.engine.async_engine",
    "QueryBuilder": "repro.engine.builder",
    "ExecutionContext": "repro.engine.context",
    "ResultCursor": "repro.engine.cursor",
    "BatchResult": "repro.engine.batch",
    "StrategyCapabilities": "repro.engine.registry",
    "StrategyRegistration": "repro.engine.registry",
    "StrategyChoice": "repro.engine.registry",
    "UnknownStrategyError": "repro.engine.registry",
    "register_strategy": "repro.engine.registry",
    "create_strategy": "repro.engine.registry",
    "available_strategies": "repro.engine.registry",
    "capable_strategies": "repro.engine.registry",
    "batch_aware_strategies": "repro.engine.registry",
    "select_strategy": "repro.engine.registry",
}

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.engine.async_engine import AsyncEngine, AsyncResultCursor
    from repro.engine.batch import BatchResult
    from repro.engine.builder import QueryBuilder
    from repro.engine.context import ExecutionContext
    from repro.engine.cursor import ResultCursor
    from repro.engine.engine import Engine
    from repro.engine.registry import (
        StrategyCapabilities,
        StrategyChoice,
        StrategyRegistration,
        UnknownStrategyError,
        available_strategies,
        batch_aware_strategies,
        capable_strategies,
        create_strategy,
        register_strategy,
        select_strategy,
    )


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.engine' has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
