"""The Engine: one entry point for every way this library answers queries.

Historically the repo exposed three disconnected APIs — raw algorithm
objects (``FaginA0().top_k(session, agg, k)``), the string-query
``Garlic`` facade, and an ad-hoc benchmark harness. ``Engine`` unifies
them behind one fluent surface with pluggable strategies:

String/AST queries over federated subsystems (the Garlic scenario)::

    engine = Engine().register(relational).register(qbic)
    answer = engine.query('(Artist = "Beatles") AND (Color ~ "red")').top(5)

Raw ranked sources (the Section 5 formal model)::

    engine = Engine.over(independent_database(2, 10_000, seed=0))
    result = engine.query(MINIMUM).top(10)            # auto-selected A0'
    result = engine.query(MINIMUM).strategy("fagin").top(10)   # forced A0

Paging (Section 4's "continue where we left off")::

    cursor = engine.query(MINIMUM).cursor()
    page1, page2 = cursor.next_k(10), cursor.next_k(10)

Batches sharing one session / accounting ledger::

    batch = engine.run_many([MINIMUM, MEDIAN, ARITHMETIC_MEAN], k=10)

Concurrent serving (per-query sessions, one summed ledger; see also
:class:`~repro.engine.async_engine.AsyncEngine` for the awaitable
facade)::

    batch = engine.run_many(queries, k=10, parallel=8)

Every run flows through the same machinery: the planner's strategy
table is the engine's :mod:`~repro.engine.registry`, the executor's
accounting is Section 5's cost model, and ``Garlic`` itself is now a
thin deprecation shim over this class.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace as _dc_replace
from time import perf_counter
from typing import Callable, Iterable, Sequence

from repro.access.session import MiddlewareSession
from repro.access.source import (
    PagedBatchSource,
    SortedRandomSource,
    UnbatchedSource,
)
from repro.algorithms.base import TopKAlgorithm, TopKResult
from repro.core.aggregation import AggregationFunction
from repro.core.certify import (
    EXACT_GUARANTEE,
    Guarantee,
    QualityContract,
)
from repro.core.query import Query
from repro.engine.adaptive import (
    AdaptivePlanner,
    QueryShape,
    canonical_strategy_name,
    shape_of_aggregation,
    shape_of_query,
)
from repro.engine.batch import BatchResult, stats_of
from repro.engine.builder import QueryBuilder
from repro.engine.context import ExecutionContext
from repro.engine.cursor import ResultCursor, validate_k
from repro.engine.registry import StrategyChoice, select_strategy
from repro.exceptions import (
    EngineConfigurationError,
    PlanningError,
    SubsystemCapabilityError,
)
from repro.middleware.catalog import Catalog
from repro.middleware.executor import Executor, QueryAnswer
from repro.middleware.parser import parse_query
from repro.middleware.plan import AlgorithmPlan, PhysicalPlan
from repro.middleware.planner import Planner
from repro.subsystems.base import Subsystem

__all__ = ["Engine"]


class Engine:
    """The unified execution engine.

    An engine is backed in exactly one of two ways:

    * **catalog-backed** — subsystems registered via :meth:`register`;
      queries are strings or ASTs, planned and executed through the
      middleware (the Garlic deployment scenario);
    * **source-backed** — built with :meth:`over` from a
      :class:`~repro.access.scoring_database.ScoringDatabase`, a
      session factory, or a live session; queries are aggregation
      functions over the backing's ranked lists (the Section 5 formal
      model, and what the benchmarks drive).

    Parameters
    ----------
    context:
        The shared :class:`~repro.engine.context.ExecutionContext`
        (semantics, cost model, planner options, default k).
    """

    def __init__(self, context: ExecutionContext | None = None) -> None:
        self.context = context or ExecutionContext()
        self._catalog = Catalog()
        self._backing: object | None = None
        #: A ShardedEngine when built with :meth:`over_shards` — the
        #: multi-process backing. Mutually exclusive with both the
        #: catalog and a plain source backing.
        self._sharded = None
        self._random_access = True
        #: Cursor holding a live shared-session backing, if any. A
        #: MiddlewareSession backing has stateful sorted cursors, so it
        #: is single-consumer: once a cursor leases it, further queries
        #: would silently corrupt the cursor's progress — refuse them.
        self._session_lease: ResultCursor | None = None
        #: Cumulative serving ledger: every completed query, batch
        #: member, and cursor page flows its AccessStats here, so the
        #: engine can answer "what has this process spent so far" —
        #: the aggregate a /metrics endpoint reports. Guarded by a
        #: lock because queries complete on arbitrary threads
        #: (run_many pools, the AsyncEngine executor).
        self._metrics_lock = threading.Lock()
        self._metrics_counters = {
            "queries": 0,
            "cursor_pages": 0,
            "sorted": 0,
            "random": 0,
            # Delivered-guarantee tally (the quality plane of
            # /metrics): how many completed queries certified which
            # contract kind.
            "exact": 0,
            "approximate": 0,
            "anytime": 0,
        }
        #: The adaptive planning layer (plan cache + calibrated cost
        #: model + measured-history chooser), or None when the context
        #: disables it. The chooser only steers one-shot auto-selected
        #: queries; cursors and run_many batches reuse cached plans but
        #: never consult it (see repro.engine.adaptive's determinism
        #: contract).
        self._adaptive: AdaptivePlanner | None = (
            AdaptivePlanner(self.context.adaptive_options)
            if self.context.adaptive
            else None
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def over(
        cls,
        backing: object,
        context: ExecutionContext | None = None,
        *,
        random_access: bool = True,
    ) -> "Engine":
        """An engine over raw ranked sources instead of subsystems.

        ``backing`` may be a ``ScoringDatabase`` (anything with a
        ``session()`` method), a zero-argument session factory, or a
        live :class:`~repro.access.session.MiddlewareSession` (which
        the engine then shares across queries — its cost tracker
        becomes the engine's ledger). ``random_access=False`` restricts
        strategy selection to sorted-only algorithms (footnote 5's
        missing capability).
        """
        if not (
            isinstance(backing, MiddlewareSession)
            or callable(backing)
            or callable(getattr(backing, "session", None))
        ):
            raise EngineConfigurationError(
                f"cannot back an engine with {type(backing).__name__}; "
                "expected a ScoringDatabase, a session factory, or a "
                "MiddlewareSession"
            )
        engine = cls(context)
        engine._backing = backing
        engine._random_access = random_access
        return engine

    @classmethod
    def over_shards(
        cls,
        store,
        context: ExecutionContext | None = None,
        *,
        shards: int,
        processes: int | None = None,
        start_method: str | None = None,
        backend: str | None = None,
    ) -> "Engine":
        """An engine over a columnar store split into worker processes.

        The store is partitioned into ``shards`` shared-memory shards
        served by ``processes`` persistent workers (``0`` = inline, no
        pool — the accounting reference); queries run per shard and
        merge by threshold exchange into answers and ledgers identical
        to :meth:`over` on the whole store. See
        :class:`~repro.sharding.engine.ShardedEngine` for the knobs
        and DESIGN.md "Sharded execution" for the protocol.

        The engine *owns* the pools and segments: call :meth:`close`
        (or use the engine as a context manager) when done.
        """
        from repro.sharding.engine import ShardedEngine

        engine = cls(context)
        engine._sharded = ShardedEngine(
            store,
            shards=shards,
            processes=processes,
            start_method=start_method,
            backend=backend,
        )
        return engine

    def register(self, subsystem: Subsystem) -> "Engine":
        """Register a data server (catalog-backed engines); chains."""
        if self._is_source_backed():
            raise EngineConfigurationError(
                "this engine is source- or shard-backed; subsystems can "
                "only be registered on an engine built with Engine()"
            )
        self._catalog.register(subsystem)
        return self

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def sharding(self):
        """The :class:`~repro.sharding.engine.ShardedEngine` backing
        this engine, or ``None`` — the serving layer's hook for
        worker-pool liveness (``/healthz``) and shard counters."""
        return self._sharded

    @property
    def semantics(self):
        return self.context.semantics

    def query(
        self, query: "str | Query | AggregationFunction | None" = None
    ) -> QueryBuilder:
        """Start a fluent query; see :class:`QueryBuilder`.

        ``query`` is a string or AST for catalog-backed engines, an
        aggregation function (or nothing, with ``.using(...)``) for
        source-backed ones.
        """
        return QueryBuilder(self, query)

    def plan(
        self, query: "str | Query", conjunction: str | None = None
    ) -> PhysicalPlan:
        """Plan a catalog query without executing it."""
        return self._plan_for(
            query=self._require_query(query),
            aggregation=None,
            strategy=None,
            conjunction=conjunction,
        )

    def explain(
        self, query: "str | Query", conjunction: str | None = None
    ) -> str:
        """The plan's human-readable strategy description.

        With the adaptive layer on, the report carries an extra block:
        the normalized shape, whether the plan came from the cache,
        the calibrated cost estimate for the chosen strategy, and the
        measured per-strategy history backing the chooser's verdict.
        """
        return self._explain_spec(
            self._require_query(query), None, None, conjunction, None
        )

    def _explain_spec(
        self,
        query: "str | Query | None",
        aggregation: AggregationFunction | None,
        strategy: str | None,
        conjunction: str | None,
        adaptive: "bool | None",
        epsilon: "float | None" = None,
    ) -> str:
        contract = self._contract_for(epsilon)
        if self._is_source_backed() and aggregation is not None:
            # Source-backed explain: the strategy the registry would
            # pick (including the ε-contract steering) plus the
            # guarantee the run would certify.
            num_lists = (
                self._sharded.num_lists
                if self._sharded is not None
                else self._fresh_session().num_lists
            )
            choice = self._select(aggregation, num_lists, strategy, contract)
            return "\n".join(
                [
                    f"strategy: {choice.name}",
                    f"reason: {choice.reason}",
                    f"guarantee: {self._describe_contract(contract)}",
                ]
            )
        layer = self._adaptive_for(adaptive)
        plan, shape, hit = self._plan_with_shape(
            query, aggregation, strategy, conjunction, adaptive=layer,
            epsilon=contract.epsilon,
        )
        text = plan.explain()
        if layer is not None and shape is not None:
            lines = layer.explain_lines(
                shape,
                plan,
                hit,
                self._catalog.num_objects,
                self.context.default_k,
                shape.random_access,
                self.context.cost_model,
            )
            text = "\n".join([text, *lines])
        return "\n".join([text, f"guarantee: {self._describe_contract(contract)}"])

    @staticmethod
    def _describe_contract(contract: QualityContract) -> str:
        if contract.epsilon == 0.0:
            return "exact (run to certified completion)"
        return (
            f"ε={contract.epsilon:g} approximate — stop once "
            f"(1+ε)·g_k ≥ τ; every returned grade is certified within "
            f"a (1+ε) factor of anything excluded"
        )

    def run_many(
        self,
        queries: Iterable[object],
        k: int | None = None,
        parallel: int | None = None,
    ) -> BatchResult:
        """Execute a batch of queries with shared per-engine state.

        Each entry is a query spec (string/AST for catalog-backed
        engines, aggregation function for source-backed ones) or a
        ``(spec, k)`` pair overriding the batch-wide ``k``.

        Serial (``parallel=None``) source-backed batches literally
        share **one session and one cost tracker**: each run restarts
        the sorted cursors (a fresh subquery issue, charged as such)
        and the tracker accumulates the batch-wide S and R.
        Catalog-backed batches share an atom-evaluation cache, so an
        atomic subquery appearing in several batch members is issued
        to its subsystem once per batch; every consumer gets its own
        forked cursor over that one evaluation.

        ``parallel=N`` executes the batch members on a thread pool of
        ``N`` workers. Each member runs in its **own session** (its
        own cursors and cost tracker); the batch ledger is the sum of
        the per-member :class:`~repro.access.cost.AccessStats`, which
        makes the Section 5 accounting bit-identical to the serial
        path — a member performs the same accesses whether its fresh
        session was minted concurrently or after a restart. The shared
        atom cache stays shared, with single-flight evaluation per
        atom. A source-backed engine over a live
        :class:`~repro.access.session.MiddlewareSession` cannot mint
        per-member sessions and refuses ``parallel``.
        """
        if parallel is not None and (
            isinstance(parallel, bool)
            or not isinstance(parallel, int)
            or parallel < 1
        ):
            raise EngineConfigurationError(
                f"parallel must be a positive int or None, got {parallel!r}"
            )
        default_k = validate_k(
            k if k is not None else self.context.default_k
        )
        specs = [self._normalise_spec(entry, default_k) for entry in queries]
        if self._sharded is not None:
            if parallel is not None:
                raise EngineConfigurationError(
                    "sharded engines already parallelise across their "
                    "worker-process pool; drop parallel= (pool width is "
                    "fixed at construction via processes=)"
                )
            batch = self._run_many_sharded(specs)
        elif self._is_source_backed():
            if parallel is None:
                batch = self._run_many_sources(specs)
            else:
                batch = self._run_many_sources_parallel(specs, parallel)
        else:
            batch = self._run_many_catalog(specs, parallel)
        self._record_batch(batch)
        return batch

    def metrics_snapshot(self) -> dict:
        """Aggregate serving metrics: ledger totals and cache counters.

        The cumulative counterpart of a single result's
        :class:`~repro.access.cost.AccessStats`: every completed query
        (one-shot, batch member, or cursor page) adds its accesses to
        a process-wide ledger, and every registered subsystem reports
        its :class:`~repro.subsystems.base.RankingCache` hit/miss
        counters. Usable standalone (capacity tuning, dashboards) and
        consumed verbatim by the serving layer's ``/metrics`` plane.

        Returns a plain JSON-serialisable dict::

            {
              "backing": "source" | "catalog",
              "queries": <completed top-k runs + batch members>,
              "cursor_pages": <pages fetched through engine cursors>,
              "access": {"sorted": S, "random": R, "total": S + R},
              "ranking_caches": {<subsystem>: {"hits": ..., ...}},
              "cache_totals": {"hits": H, "misses": M},
              "planner": {"enabled": ..., "plan_cache": {...},
                          "chooser": {...}, "calibration": {...}},
            }

        Thread-safe: counters are read under the ledger lock, cache
        counters are single-int reads of the live caches (a snapshot
        taken mid-burst may be one access ahead on one subsystem —
        monotone, never inconsistent with itself).
        """
        with self._metrics_lock:
            counters = dict(self._metrics_counters)
        caches: dict[str, dict[str, object]] = {}
        total_hits = total_misses = 0
        if not self._is_source_backed():
            for subsystem in self._catalog.subsystems:
                # Peek rather than touch the lazy property: a
                # subsystem that never served a query should report
                # zeros, not have a cache minted by the report.
                cache = subsystem.__dict__.get("_ranking_cache")
                if cache is None:
                    caches[subsystem.name] = {
                        "hits": 0, "misses": 0, "entries": 0,
                        "capacity": subsystem.ranking_cache_capacity,
                    }
                    continue
                caches[subsystem.name] = {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "entries": len(cache),
                    "capacity": cache.capacity,
                }
                total_hits += cache.hits
                total_misses += cache.misses
        if self._sharded is not None:
            backing = "sharded"
        elif self._is_source_backed():
            backing = "source"
        else:
            backing = "catalog"
        snapshot = {
            "backing": backing,
            "queries": counters["queries"],
            "cursor_pages": counters["cursor_pages"],
            "access": {
                "sorted": counters["sorted"],
                "random": counters["random"],
                "total": counters["sorted"] + counters["random"],
            },
            "ranking_caches": caches,
            "cache_totals": {"hits": total_hits, "misses": total_misses},
            # Delivered guarantees: what quality the completed queries
            # actually certified (an ε>0 request answered by an exact
            # run — A0, or an early exhaustion — counts as exact).
            "quality": {
                "exact": counters["exact"],
                "approximate": counters["approximate"],
                "anytime": counters["anytime"],
            },
            "planner": (
                self._adaptive.metrics()
                if self._adaptive is not None
                else {"enabled": False}
            ),
        }
        if self._sharded is not None:
            # Shards/processes/backend plus cumulative probe counters —
            # the shard plane of a /metrics report.
            snapshot["sharding"] = self._sharded.metrics()
        return snapshot

    def __repr__(self) -> str:
        if self._sharded is not None:
            return f"Engine(over={self._sharded!r})"
        if self._is_source_backed():
            return f"Engine(over={type(self._backing).__name__})"
        return f"Engine({self._catalog!r})"

    # ------------------------------------------------------------------
    # Spec handling
    # ------------------------------------------------------------------

    def _is_source_backed(self) -> bool:
        # Sharded engines answer the same aggregation-shaped queries a
        # source backing does; only the execution substrate differs.
        return self._backing is not None or self._sharded is not None

    def close(self) -> None:
        """Release owned execution resources (idempotent).

        Today that is the sharded backing's worker pools and
        shared-memory segments; engines without one close to a no-op.
        Usable as a context manager for scoped ownership.
        """
        if self._sharded is not None:
            self._sharded.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving ledger (metrics_snapshot's data plane)
    # ------------------------------------------------------------------

    def _record_query(
        self, stats, guarantee: "Guarantee | None" = None
    ) -> None:
        with self._metrics_lock:
            self._metrics_counters["queries"] += 1
            self._metrics_counters["sorted"] += stats.sorted_cost
            self._metrics_counters["random"] += stats.random_cost
            if guarantee is not None:
                self._metrics_counters[guarantee.kind] += 1

    def _record_page(self, page: TopKResult) -> None:
        with self._metrics_lock:
            self._metrics_counters["cursor_pages"] += 1
            self._metrics_counters["sorted"] += page.stats.sorted_cost
            self._metrics_counters["random"] += page.stats.random_cost

    def _record_batch(self, batch: BatchResult) -> None:
        kinds = {"exact": 0, "approximate": 0, "anytime": 0}
        for answer in batch:
            result = getattr(answer, "result", answer)
            guarantee = getattr(result, "guarantee", None)
            kinds[(guarantee or EXACT_GUARANTEE).kind] += 1
        with self._metrics_lock:
            self._metrics_counters["queries"] += len(batch)
            self._metrics_counters["sorted"] += batch.total_sorted
            self._metrics_counters["random"] += batch.total_random
            for kind, count in kinds.items():
                self._metrics_counters[kind] += count

    def _require_query(self, query: object) -> "str | Query":
        if not isinstance(query, (str, Query)):
            raise EngineConfigurationError(
                f"expected a query string or AST, got {type(query).__name__}"
            )
        return query

    def _normalise_spec(
        self, entry: object, default_k: int
    ) -> tuple[object, int]:
        # bool is an int subclass, so without the explicit exclusion a
        # (spec, True) pair would silently run with k=1 instead of
        # falling through as a malformed spec.
        if (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[1], int)
            and not isinstance(entry[1], bool)
        ):
            if entry[1] < 1:
                raise ValueError(
                    f"k must be at least 1, got {entry[1]} "
                    f"(spec {entry[0]!r})"
                )
            return entry[0], entry[1]
        return entry, default_k

    def _parse(self, query: "str | Query") -> Query:
        return parse_query(query) if isinstance(query, str) else query

    # ------------------------------------------------------------------
    # Catalog-backed execution
    # ------------------------------------------------------------------

    def _planner(self, conjunction: str | None) -> Planner:
        return Planner(
            self._catalog,
            self.context.semantics,
            self.context.planner_options(conjunction),
            cost_model=self.context.cost_model,
            batch_size=self.context.batch_size,
        )

    def _executor(
        self,
        evaluate: Callable[[object], SortedRandomSource] | None = None,
    ) -> Executor:
        return Executor(
            self._catalog, self.context.semantics, evaluate_atom=evaluate
        )

    def _random_access_ok(self, atoms: Sequence) -> bool:
        return all(
            self._catalog.subsystem_for(a).supports_random_access
            for a in atoms
        )

    def _adaptive_for(self, flag: "bool | None") -> AdaptivePlanner | None:
        """The adaptive layer a query should use, honoring the opt-out.

        ``flag`` is the builder's per-query setting: ``False`` opts
        out; ``None``/``True`` use the engine's layer (which is None
        when the context disabled adaptive planning entirely).
        """
        if flag is False:
            return None
        return self._adaptive

    def _contract_for(self, epsilon: "float | None") -> QualityContract:
        """The quality contract a query runs under.

        The builder's per-query ε (``None`` means "not set") overrides
        the context's deployment-wide default; ε=0 normalises to the
        exact contract, so the historical call paths are untouched.
        """
        eps = self.context.epsilon if epsilon is None else epsilon
        return QualityContract.approximate(eps)

    def _plan_for(
        self,
        query: "str | Query | None",
        aggregation: AggregationFunction | None,
        strategy: str | None,
        conjunction: str | None,
        k: int | None = None,
        adaptive: "bool | None" = None,
    ) -> PhysicalPlan:
        plan, _shape, _hit = self._plan_with_shape(
            query, aggregation, strategy, conjunction, k,
            self._adaptive_for(adaptive),
        )
        return plan

    def _plan_with_shape(
        self,
        query: "str | Query | None",
        aggregation: AggregationFunction | None,
        strategy: str | None,
        conjunction: str | None,
        k: int | None = None,
        adaptive: AdaptivePlanner | None = None,
        epsilon: float = 0.0,
    ) -> "tuple[PhysicalPlan, QueryShape | None, bool]":
        """Plan a catalog query, through the plan cache when adaptive.

        Returns ``(plan, shape, cache_hit)``; shape is None when the
        adaptive layer is off for this call. The shape is normalized
        over the *rewritten* tree so idempotence rewrites (``A AND A``
        vs ``A``) cannot alias distinct plans under one key.
        """
        if self._is_source_backed():
            raise PlanningError(
                "source-backed engines select a strategy, not a physical "
                "plan; use .explain() or the registry directly"
            )
        if query is None:
            raise EngineConfigurationError(
                "catalog-backed queries need a query string or AST "
                "(pass it to engine.query(...))"
            )
        if aggregation is not None:
            raise EngineConfigurationError(
                "catalog-backed queries compile their aggregation from "
                "the query under the engine's semantics; .using() is "
                "for source-backed engines"
            )
        planner = self._planner(conjunction)
        shape: QueryShape | None = None
        hit = False
        if adaptive is not None:
            rewritten = planner.rewrite(self._parse(query))
            mode = (
                conjunction
                if conjunction is not None
                else self.context.conjunction
            )
            shape = shape_of_query(
                rewritten,
                self._catalog,
                k if k is not None else self.context.default_k,
                mode,
                self._random_access_ok(rewritten.atoms()),
                adaptive.catalog_fingerprint(self._catalog),
                epsilon=epsilon,
            )
            plan, hit = adaptive.plan_catalog(
                rewritten,
                shape,
                self.context.semantics,
                lambda: planner.plan_rewritten(rewritten),
            )
        else:
            plan = planner.plan(self._parse(query))
        if strategy is not None:
            if not isinstance(plan, AlgorithmPlan):
                raise PlanningError(
                    f"query plans to {type(plan).__name__}, which does "
                    "not take a pluggable algorithm; remove .strategy()"
                )
            assert plan.aggregation is not None
            if isinstance(strategy, TopKAlgorithm):
                choice = StrategyChoice(
                    strategy, "algorithm instance supplied by caller"
                )
            else:
                choice = select_strategy(
                    plan.aggregation,
                    len(plan.atoms),
                    random_access=self._random_access_ok(plan.atoms),
                    cost_model=self.context.cost_model,
                    require=strategy,
                )
            plan = _dc_replace(
                plan, algorithm=choice.algorithm, reason=choice.reason
            )
        return plan, shape, hit

    # ------------------------------------------------------------------
    # Source-backed execution
    # ------------------------------------------------------------------

    def _fresh_session(self) -> MiddlewareSession:
        backing = self._backing
        assert backing is not None
        if isinstance(backing, MiddlewareSession):
            if self._session_lease is not None:
                raise EngineConfigurationError(
                    "a cursor holds this engine's shared session; an "
                    "engine over a live MiddlewareSession is single-"
                    "consumer once a cursor is open (restarting the "
                    "shared sorted streams would corrupt the cursor's "
                    "progress). Back the engine with a database or "
                    "session factory to interleave queries with cursors."
                )
            return backing
        session_method = getattr(backing, "session", None)
        if callable(session_method):
            return session_method()
        assert callable(backing)
        session = backing()
        if not isinstance(session, MiddlewareSession):
            raise EngineConfigurationError(
                f"session factory returned {type(session).__name__}, "
                "expected a MiddlewareSession"
            )
        return session

    def _select(
        self,
        aggregation: AggregationFunction | None,
        num_lists: int,
        strategy: "str | TopKAlgorithm | None",
        contract: "QualityContract | None" = None,
    ) -> StrategyChoice:
        if aggregation is None:
            raise EngineConfigurationError(
                "source-backed queries need an aggregation: pass it to "
                "engine.query(...) or chain .using(...)"
            )
        if isinstance(strategy, TopKAlgorithm):
            # A pre-built algorithm (possibly tuned via constructor
            # args); it validates its own preconditions at run time.
            return StrategyChoice(
                strategy, "algorithm instance supplied by caller"
            )
        if (
            strategy is None
            and contract is not None
            and contract.epsilon > 0.0
            and aggregation.monotone
            and self._random_access
        ):
            # ε-approximate contract: the default pick would be A0,
            # whose match-count stop cannot exploit the relaxation (it
            # observes no grades). TA's threshold stop can — steer the
            # auto-selection to it so paying ε buys fewer accesses.
            # Forced strategies and non-random-access workloads (NRA,
            # which also honours ε) are left alone.
            choice = select_strategy(
                aggregation,
                num_lists,
                random_access=self._random_access,
                cost_model=self.context.cost_model,
                require="threshold",
            )
            return StrategyChoice(
                choice.algorithm,
                f"ε={contract.epsilon:g} approximate contract: TA's "
                "θ/(1+ε) stopping rule converts the slack into early "
                "termination (A0's match-count stop cannot)",
            )
        return select_strategy(
            aggregation,
            num_lists,
            random_access=self._random_access,
            cost_model=self.context.cost_model,
            require=strategy,
        )

    # ------------------------------------------------------------------
    # Terminal operations (called by QueryBuilder)
    # ------------------------------------------------------------------

    def _plan_scopes(
        self, plan: PhysicalPlan, stats
    ) -> dict[str, tuple[int, int]]:
        """Per-subsystem (sorted, random) counts for one executed plan.

        The per-list entries of an ``AccessStats`` align positionally
        with the plan's atom order (the order the executor minted
        sources in); summing them per owning subsystem gives the
        calibration scopes.
        """
        atoms = getattr(plan, "atoms", ())
        if hasattr(plan, "filter_atoms"):
            # The filtered-conjunct executor mints filter sources
            # first, then the graded ones.
            atoms = plan.filter_atoms + plan.graded_atoms
        scopes: dict[str, list[int]] = {}
        if len(atoms) != stats.num_lists:
            # Internal-conjunction pushdown (one merged stream) or any
            # future shape mismatch: attribute the whole ledger to one
            # scope rather than guessing a split.
            name = (
                plan.subsystem.name
                if getattr(plan, "subsystem", None) is not None
                else "catalog"
            )
            return {name: (stats.sorted_cost, stats.random_cost)}
        for i, atom in enumerate(atoms):
            name = self._catalog.subsystem_for(atom).name
            cell = scopes.setdefault(name, [0, 0])
            cell[0] += stats.sorted_by_list[i]
            cell[1] += stats.random_by_list[i]
        return {name: (s, r) for name, (s, r) in scopes.items()}

    def _execute(
        self,
        query: "str | Query | None",
        aggregation: AggregationFunction | None,
        strategy: str | None,
        conjunction: str | None,
        k: int | None,
        adaptive: "bool | None" = None,
        epsilon: "float | None" = None,
    ):
        # Validate before any session is minted or plan executed, so
        # .top(0) / .top(True) fails fast with a clear message on both
        # backings (previously only the algorithm/executor layer caught
        # non-positive k, after side effects — and bools not at all).
        k = validate_k(k if k is not None else self.context.default_k)
        contract = self._contract_for(epsilon)
        if self._is_source_backed():
            if query is not None:
                raise EngineConfigurationError(
                    "source-backed engines take an aggregation, not a "
                    "query string; register subsystems on Engine() for "
                    "string queries"
                )
            if self._sharded is not None:
                if aggregation is None:
                    raise EngineConfigurationError(
                        "source-backed queries need an aggregation: pass "
                        "it to engine.query(...) or chain .using(...)"
                    )
                if strategy is not None and not isinstance(strategy, str):
                    raise EngineConfigurationError(
                        "sharded engines force strategies by registry "
                        "name (the algorithm runs in worker processes); "
                        f"got {type(strategy).__name__}"
                    )
                result = self._sharded.top_k(
                    aggregation, k, strategy=strategy, contract=contract
                )
                self._record_query(result.stats, result.guarantee)
                return result
            session = self._fresh_session()
            if isinstance(self._backing, MiddlewareSession):
                session.restart_all()
            choice = self._select(
                aggregation, session.num_lists, strategy, contract
            )
            layer = self._adaptive_for(adaptive)
            shape = None
            if layer is not None:
                assert aggregation is not None
                shape = shape_of_aggregation(
                    aggregation,
                    session.num_lists,
                    k,
                    self._random_access,
                    layer.source_fingerprint(self._backing),
                    epsilon=contract.epsilon,
                )
                # The chooser's override slate is calibrated on exact
                # runs; under an ε-contract the contract-driven
                # steering already picked the algorithm that can spend
                # the slack, so the chooser only observes (the ε-keyed
                # shape keeps its histories separate).
                if strategy is None and contract.epsilon == 0.0:
                    decision = layer.choose_source(
                        shape,
                        choice.name,
                        aggregation,
                        session.num_lists,
                        session.num_objects,
                        k,
                        self._random_access,
                        self.context.cost_model,
                    )
                    if decision.strategy != canonical_strategy_name(
                        choice.name
                    ):
                        choice = select_strategy(
                            aggregation,
                            session.num_lists,
                            random_access=self._random_access,
                            cost_model=self.context.cost_model,
                            require=decision.strategy,
                        )
                        choice = StrategyChoice(
                            choice.algorithm,
                            f"{choice.reason} | adaptive {decision.mode}: "
                            f"{decision.reason}",
                        )
            started = perf_counter()
            result = choice.algorithm.top_k(session, aggregation, k, contract)
            elapsed = perf_counter() - started
            self._record_query(result.stats, result.guarantee)
            if layer is not None:
                # Instances forced by the caller may be tuned away from
                # the registry's defaults — calibrate on them, but keep
                # their runs out of the per-strategy ledger.
                named = strategy is None or isinstance(strategy, str)
                layer.record(
                    shape if named else None,
                    choice.name if named else None,
                    result.stats,
                    elapsed,
                    {
                        "store": (
                            result.stats.sorted_cost,
                            result.stats.random_cost,
                        )
                    },
                    self.context.cost_model,
                )
            return result
        layer = self._adaptive_for(adaptive)
        plan, shape, _hit = self._plan_with_shape(
            query, aggregation, strategy, conjunction, k, layer,
            epsilon=contract.epsilon,
        )
        decision = None
        if (
            layer is not None
            and shape is not None
            and strategy is None
            and contract.epsilon == 0.0
        ):
            plan, decision = layer.choose_catalog(
                shape,
                plan,
                self._catalog.num_objects,
                k,
                shape.random_access,
                self.context.cost_model,
            )
        if (
            contract.epsilon > 0.0
            and strategy is None
            and isinstance(plan, AlgorithmPlan)
            and plan.aggregation is not None
            and plan.aggregation.monotone
            and self._random_access_ok(plan.atoms)
        ):
            # Same steering as the source path: the ε slack only pays
            # off through TA's threshold stop, so swap it in for the
            # planner's static pick (cached plans are keyed by the
            # ε-aware shape, and the swap happens after the cache, so
            # exact traffic never sees a steered plan).
            steered = select_strategy(
                plan.aggregation,
                len(plan.atoms),
                random_access=True,
                cost_model=self.context.cost_model,
                require="threshold",
            )
            plan = _dc_replace(
                plan,
                algorithm=steered.algorithm,
                reason=(
                    f"ε={contract.epsilon:g} approximate contract: TA's "
                    "θ/(1+ε) stopping rule converts the slack into "
                    "early termination"
                ),
            )
        started = perf_counter()
        answer = self._executor().execute(plan, k, contract=contract)
        elapsed = perf_counter() - started
        self._record_query(answer.result.stats, answer.result.guarantee)
        if layer is not None and shape is not None:
            named = (
                isinstance(plan, AlgorithmPlan)
                and plan.algorithm is not None
                and (strategy is None or isinstance(strategy, str))
            )
            layer.record(
                shape if named else None,
                plan.algorithm.name if named else None,  # type: ignore[union-attr]
                answer.result.stats,
                elapsed,
                self._plan_scopes(plan, answer.result.stats),
                self.context.cost_model,
                batched=getattr(plan, "batch_size", None) is not None,
            )
        return answer

    def _open_cursor(
        self,
        query: "str | Query | None",
        aggregation: AggregationFunction | None,
        strategy: "str | TopKAlgorithm | None",
        conjunction: str | None,
        epsilon: "float | None" = None,
    ) -> ResultCursor:
        target_epsilon = self._contract_for(epsilon).epsilon
        if strategy is not None:
            raise PlanningError(
                "cursors page with the incremental Fagin machinery "
                "(Section 4's \"continue where we left off\"); a forced "
                ".strategy() cannot apply — remove it or use .top()"
            )
        if self._is_source_backed():
            if query is not None:
                raise EngineConfigurationError(
                    "source-backed engines take an aggregation, not a "
                    "query string"
                )
            if self._sharded is not None:
                raise PlanningError(
                    "sharded engines do not support cursors: incremental "
                    "paging needs one live session, and a sharded query "
                    "is many per-probe sessions merged after the fact; "
                    "re-issue with a larger k, or page against "
                    "Engine.over(store) on the unsharded store"
                )
            if aggregation is None:
                raise EngineConfigurationError(
                    "cursors need an aggregation: pass it to "
                    "engine.query(...) or chain .using(...)"
                )
            session = self._fresh_session()
            shared = isinstance(self._backing, MiddlewareSession)
            if shared:
                session.restart_all()
            cursor = ResultCursor(
                session,
                aggregation,
                default_k=self.context.default_k,
                cost_model=self.context.cost_model,
                on_page=self._record_page,
                epsilon=target_epsilon,
            )
            if shared:
                self._session_lease = cursor
            return cursor
        plan = self._plan_for(query, aggregation, None, conjunction)
        if not isinstance(plan, AlgorithmPlan):
            raise PlanningError(
                f"query plans to {type(plan).__name__}, which does "
                "not support cursors; re-issue with a larger k instead"
            )
        assert plan.aggregation is not None
        raw = [
            self._catalog.subsystem_for(atom).evaluate_batched(
                atom, plan.batch_size
            )
            if plan.batch_size is not None
            else self._catalog.subsystem_for(atom).evaluate(atom)
            for atom in plan.atoms
        ]
        session = MiddlewareSession.over_sources(
            raw, num_objects=self._catalog.num_objects
        )
        return ResultCursor(
            session,
            plan.aggregation,
            default_k=self.context.default_k,
            query=self._parse(query),  # type: ignore[arg-type]
            cost_model=self.context.cost_model,
            on_page=self._record_page,
            epsilon=target_epsilon,
        )

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def _run_many_sources(
        self, specs: Sequence[tuple[object, int]]
    ) -> BatchResult:
        session = self._fresh_session()
        before = session.tracker.snapshot()
        answers: list[TopKResult] = []
        for aggregation, k in specs:
            if not isinstance(aggregation, AggregationFunction):
                raise EngineConfigurationError(
                    "source-backed batches take aggregation functions, "
                    f"got {type(aggregation).__name__}"
                )
            # A fresh sorted scan per query — a real re-issued subquery,
            # charged as such — but one session, one tracker.
            session.restart_all()
            contract = self._contract_for(None)
            choice = self._select(
                aggregation, session.num_lists, None, contract
            )
            answers.append(
                choice.algorithm.top_k(session, aggregation, k, contract)
            )
        after = session.tracker.snapshot()
        return BatchResult(
            answers=tuple(answers),
            total_sorted=after.sorted_cost - before.sorted_cost,
            total_random=after.random_cost - before.random_cost,
            details={"shared_session": True, "queries": len(answers)},
        )

    def _run_many_sources_parallel(
        self, specs: Sequence[tuple[object, int]], parallel: int
    ) -> BatchResult:
        """Source-backed batch on a thread pool: one session per member.

        The backing must be able to mint independent sessions (a
        database or session factory); the per-member
        :class:`~repro.algorithms.base.TopKResult` stats are summed
        after the fact into the batch ledger, which equals the serial
        shared-tracker totals exactly (each member performs the same
        accesses either way).
        """
        if isinstance(self._backing, MiddlewareSession):
            raise EngineConfigurationError(
                "an engine over a live MiddlewareSession is single-"
                "consumer and cannot run batch members in parallel; "
                "back the engine with a database or session factory"
            )
        for aggregation, _ in specs:
            if not isinstance(aggregation, AggregationFunction):
                raise EngineConfigurationError(
                    "source-backed batches take aggregation functions, "
                    f"got {type(aggregation).__name__}"
                )

        def run_one(spec: tuple[object, int]) -> TopKResult:
            aggregation, k = spec
            session = self._fresh_session()
            contract = self._contract_for(None)
            choice = self._select(
                aggregation, session.num_lists, None, contract
            )
            return choice.algorithm.top_k(session, aggregation, k, contract)

        with ThreadPoolExecutor(
            max_workers=parallel, thread_name_prefix="repro-run-many"
        ) as pool:
            answers = list(pool.map(run_one, specs))
        return BatchResult(
            answers=tuple(answers),
            total_sorted=sum(a.stats.sorted_cost for a in answers),
            total_random=sum(a.stats.random_cost for a in answers),
            details={
                "shared_session": False,
                "parallel": parallel,
                "queries": len(answers),
            },
        )

    def _run_many_sharded(
        self, specs: Sequence[tuple[object, int]]
    ) -> BatchResult:
        """Batch execution routed across the shard worker pool.

        Every member runs the full threshold-exchange merge with its
        own deterministic ledger; the merges advance round-
        synchronously, each round's probes for the whole batch shipped
        as one task per pinned pool (see
        :meth:`ShardedEngine.run_many`). The batch ledger is the sum
        of the member ledgers — the same totals the members would
        produce run one at a time.
        """
        assert self._sharded is not None
        for aggregation, _ in specs:
            if not isinstance(aggregation, (AggregationFunction, str)):
                raise EngineConfigurationError(
                    "sharded batches take aggregation functions or wire "
                    f"names, got {type(aggregation).__name__}"
                )
        answers = self._sharded.run_many(
            specs, contract=self._contract_for(None)
        )
        return BatchResult(
            answers=tuple(answers),
            total_sorted=sum(a.stats.sorted_cost for a in answers),
            total_random=sum(a.stats.random_cost for a in answers),
            details={
                "sharded": True,
                "shards": self._sharded.num_shards,
                "processes": self._sharded.processes,
                "queries": len(answers),
            },
        )

    def _run_many_catalog(
        self, specs: Sequence[tuple[object, int]], parallel: int | None = None
    ) -> BatchResult:
        #: One pristine raw evaluation per atom; every consumer reads
        #: through its own forked cursor, so the cached source's state
        #: is never mutated (the previous restart()-based reuse broke
        #: as soon as two plans interleaved — e.g. on a thread pool).
        #: Entries are (template, forkable): sources that cannot fork
        #: are still reused serially via restart() — sound when plans
        #: run to completion one after another — but re-evaluated per
        #: use on the parallel path, where interleaving is real.
        cache: dict[object, tuple[SortedRandomSource, bool]] = {}
        cache_lock = threading.Lock()
        atom_locks: dict[object, threading.Lock] = {}
        counters = {"atom_evaluations": 0, "atom_reuses": 0}
        serial = parallel is None

        def reuse(template: SortedRandomSource, forkable: bool):
            """A fresh-cursor view of a cached evaluation, or None when
            the template cannot be shared safely (unforkable + parallel).
            Called under ``cache_lock``."""
            if forkable:
                counters["atom_reuses"] += 1
                return template.fork()
            if serial:
                # Re-issuing the subquery from the top; subsequent
                # accesses are real and charged to the new session.
                template.restart()
                counters["atom_reuses"] += 1
                return template
            return None

        def raw_for(atom) -> SortedRandomSource:
            """A fresh-cursor source for one use of ``atom``.

            Single-flight: concurrent first requests for the same atom
            evaluate it once (per-atom lock); everyone mints a fork.
            """
            with cache_lock:
                entry = cache.get(atom)
                if entry is not None:
                    reused = reuse(*entry)
                    if reused is not None:
                        return reused
                build_lock = atom_locks.setdefault(atom, threading.Lock())
            with build_lock:
                with cache_lock:
                    entry = cache.get(atom)
                    if entry is not None:
                        reused = reuse(*entry)
                        if reused is not None:
                            return reused
                raw = self._catalog.subsystem_for(atom).evaluate(atom)
                try:
                    out = raw.fork()
                    forkable = True
                except SubsystemCapabilityError:
                    out = raw
                    forkable = False
                with cache_lock:
                    counters["atom_evaluations"] += 1
                    if forkable or serial:
                        cache[atom] = (raw, forkable)
                return out

        def evaluate(atom, batch_size=None) -> SortedRandomSource:
            # The cache holds the *raw* evaluation (the expensive part:
            # the subsystem computing its graded set); each request
            # then gets its own plan's transport wrapper, so two batch
            # members that negotiated different transports for a
            # shared atom still reuse one evaluation without either
            # bypassing its plan's page cap (or lack thereof).
            raw = raw_for(atom)
            if batch_size is None:
                return raw
            # Mirror Subsystem.evaluate_batched over the cached source.
            if self._catalog.subsystem_for(atom).supports_batched_access:
                return PagedBatchSource(raw, batch_size)
            return UnbatchedSource(raw)

        executor = self._executor(evaluate=evaluate)

        batch_contract = self._contract_for(None)

        def run_one(spec_k: tuple[object, int]) -> QueryAnswer:
            spec, k = spec_k
            plan = self._plan_for(self._require_query(spec), None, None, None)
            return executor.execute(plan, k, contract=batch_contract)

        if parallel is None:
            answers = [run_one(spec_k) for spec_k in specs]
        else:
            with ThreadPoolExecutor(
                max_workers=parallel, thread_name_prefix="repro-run-many"
            ) as pool:
                answers = list(pool.map(run_one, specs))
        total_sorted = sum(stats_of(a).sorted_cost for a in answers)
        total_random = sum(stats_of(a).random_cost for a in answers)
        details: dict[str, object] = {**counters, "queries": len(answers)}
        if parallel is not None:
            details["parallel"] = parallel
        return BatchResult(
            answers=tuple(answers),
            total_sorted=total_sorted,
            total_random=total_random,
            details=details,
        )
