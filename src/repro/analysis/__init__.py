"""Analysis utilities: bounds, experiment running, fitting, tables.

The quantitative side of the reproduction — closed-form envelopes from
Sections 5-7, the trial runner behind every benchmark, log-log exponent
fitting for the Theta claims, and table rendering for EXPERIMENTS.md.
"""

from repro.analysis.adversary import (
    AdversaryOutcome,
    TouchRecorder,
    run_lemma62_adversary,
)
from repro.analysis.bounds import (
    WIMMERS_EXAMPLES,
    a0_cost_bound,
    chernoff_at_most,
    expected_intersection,
    expected_prefix_intersection,
    fagin_tail_bound,
    hard_query_lower_bound,
    lemma51_bound,
    lower_bound_probability,
    wimmers_tail_bound,
)
from repro.analysis.experiments import (
    CostSummary,
    measure_costs,
    run_trials,
    summarise,
)
from repro.analysis.fitting import PowerLawFit, fit_power_law
from repro.analysis.report import ReportSection, generate_report
from repro.analysis.tables import format_table, print_table

__all__ = [
    "AdversaryOutcome",
    "TouchRecorder",
    "run_lemma62_adversary",
    "ReportSection",
    "generate_report",
    "a0_cost_bound",
    "expected_intersection",
    "expected_prefix_intersection",
    "lemma51_bound",
    "chernoff_at_most",
    "fagin_tail_bound",
    "wimmers_tail_bound",
    "lower_bound_probability",
    "hard_query_lower_bound",
    "WIMMERS_EXAMPLES",
    "CostSummary",
    "run_trials",
    "summarise",
    "measure_costs",
    "PowerLawFit",
    "fit_power_law",
    "format_table",
    "print_table",
]
