"""Growth-exponent estimation for the scaling experiments.

The paper's headline claims are *exponents*: A0 costs
Theta(N^((m-1)/m) k^(1/m)); the naive algorithm and the hard query cost
Theta(N); B0 costs Theta(1) in N. The benchmarks estimate exponents by
least-squares on log-log data and compare against the predicted values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """y ~ coefficient * x^exponent, with goodness of fit."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent

    def __repr__(self) -> str:
        return (
            f"PowerLawFit(y ~ {self.coefficient:.3g} * x^{self.exponent:.3f}, "
            f"R^2={self.r_squared:.4f})"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of log y on log x.

    Requires at least two distinct positive x values and positive ys
    (costs are positive counts, so this always holds in practice).

    >>> fit = fit_power_law([1e2, 1e3, 1e4], [10.0, 31.62, 100.0])
    >>> round(fit.exponent, 2)
    0.5
    """
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} xs but {len(ys)} ys")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit an exponent")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting needs positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    if np.allclose(log_x, log_x[0]):
        raise ValueError("need at least two distinct x values")
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = float(((log_y - predicted) ** 2).sum())
    total = float(((log_y - log_y.mean()) ** 2).sum())
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
    )
