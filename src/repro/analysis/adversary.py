"""The Lemma 6.2 adversary, made executable.

The paper's lower bound works by a fooling argument:

    "We first define a scoring database D … for each list i, the grades
    in list i of members of X^i_T are all 1, and the grades … of the
    remaining members … are all 0. … Since by assumption
    sumcost(A, S) < N, there is some object x0 that is untouched.
    Define scoring database D' to be the same as … D, except that in
    D', the grade of x0 is 1 in every list. Since t is strict, x0 and
    the members of ∩ X^i_T all have grade 1 … [if the algorithm's
    prefix intersection holds fewer than k objects it] gives the wrong
    answer."

This module runs an arbitrary top-k algorithm against exactly that
construction and, when the algorithm under-reads (its prefix
intersection has < k members and it left an object untouched), produces
the concrete fooling database D' on which the algorithm's answer is
wrong — a runnable witness of Theorem 6.4's necessity. Algorithms that
satisfy the lemma's access obligations (like A0) survive: either they
touch everything or their intersection already has k members, so D'
cannot contradict their answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.access.scoring_database import ScoringDatabase, Skeleton
from repro.access.session import MiddlewareSession
from repro.access.source import MaterializedSource, SortedRandomSource
from repro.access.types import GradedItem, ObjectId
from repro.algorithms.base import TopKAlgorithm, TopKResult, is_valid_top_k
from repro.core.aggregation import AggregationFunction

__all__ = ["AdversaryOutcome", "TouchRecorder", "run_lemma62_adversary"]


class TouchRecorder(SortedRandomSource):
    """Source wrapper recording which objects an algorithm touched."""

    def __init__(self, inner: SortedRandomSource, touched: set[ObjectId]) -> None:
        self._inner = inner
        self._touched = touched
        self.name = inner.name

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def position(self) -> int:
        return self._inner.position

    def next_sorted(self) -> GradedItem:
        item = self._inner.next_sorted()
        self._touched.add(item.obj)
        return item

    def random_access(self, obj: ObjectId) -> float:
        grade = self._inner.random_access(obj)
        self._touched.add(obj)
        return grade

    def restart(self) -> None:
        self._inner.restart()


@dataclass(frozen=True)
class AdversaryOutcome:
    """What the adversary established about one algorithm run."""

    #: The Lemma 6.2 database D the algorithm actually ran against.
    database: ScoringDatabase
    #: The algorithm's answer on D.
    answer: TopKResult
    #: An object the algorithm never saw in any list, if one exists.
    untouched: ObjectId | None
    #: The fooling database D' (untouched object promoted to all-1s),
    #: or None when the algorithm touched every object.
    fooling_database: ScoringDatabase | None
    #: Whether the answer (unchanged, since the algorithm cannot
    #: distinguish D from D') is valid on D'. False = caught cheating.
    fooled: bool

    @property
    def survived(self) -> bool:
        """True iff the adversary failed to refute the algorithm."""
        return not self.fooled


def _lemma_database(
    skeleton: Skeleton, prefix_depth: int
) -> ScoringDatabase:
    """D: grade 1 on each list's top ``prefix_depth``, 0 elsewhere."""
    lists = []
    for perm in skeleton.permutations:
        lists.append(
            {
                obj: 1.0 if rank < prefix_depth else 0.0
                for rank, obj in enumerate(perm)
            }
        )
    return ScoringDatabase(lists)


def run_lemma62_adversary(
    algorithm: TopKAlgorithm,
    aggregation: AggregationFunction,
    skeleton: Skeleton,
    k: int,
    prefix_depth: int | None = None,
) -> AdversaryOutcome:
    """Run the Lemma 6.2 construction against ``algorithm``.

    ``prefix_depth`` is the T of the construction (default: the depth
    at which the skeleton's prefix intersection first reaches k — the
    tightest interesting choice). The aggregation must be strict for
    the argument to bite; the function does not check (passing max is
    a good way to *see* why strictness is needed: B0 survives).
    """
    if prefix_depth is None:
        prefix_depth = max(1, skeleton.match_depth(k) - 1)
    database = _lemma_database(skeleton, prefix_depth)

    touched: set[ObjectId] = set()
    sources = [
        TouchRecorder(
            MaterializedSource(
                f"list-{i}",
                # Rank exactly along the skeleton (ties are everywhere).
                [
                    GradedItem(obj, database.grade(i, obj))
                    for obj in skeleton.permutations[i]
                ],
            ),
            touched,
        )
        for i in range(skeleton.num_lists)
    ]
    session = MiddlewareSession.over_sources(
        sources, num_objects=skeleton.num_objects
    )
    answer = algorithm.top_k(session, aggregation, k)

    # The fooling skeleton S' places x0 at position T+1 of every list
    # ("we could let x0 be the (T+1)th member of each list"), so the
    # two runs have identical transcripts only if the algorithm's
    # sorted accesses never went past position T. If it read deeper, it
    # would have *seen* x0 on D' — no fooling conclusion can be drawn
    # (this is exactly how A0 survives: its sorted phase runs to the
    # k-match depth, one past our T).
    if answer.stats.max_sorted_depth() > prefix_depth:
        return AdversaryOutcome(database, answer, None, None, fooled=False)

    untouched = next(
        (obj for obj in skeleton.permutations[0] if obj not in touched),
        None,
    )
    if untouched is None:
        return AdversaryOutcome(database, answer, None, None, fooled=False)

    # D': promote the untouched object to grade 1 in every list. The
    # algorithm saw identical information on D and D', so its answer
    # on D' would be byte-identical — we simply re-validate it there.
    fooling_lists = []
    for i in range(skeleton.num_lists):
        grades = {
            obj: database.grade(i, obj) for obj in skeleton.objects
        }
        grades[untouched] = 1.0
        fooling_lists.append(grades)
    fooling = ScoringDatabase(fooling_lists)
    still_valid = is_valid_top_k(
        answer.items, fooling.overall_grades(aggregation), k
    )
    return AdversaryOutcome(
        database, answer, untouched, fooling, fooled=not still_valid
    )
