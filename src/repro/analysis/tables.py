"""Plain-text table rendering for benchmark output.

The benchmarks print the rows EXPERIMENTS.md records; this keeps the
formatting in one place, aligned and stable enough to diff.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_cell", "format_table", "print_table"]


def format_cell(value: object, precision: int = 4) -> str:
    """Render one cell: floats get ``precision`` significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """An aligned ASCII table with a header rule.

    >>> print(format_table(("N", "cost"), [(100, 45.2), (1000, 141.0)]))
       N  cost
    ----  ----
     100  45.2
    1000   141
    """
    rendered = [[format_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> None:
    """Print :func:`format_table` with a leading blank line."""
    print()
    print(format_table(headers, rows, title=title, precision=precision))
