"""The experiment runner behind the benchmark harness.

Runs a top-k algorithm over freshly generated scoring databases (the
Section 5 probability model is over random skeletons, so every trial
draws a new database), collects per-trial access statistics, and
aggregates them into the rows the benchmarks print and EXPERIMENTS.md
records.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.access.scoring_database import ScoringDatabase
from repro.algorithms.base import TopKAlgorithm, TopKResult
from repro.core.aggregation import AggregationFunction
from repro.engine.engine import Engine

__all__ = ["CostSummary", "run_trials", "summarise", "measure_costs"]


@dataclass(frozen=True)
class CostSummary:
    """Aggregated access costs over repeated trials."""

    trials: int
    mean_sorted: float
    mean_random: float
    mean_sum: float
    max_sum: int
    mean_depth: float
    max_depth: int

    @classmethod
    def from_results(cls, results: Sequence[TopKResult]) -> "CostSummary":
        if not results:
            raise ValueError("no results to summarise")
        sums = [r.stats.sum_cost for r in results]
        depths = [r.stats.max_sorted_depth() for r in results]
        return cls(
            trials=len(results),
            mean_sorted=statistics.fmean(r.stats.sorted_cost for r in results),
            mean_random=statistics.fmean(r.stats.random_cost for r in results),
            mean_sum=statistics.fmean(sums),
            max_sum=max(sums),
            mean_depth=statistics.fmean(depths),
            max_depth=max(depths),
        )

    def __repr__(self) -> str:
        return (
            f"CostSummary(trials={self.trials}, S+R={self.mean_sum:.1f} "
            f"mean / {self.max_sum} max)"
        )


def run_trials(
    make_database: Callable[[int], ScoringDatabase],
    algorithm: TopKAlgorithm,
    aggregation: AggregationFunction,
    k: int,
    trials: int,
    base_seed: int = 0,
) -> list[TopKResult]:
    """Run ``algorithm`` over ``trials`` independently drawn databases.

    ``make_database(seed)`` builds the trial's scoring database; seeds
    are ``base_seed, base_seed + 1, ...`` so runs are reproducible and
    trials independent. Every trial executes through the unified
    :class:`~repro.engine.engine.Engine` with the supplied algorithm
    forced as the strategy — the benchmarks measure the same execution
    path users run.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    results: list[TopKResult] = []
    for trial in range(trials):
        database = make_database(base_seed + trial)
        engine = Engine.over(database)
        results.append(
            engine.query(aggregation).strategy(algorithm).top(k)
        )
    return results


def summarise(results: Sequence[TopKResult]) -> CostSummary:
    """Aggregate trial results into a cost summary row."""
    return CostSummary.from_results(results)


def measure_costs(
    make_database: Callable[[int], ScoringDatabase],
    algorithm: TopKAlgorithm,
    aggregation: AggregationFunction,
    k: int,
    trials: int,
    base_seed: int = 0,
) -> CostSummary:
    """run_trials + summarise in one call (the common benchmark shape)."""
    return summarise(
        run_trials(make_database, algorithm, aggregation, k, trials, base_seed)
    )
