"""One-command experiment report: ``python -m repro.analysis.report``.

Runs compact versions of the headline experiments (a subset of the
E1–E17 suite in ``benchmarks/``) and renders a self-contained markdown
report of paper-claim vs measured behaviour. Useful as a quick health
check of the reproduction without the full pytest-benchmark run.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.analysis.bounds import a0_cost_bound
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.workloads.correlated import correlated_database, hard_query_database
from repro.workloads.skeletons import independent_database

__all__ = ["ReportSection", "generate_report", "SECTIONS"]


@dataclass(frozen=True)
class ReportSection:
    """One experiment's rendered outcome."""

    section_id: str
    title: str
    body: str
    verdict: str

    def to_markdown(self) -> str:
        return (
            f"## {self.section_id} — {self.title}\n\n"
            f"```\n{self.body}\n```\n\n**Verdict:** {self.verdict}\n"
        )


def _scaling_section(trials: int) -> ReportSection:
    ns = (500, 2000, 8000)
    k = 10
    rows, costs = [], []
    for n in ns:
        summary = measure_costs(
            lambda seed, n=n: independent_database(2, n, seed=seed),
            FaginA0(),
            MINIMUM,
            k=k,
            trials=trials,
        )
        costs.append(summary.mean_sum)
        rows.append(
            (n, summary.mean_sum, a0_cost_bound(n, 2, k),
             summary.mean_sum / a0_cost_bound(n, 2, k))
        )
    fit = fit_power_law(ns, costs)
    body = format_table(("N", "mean S+R", "bound", "ratio"), rows)
    verdict = (
        f"fitted exponent {fit.exponent:.3f} vs paper's 0.5 "
        f"(Theorem 5.3); ratio band flat -> Theta."
    )
    return ReportSection("E1", "A0 cost ~ sqrt(N*k)", body, verdict)


def _disjunction_section(trials: int) -> ReportSection:
    rows = []
    for n in (500, 8000):
        summary = measure_costs(
            lambda seed, n=n: independent_database(2, n, seed=seed),
            DisjunctionB0(),
            MAXIMUM,
            k=10,
            trials=trials,
        )
        rows.append((n, summary.mean_sum))
    body = format_table(("N", "B0 S+R"), rows)
    flat = rows[0][1] == rows[1][1] == 20
    verdict = (
        "B0 cost = m*k = 20 at every N (Theorem 4.5, Remark 6.1)."
        if flat
        else "UNEXPECTED: B0 cost varied with N."
    )
    return ReportSection("E5", "disjunction via B0", body, verdict)


def _hard_query_section(trials: int) -> ReportSection:
    rows = []
    for n in (500, 2000):
        costs = [
            FaginA0()
            .top_k(hard_query_database(n, seed=s).session(), MINIMUM, 1)
            .stats.sum_cost
            for s in range(max(2, trials // 3))
        ]
        rows.append((n, statistics.fmean(costs), statistics.fmean(costs) / n))
    body = format_table(("N", "A0 S+R", "cost/N"), rows)
    linear = all(abs(r[2] - 2.0) < 0.1 for r in rows)
    verdict = (
        "Q AND NOT Q costs ~2N for A0 at every N (Theorem 7.1's Theta(N))."
        if linear
        else "UNEXPECTED: hard query not linear."
    )
    return ReportSection("E7", "the hard query", body, verdict)


def _correlation_section(trials: int) -> ReportSection:
    n, k = 1000, 5
    rows = []
    for rho in (-0.9, 0.0, 0.9):
        costs = [
            FaginA0()
            .top_k(
                correlated_database(2, n, rho=rho, seed=s).session(),
                MINIMUM,
                k,
            )
            .stats.sum_cost
            for s in range(trials)
        ]
        rows.append((rho, statistics.fmean(costs)))
    body = format_table(("rho", "mean S+R"), rows)
    monotone = rows[0][1] > rows[1][1] > rows[2][1]
    verdict = (
        "cost decreases monotonically in correlation (Section 7 intro)."
        if monotone
        else "UNEXPECTED: correlation effect not monotone."
    )
    return ReportSection("E10", "correlation sweep", body, verdict)


def _variants_section(trials: int) -> ReportSection:
    n, k = 2000, 10
    rows = []
    for alg in (NaiveAlgorithm(), FaginA0(), FaginA0Min(),
                NoRandomAccessAlgorithm()):
        summary = measure_costs(
            lambda seed: independent_database(2, n, seed=seed),
            alg,
            MINIMUM,
            k=k,
            trials=trials,
        )
        rows.append((alg.name, summary.mean_sorted, summary.mean_random,
                     summary.mean_sum))
    body = format_table(("algorithm", "S", "R", "S+R"), rows)
    ordering = [r[3] for r in rows]
    verdict = (
        "naive >> A0 > A0' and NRA trades depth for zero random access "
        "(Sections 4, E16)."
        if ordering[0] == max(ordering)
        else "UNEXPECTED: naive was not the most expensive."
    )
    return ReportSection("E9/E11/E16", "algorithm family", body, verdict)


#: The report's sections, in order. Each entry maps trials -> section.
SECTIONS: Sequence[Callable[[int], ReportSection]] = (
    _scaling_section,
    _disjunction_section,
    _hard_query_section,
    _correlation_section,
    _variants_section,
)


def generate_report(trials: int = 6) -> str:
    """Build the full markdown report (pure function of the seed model)."""
    if trials < 2:
        raise ValueError(f"need at least 2 trials, got {trials}")
    parts = [
        "# repro experiment report",
        "",
        "Compact reproduction health-check; the full-resolution suite "
        "lives in `benchmarks/` (E1-E18). All workloads seeded.",
        "",
    ]
    for build in SECTIONS:
        parts.append(build(trials).to_markdown())
    return "\n".join(parts)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.report",
        description="Run the compact experiment report.",
    )
    parser.add_argument(
        "--trials", type=int, default=6, help="trials per configuration"
    )
    parser.add_argument(
        "--output", type=str, default="-", help="output file ('-' = stdout)"
    )
    args = parser.parse_args(argv)
    report = generate_report(trials=args.trials)
    if args.output == "-":
        print(report)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
