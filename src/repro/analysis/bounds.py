"""Closed-form bounds from Sections 5-7.

All the quantitative envelopes the benchmarks compare against:

* the A0 cost bound N^((m-1)/m) * k^(1/m) (Theorems 5.3 / 6.5);
* the Lemma 5.1 concentration bound Pr[|B| <= M/2] < e^(-M/10) and the
  [AV79] Chernoff bound behind it;
* the equation-(11) tail bound sum_{i=2}^m e^(-d_i/5) on A0 exceeding
  depth c*N^((m-1)/m)*k^(1/m), with Wimmers' sharper m = 2 dominant
  term e^(-c^2 * k) and the paper's quoted numeric examples;
* the Theorem 6.4 lower-bound probability theta^m;
* the expected prefix-intersection size T*(T/N)^(m-1) used in the
  lower-bound proof.
"""

from __future__ import annotations

import math

__all__ = [
    "a0_cost_bound",
    "expected_intersection",
    "expected_prefix_intersection",
    "lemma51_bound",
    "chernoff_at_most",
    "fagin_tail_bound",
    "wimmers_tail_bound",
    "lower_bound_probability",
    "hard_query_lower_bound",
    "WIMMERS_EXAMPLES",
]


def a0_cost_bound(num_objects: int, num_lists: int, k: int) -> float:
    """N^((m-1)/m) * k^(1/m) — the A0 middleware-cost envelope.

    Theorem 5.3 (upper, with arbitrarily high probability) and Theorem
    6.4 (matching lower) are both multiples of this quantity. For
    m = 2 and constant k it is O(sqrt(N)); at k = N it degenerates to
    N, as Remark 5.2 expects.

    >>> a0_cost_bound(10000, 2, 1)
    100.0
    """
    if num_objects < 1 or num_lists < 1 or k < 1:
        raise ValueError(
            f"need N, m, k >= 1; got N={num_objects}, m={num_lists}, k={k}"
        )
    n, m = float(num_objects), float(num_lists)
    return n ** ((m - 1.0) / m) * float(k) ** (1.0 / m)


def expected_intersection(l1: int, l2: int, num_objects: int) -> float:
    """E|B1 ∩ B2| = l1*l2/N for a random l2-subset (Lemma 5.1)."""
    if num_objects < 1:
        raise ValueError(f"N must be positive, got {num_objects}")
    return l1 * l2 / num_objects


def expected_prefix_intersection(depth: int, num_objects: int, num_lists: int) -> float:
    """E|∩_i X^i_T| = T * (T/N)^(m-1) for independent lists.

    Used in the Theorem 6.4 proof: with T <= theta*N^((m-1)/m)*k^(1/m)
    this is at most theta^m * k, giving the theta^m failure
    probability by Markov.
    """
    return depth * (depth / num_objects) ** (num_lists - 1)


def lemma51_bound(expected_size: float) -> float:
    """Lemma 5.1: Pr[|B| <= M/2] < e^(-M/10)."""
    if expected_size < 0:
        raise ValueError(f"expected size must be non-negative, got {expected_size}")
    return math.exp(-expected_size / 10.0)


def chernoff_at_most(eps: float, expected: float) -> float:
    """[AV79]/[HR90]: Pr[at most (1-eps)*n heads] <= e^(-eps^2 * n / 2)."""
    if not 0.0 <= eps <= 1.0:
        raise ValueError(f"eps must be in [0, 1], got {eps}")
    if expected < 0:
        raise ValueError(f"expected count must be non-negative, got {expected}")
    return math.exp(-eps * eps * expected / 2.0)


def fagin_tail_bound(c: float, num_objects: int, num_lists: int, k: int) -> float:
    """Equation (11): Pr[|∩ X^i_T| < k] <= sum_{i=2}^m e^(-d_i/5).

    d_j = c * N^((m-j)/m) * k^(j/m); T = ceil(c * N^((m-1)/m) * k^(1/m)).
    The dominant term is the last, e^(-c*k/5). Requires c >= 2 (the
    proof's standing assumption).
    """
    if c < 2:
        raise ValueError(f"the equation-(11) bound assumes c >= 2, got {c}")
    n, m = float(num_objects), num_lists
    total = 0.0
    for j in range(2, m + 1):
        d_j = c * n ** ((m - j) / m) * float(k) ** (j / m)
        total += math.exp(-d_j / 5.0)
    return min(1.0, total)


def wimmers_tail_bound(c: float, k: int) -> float:
    """Wimmers' sharper m = 2 dominant term: e^(-c^2 * k).

    Section 5: "His improved upper bound has dominant term e^(-c^2 k)."
    The paper's quoted absolute values for specific c are recorded in
    :data:`WIMMERS_EXAMPLES`; this function returns just the dominant
    exponential, which is what experiment E3's empirical exceedance
    rates are compared against.
    """
    if c <= 0 or k < 1:
        raise ValueError(f"need c > 0 and k >= 1; got c={c}, k={k}")
    return math.exp(-c * c * k)


#: The paper's quoted numeric examples for Wimmers' bound:
#: "less than 2 x 10^-8 if c = 2, and less than 4 x 10^-27 if c = 3" —
#: i.e. Pr[more than c*sqrt(N*k) objects accessed by sorted access in
#: each list] at those c values.
WIMMERS_EXAMPLES: dict[int, float] = {2: 2e-8, 3: 4e-27}


def lower_bound_probability(theta: float, num_lists: int) -> float:
    """Theorem 6.4: Pr[cost <= min(c1,c2) * theta * bound] <= theta^m."""
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    return min(1.0, theta**num_lists)


def hard_query_lower_bound(num_objects: int) -> float:
    """Theorem 7.1's proof: any correct algorithm has sumcost >= N/2."""
    return num_objects / 2.0
