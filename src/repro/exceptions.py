"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the failure mode through the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GradeRangeError(ReproError, ValueError):
    """A grade fell outside the unit interval [0, 1].

    The paper defines a grade as "a real number in the interval [0, 1]"
    (Section 2); every public entry point validates grades eagerly so
    that malformed data fails at the boundary rather than deep inside an
    algorithm.
    """

    def __init__(self, grade: object, context: str = "") -> None:
        where = f" ({context})" if context else ""
        super().__init__(f"grade {grade!r} is not a real number in [0, 1]{where}")
        self.grade = grade
        self.context = context


class UnknownObjectError(ReproError, KeyError):
    """A random access named an object the source does not contain."""

    def __init__(self, obj: object, source: str = "") -> None:
        where = f" in source {source!r}" if source else ""
        super().__init__(f"unknown object {obj!r}{where}")
        self.obj = obj
        self.source = source


class ExhaustedSourceError(ReproError):
    """A sorted access was attempted on a fully-consumed source."""

    def __init__(self, source: str = "") -> None:
        which = source or "<anonymous>"
        super().__init__(f"sorted access past the end of source {which!r}")
        self.source = source


class InsufficientObjectsError(ReproError, ValueError):
    """``k`` exceeded the number of objects in the database.

    Algorithm A0 "assumes that there are at least k objects, so that
    'the top k answers' makes sense" (Section 4).
    """

    def __init__(self, k: int, available: int) -> None:
        super().__init__(
            f"requested top k={k} answers but only {available} objects exist"
        )
        self.k = k
        self.available = available


class AggregationArityError(ReproError, ValueError):
    """An aggregation function was applied to the wrong number of grades."""

    def __init__(self, name: str, expected: object, received: int) -> None:
        super().__init__(
            f"aggregation {name!r} expected {expected} argument(s), got {received}"
        )
        self.name = name
        self.expected = expected
        self.received = received


class InconsistentSkeletonError(ReproError, ValueError):
    """A scoring database was paired with a skeleton it is not consistent with.

    Section 5: "A scoring database D is consistent with skeleton S if for
    each i, the ith permutation in S gives a sorting of the ith graded
    set of D (in descending order of grade)."
    """


class ParseError(ReproError, ValueError):
    """The middleware query language text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class CatalogError(ReproError, LookupError):
    """An attribute referenced by a query is not registered in the catalog."""


class PlanningError(ReproError):
    """The planner could not produce a physical plan for a query."""


class SubsystemCapabilityError(ReproError):
    """A plan required a capability (e.g. random access) a subsystem lacks."""


class EngineConfigurationError(ReproError, TypeError):
    """An :class:`~repro.engine.engine.Engine` was used inconsistently
    with its backing (e.g. a string query on a source-backed engine, or
    a subsystem registration on one built with ``Engine.over``)."""


class ShardingError(ReproError, RuntimeError):
    """A sharded execution failed at the process/shared-memory layer.

    Raised for pool failures (a shard worker died mid-probe), attach
    failures (a shared-memory segment vanished before the worker mapped
    it), and use-after-close of a :class:`~repro.sharding.ShardedEngine`.
    Query-semantics errors (bad ``k``, unknown aggregation) keep their
    usual types; this class marks *infrastructure* failures unique to
    multi-process execution."""
