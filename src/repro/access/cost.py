"""The middleware cost model of Section 5.

    "The sorted access cost is the total number of objects obtained
    from the database under sorted access. … Similarly, the random
    access cost is the total number of objects obtained from the
    database under random access. Let S be the sorted access cost, and
    let R be the random access cost. We take the middleware cost to be
    c1*S + c2*R, for some positive constants c1 and c2. … We may refer
    to [S + R] as the unweighted middleware cost."

Every access an algorithm performs flows through a :class:`CostTracker`
shared by the sources of one run; the tracker produces immutable
:class:`AccessStats` snapshots that benchmarks and tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["CostModel", "UNWEIGHTED", "AccessStats", "CostTracker"]


@dataclass(frozen=True)
class CostModel:
    """The positive constants (c1, c2) weighting sorted vs random access.

    The defaults give the *unweighted* middleware cost S + R. Section 5
    notes the weighted and unweighted costs are within constant factors
    of each other (inequality (1)), so asymptotic statements transfer.
    """

    sorted_weight: float = 1.0
    random_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.sorted_weight <= 0 or self.random_weight <= 0:
            raise ValueError(
                "cost constants c1, c2 must be positive, got "
                f"c1={self.sorted_weight}, c2={self.random_weight}"
            )

    def cost(self, stats: "AccessStats") -> float:
        """The middleware cost c1*S + c2*R of an access-stats snapshot."""
        return (
            self.sorted_weight * stats.sorted_cost
            + self.random_weight * stats.random_cost
        )

    @property
    def random_access_ratio(self) -> float:
        """c2/c1 — how much dearer a random access is than a sorted one.

        The quantity strategy selection compares against
        :data:`~repro.engine.registry.EXPENSIVE_RANDOM_ACCESS_RATIO`.
        """
        return self.random_weight / self.sorted_weight

    @classmethod
    def from_calibration(
        cls, sorted_seconds: float, random_seconds: float
    ) -> "CostModel":
        """A model from measured per-access seconds, normalized to c1=1.

        The paper's constants are abstract weights; a calibrated model
        carries the *measured ratio* while keeping costs comparable to
        the unweighted ledger (one sorted access still costs 1).
        """
        if sorted_seconds <= 0 or random_seconds <= 0:
            raise ValueError(
                "calibrated unit costs must be positive, got "
                f"sorted={sorted_seconds}, random={random_seconds}"
            )
        return cls(
            sorted_weight=1.0, random_weight=random_seconds / sorted_seconds
        )


#: The unweighted model (c1 = c2 = 1) used throughout the benchmarks.
UNWEIGHTED = CostModel()


@dataclass(frozen=True, slots=True)
class AccessStats:
    """An immutable snapshot of access counts, per list and total."""

    sorted_by_list: tuple[int, ...]
    random_by_list: tuple[int, ...]

    @property
    def num_lists(self) -> int:
        return len(self.sorted_by_list)

    @property
    def sorted_cost(self) -> int:
        """S — the total number of objects obtained under sorted access."""
        return sum(self.sorted_by_list)

    @property
    def random_cost(self) -> int:
        """R — the total number of objects obtained under random access."""
        return sum(self.random_by_list)

    @property
    def sum_cost(self) -> int:
        """S + R — the unweighted middleware cost of Section 5."""
        return self.sorted_cost + self.random_cost

    def middleware_cost(self, model: CostModel = UNWEIGHTED) -> float:
        """c1*S + c2*R under the given cost model."""
        return model.cost(self)

    def max_sorted_depth(self) -> int:
        """The deepest sorted prefix read from any single list.

        This is the per-list depth T whose distribution Theorem 5.3 and
        the Wimmers tail bounds are about.
        """
        return max(self.sorted_by_list, default=0)

    def __add__(self, other: "AccessStats") -> "AccessStats":
        if self.num_lists != other.num_lists:
            raise ValueError(
                f"cannot add stats over {self.num_lists} and "
                f"{other.num_lists} lists"
            )
        return AccessStats(
            tuple(a + b for a, b in zip(self.sorted_by_list, other.sorted_by_list)),
            tuple(a + b for a, b in zip(self.random_by_list, other.random_by_list)),
        )

    def __repr__(self) -> str:
        return (
            f"AccessStats(S={self.sorted_cost}, R={self.random_cost}, "
            f"S+R={self.sum_cost})"
        )


class CostTracker:
    """Mutable per-run accumulator of access counts.

    One tracker is shared by all sources of a middleware session; each
    sorted or random access charges the list it touched. Snapshots are
    cheap and immutable, so algorithms can record phase boundaries
    (e.g. "cost of the sorted access phase alone").
    """

    def __init__(self, num_lists: int) -> None:
        if num_lists < 1:
            raise ValueError(f"need at least one list, got {num_lists}")
        self._sorted = [0] * num_lists
        self._random = [0] * num_lists

    @property
    def num_lists(self) -> int:
        return len(self._sorted)

    def charge_sorted(self, list_index: int, amount: int = 1) -> None:
        """Record ``amount`` objects obtained by sorted access to a list.

        ``amount > 1`` is the bulk form used by the batched access
        protocol: a batch of b accesses costs exactly b unit accesses.
        """
        if amount < 0:
            raise ValueError(f"cannot charge negative amount {amount}")
        self._sorted[list_index] += amount

    def charge_random(self, list_index: int, amount: int = 1) -> None:
        """Record ``amount`` objects obtained by random access to a list."""
        if amount < 0:
            raise ValueError(f"cannot charge negative amount {amount}")
        self._random[list_index] += amount

    def snapshot(self) -> AccessStats:
        """An immutable copy of the current counts."""
        return AccessStats(tuple(self._sorted), tuple(self._random))

    def reset(self) -> None:
        """Zero all counters (start of a fresh measured run)."""
        self._sorted = [0] * len(self._sorted)
        self._random = [0] * len(self._random)

    def __repr__(self) -> str:
        return f"CostTracker({self.snapshot()!r})"


def combine_stats(stats: Sequence[AccessStats]) -> AccessStats:
    """Sum a sequence of snapshots (e.g. the three A0 runs of Remark 6.1)."""
    if not stats:
        raise ValueError("combine_stats needs at least one snapshot")
    total = stats[0]
    for s in stats[1:]:
        total = total + s
    return total
