"""Tie handling: the definitional subtleties of Section 5.

    "A scoring database can be consistent with more than one skeleton
    if there are ties, that is, if for some i two distinct objects have
    the same grade in the ith graded set. … Because of ties, the sorted
    access cost might depend on which skeleton was used during the
    course of the algorithm."

This module enumerates the skeletons a (tied) scoring database is
consistent with, so tests can check that A0 returns *a* correct top-k
answer under every skeleton, and that worst-case-over-skeleton cost
definitions (``sortedcost(A, S)`` as a max over consistent databases)
behave as Remark 6.3 describes.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.access.scoring_database import ScoringDatabase, Skeleton
from repro.access.types import ObjectId

__all__ = ["tie_groups", "consistent_skeletons", "count_consistent_skeletons"]


def tie_groups(
    database: ScoringDatabase, list_index: int
) -> list[tuple[float, tuple[ObjectId, ...]]]:
    """Group list ``i``'s objects by grade, in descending grade order.

    Each group of size > 1 is a tie: its members may appear in any
    relative order in a consistent skeleton.
    """
    ranking = database.ranking(list_index)
    groups: list[tuple[float, tuple[ObjectId, ...]]] = []
    for grade, members in itertools.groupby(ranking, key=lambda it: it.grade):
        groups.append((grade, tuple(it.obj for it in members)))
    return groups


def _list_orders(
    groups: Sequence[tuple[float, tuple[ObjectId, ...]]]
) -> Iterator[tuple[ObjectId, ...]]:
    """All descending-grade orders realisable from the tie groups."""
    per_group = [itertools.permutations(members) for _, members in groups]
    for choice in itertools.product(*per_group):
        order: list[ObjectId] = []
        for chunk in choice:
            order.extend(chunk)
        yield tuple(order)


def consistent_skeletons(
    database: ScoringDatabase, limit: int | None = 1000
) -> Iterator[Skeleton]:
    """Yield every skeleton ``database`` is consistent with.

    The count is the product over lists of the factorials of tie-group
    sizes, which explodes quickly — ``limit`` guards against runaway
    enumeration (raise it explicitly for exhaustive small cases, or
    pass ``None`` for no cap).
    """
    all_groups = [
        tie_groups(database, i) for i in range(database.num_lists)
    ]
    produced = 0
    for perms in itertools.product(*(_list_orders(g) for g in all_groups)):
        if limit is not None and produced >= limit:
            raise ValueError(
                f"more than {limit} consistent skeletons; raise the limit "
                "or use count_consistent_skeletons first"
            )
        produced += 1
        yield Skeleton(tuple(perms))


def count_consistent_skeletons(database: ScoringDatabase) -> int:
    """How many skeletons the database is consistent with (exact count)."""
    import math

    total = 1
    for i in range(database.num_lists):
        for _, members in tie_groups(database, i):
            total *= math.factorial(len(members))
    return total
