"""The subsystem access interface of Section 4.

    "In response to a subquery … the subsystem will output the graded
    set consisting of all objects, one by one, along with their grades
    under the subquery, in sorted order based on grade, until Garlic
    tells the subsystem to stop. Then Garlic could later tell the
    subsystem to resume outputting the graded set where it left off.
    … We refer to such types of access as 'sorted access.'

    There is another way that we could expect Garlic to interact with
    the subsystem. Garlic could ask the subsystem the grade (with
    respect to a query) of any given object. We refer to this as
    'random access.'"

:class:`SortedRandomSource` is that interface; algorithms can reach
grades *only* through it, so the access accounting is airtight by
construction. :class:`MaterializedSource` backs it with an in-memory
ranking (scoring databases, test fixtures); subsystem adapters in
:mod:`repro.subsystems` provide lazily-evaluated implementations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping, Sequence

from repro.access.cost import CostTracker
from repro.access.types import GradedItem, ObjectId
from repro.core.grades import validate_grade
from repro.exceptions import ExhaustedSourceError, UnknownObjectError

__all__ = [
    "SortedRandomSource",
    "MaterializedSource",
    "InstrumentedSource",
    "StreamOnlySource",
    "UnbatchedSource",
    "PagedBatchSource",
    "rank_items",
    "tie_break_key",
]


def tie_break_key(obj: ObjectId) -> tuple:
    """The deterministic tie-break key used wherever equal grades meet.

    Section 5 allows *any* skeleton consistent with a tied graded set;
    this is the library's one concrete choice: integer object ids sort
    numerically (object 2 before object 10 — not the lexicographic
    ``repr`` order that put 10 first), and everything else sorts by its
    ``repr``. The key is a plain tuple, computed once per item by every
    caller (decorate-sort-undecorate), so sorting never re-derives it
    inside a comparison.
    """
    if type(obj) is int:
        return (0, obj, "")
    return (1, 0, repr(obj))


def rank_items(
    grades: Mapping[ObjectId, float] | Iterable[tuple[ObjectId, float]],
) -> tuple[GradedItem, ...]:
    """Sort (object, grade) pairs into a sorted-access ranking.

    Descending by grade; ties broken deterministically by
    :func:`tie_break_key` — one concrete choice of the "skeleton" a
    tied graded set is consistent with (Section 5 allows any).
    """
    pairs = grades.items() if isinstance(grades, Mapping) else grades
    items = [GradedItem(obj, validate_grade(g, context=f"object {obj!r}")) for obj, g in pairs]
    items.sort(key=lambda it: (-it.grade, tie_break_key(it.obj)))
    return tuple(items)


class SortedRandomSource(ABC):
    """One ranked list, reachable by sorted and random access only."""

    name: str = "source"

    @abstractmethod
    def __len__(self) -> int:
        """Total number of objects in the list."""

    @property
    @abstractmethod
    def position(self) -> int:
        """How many objects sorted access has delivered so far."""

    @abstractmethod
    def next_sorted(self) -> GradedItem:
        """Deliver the next object in descending grade order.

        Raises :class:`ExhaustedSourceError` past the end.
        """

    @abstractmethod
    def random_access(self, obj: ObjectId) -> float:
        """The grade of ``obj`` under this source's subquery.

        Raises :class:`UnknownObjectError` for foreign objects.
        """

    @abstractmethod
    def restart(self) -> None:
        """Reset the sorted-access cursor to the top of the list.

        Models re-issuing the subquery to the subsystem; any accesses
        after a restart are charged again (they are real accesses).
        """

    def fork(self) -> "SortedRandomSource":
        """An independent cursor over the same graded set, at the top.

        Like :meth:`restart`, a fork models re-issuing the subquery —
        its accesses are fresh and charged to whichever session
        instruments it — but it leaves *this* source's cursor
        untouched, so several plans (or threads) can each consume
        their own fork of one cached evaluation without corrupting
        each other's progress. Sources whose state cannot be shared
        read-only keep the default, which declines loudly; callers
        then fall back to a fresh evaluation.
        """
        from repro.exceptions import SubsystemCapabilityError

        raise SubsystemCapabilityError(
            f"source {self.name!r} ({type(self).__name__}) cannot fork; "
            "re-evaluate the subquery instead"
        )

    # ------------------------------------------------------------------
    # Batched access protocol
    #
    # Batches are an *implementation detail*, not a new kind of access:
    # a batch of b sorted (random) accesses has exactly the cost of b
    # unit accesses under the Section 5 model, and the instrumented
    # wrapper decomposes every batch into unit charges. The default
    # implementations below loop over the unit methods, so subsystem
    # adapters that only implement ``next_sorted``/``random_access``
    # keep working unchanged; in-memory backends override them with
    # slice/lookup fast paths.
    # ------------------------------------------------------------------

    def sorted_access_batch(self, count: int) -> Sequence[GradedItem]:
        """Deliver up to ``count`` further objects under sorted access.

        Returns fewer than ``count`` items (possibly none) when the
        list runs out — exhaustion is signalled by a short or empty
        batch, never by :class:`ExhaustedSourceError`.
        """
        if count < 0:
            raise ValueError(f"batch size must be non-negative, got {count}")
        out: list[GradedItem] = []
        for _ in range(count):
            if self.exhausted:
                break
            try:
                out.append(self.next_sorted())
            except ExhaustedSourceError:  # pragma: no cover - guarded above
                break
        return out

    def random_access_many(self, objs: Sequence[ObjectId]) -> list[float]:
        """The grades of ``objs``, in order, under this source's subquery.

        Raises :class:`UnknownObjectError` for foreign objects; callers
        should treat a failed batch as all-or-nothing.
        """
        return [self.random_access(obj) for obj in objs]

    @property
    def exhausted(self) -> bool:
        """True iff sorted access has delivered every object."""
        return self.position >= len(self)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"{self.position}/{len(self)}>"
        )


class MaterializedSource(SortedRandomSource):
    """A source backed by a fully materialised ranking.

    Parameters
    ----------
    name:
        Label used in errors and reprs.
    ranking:
        The graded set in sorted order — either pre-ranked
        :class:`GradedItem` objects (must be non-increasing in grade)
        or any mapping/pairs, which are ranked with :func:`rank_items`.
    """

    def __init__(
        self,
        name: str,
        ranking: Sequence[GradedItem] | Mapping[ObjectId, float] | Iterable[tuple],
    ) -> None:
        self.name = name
        if isinstance(ranking, Sequence) and all(
            isinstance(it, GradedItem) for it in ranking
        ):
            items = tuple(ranking)
            for earlier, later in zip(items, items[1:]):
                if later.grade > earlier.grade:
                    raise ValueError(
                        f"ranking for {name!r} is not sorted: "
                        f"{earlier!r} precedes {later!r}"
                    )
        else:
            items = rank_items(ranking)  # type: ignore[arg-type]
        self._items = items
        self._grades = {it.obj: it.grade for it in items}
        if len(self._grades) != len(items):
            raise ValueError(f"ranking for {name!r} contains duplicate objects")
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def position(self) -> int:
        return self._cursor

    def next_sorted(self) -> GradedItem:
        if self._cursor >= len(self._items):
            raise ExhaustedSourceError(self.name)
        item = self._items[self._cursor]
        self._cursor += 1
        return item

    def random_access(self, obj: ObjectId) -> float:
        try:
            return self._grades[obj]
        except KeyError:
            raise UnknownObjectError(obj, self.name) from None

    def sorted_access_batch(self, count: int) -> Sequence[GradedItem]:
        if count < 0:
            raise ValueError(f"batch size must be non-negative, got {count}")
        start = self._cursor
        batch = self._items[start : start + count]
        self._cursor = start + len(batch)
        return batch

    def random_access_many(self, objs: Sequence[ObjectId]) -> list[float]:
        grades = self._grades
        try:
            return [grades[obj] for obj in objs]
        except KeyError:
            for obj in objs:
                if obj not in grades:
                    raise UnknownObjectError(obj, self.name) from None
            raise  # pragma: no cover - unreachable

    def restart(self) -> None:
        self._cursor = 0

    def fork(self) -> "MaterializedSource":
        """A fresh cursor sharing this source's (immutable) ranking."""
        return MaterializedSource.trusted(self.name, self._items, self._grades)

    @classmethod
    def trusted(
        cls,
        name: str,
        items: tuple[GradedItem, ...],
        grades: Mapping[ObjectId, float],
    ) -> "MaterializedSource":
        """A source over pre-validated shared state, minted in O(1).

        The columnar backend calls this with a ranking tuple and grade
        map it built (and validated) once per database, so minting a
        fresh session does not re-sort, re-validate, or rebuild the
        grade dictionary. Callers guarantee ``items`` is sorted
        non-increasing and ``grades`` matches it.
        """
        source = cls.__new__(cls)
        source.name = name
        source._items = items
        source._grades = grades
        source._cursor = 0
        return source

    def ranking(self) -> tuple[GradedItem, ...]:
        """The full ranking (for tests and ground-truth computation).

        Not part of the access interface — algorithms must not use it.
        """
        return self._items


class StreamOnlySource(SortedRandomSource):
    """A source whose random access capability is disabled.

    Models subsystems that can only stream ranked results (Section 4's
    footnote 5 assumes QBIC *can* do random accesses — this wrapper is
    the subsystem that cannot). Algorithms restricted to sorted access
    (B0, NRA, naive) run unchanged; anything attempting random access
    fails loudly instead of silently miscounting.
    """

    def __init__(self, inner: SortedRandomSource) -> None:
        self._inner = inner
        self.name = f"{inner.name} (stream-only)"

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def position(self) -> int:
        return self._inner.position

    def next_sorted(self) -> GradedItem:
        return self._inner.next_sorted()

    def sorted_access_batch(self, count: int) -> Sequence[GradedItem]:
        return self._inner.sorted_access_batch(count)

    def random_access(self, obj: ObjectId) -> float:
        from repro.exceptions import SubsystemCapabilityError

        raise SubsystemCapabilityError(
            f"source {self.name!r} does not support random access"
        )

    def restart(self) -> None:
        self._inner.restart()

    def fork(self) -> "StreamOnlySource":
        return StreamOnlySource(self._inner.fork())


class InstrumentedSource(SortedRandomSource):
    """Wraps any source, charging every access to a shared tracker.

    ``list_index`` identifies which list this source is in the
    tracker's per-list accounting (Section 5 counts costs per list,
    e.g. "the top 100 objects from the first list and the top 20
    objects from the second list … sorted access cost 120").
    """

    def __init__(
        self, inner: SortedRandomSource, tracker: CostTracker, list_index: int
    ) -> None:
        if not 0 <= list_index < tracker.num_lists:
            raise ValueError(
                f"list index {list_index} out of range for tracker with "
                f"{tracker.num_lists} lists"
            )
        self._inner = inner
        self._tracker = tracker
        self._list_index = list_index
        self.name = inner.name

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def position(self) -> int:
        return self._inner.position

    def next_sorted(self) -> GradedItem:
        item = self._inner.next_sorted()
        # Charge only on success: an ExhaustedSourceError delivers no object.
        self._tracker.charge_sorted(self._list_index)
        return item

    def random_access(self, obj: ObjectId) -> float:
        grade = self._inner.random_access(obj)
        self._tracker.charge_random(self._list_index)
        return grade

    def sorted_access_batch(self, count: int) -> Sequence[GradedItem]:
        batch = self._inner.sorted_access_batch(count)
        if batch:
            # One bulk charge — the tracker decomposes a batch of b
            # sorted accesses into b unit accesses (same cost model).
            self._tracker.charge_sorted(self._list_index, len(batch))
        return batch

    def random_access_many(self, objs: Sequence[ObjectId]) -> list[float]:
        grades = self._inner.random_access_many(objs)
        if grades:
            self._tracker.charge_random(self._list_index, len(grades))
        return grades

    def restart(self) -> None:
        self._inner.restart()


class PagedBatchSource(SortedRandomSource):
    """Caps every batch exchange at a subsystem's negotiated page size.

    Models the wire protocol of a federated data server that streams
    ranked results in pages of at most ``page_size`` objects per round
    trip (:meth:`~repro.subsystems.base.Subsystem.evaluate_batched`).
    A sorted batch request larger than the page returns one page —
    legal under the batch protocol, which lets any call return fewer
    items than asked — and a bulk random lookup is served page by page
    and re-assembled. Per-item access counts are untouched: batches
    decompose into unit accesses whatever the page size.
    """

    def __init__(self, inner: SortedRandomSource, page_size: int) -> None:
        if page_size < 1:
            raise ValueError(f"page size must be positive, got {page_size}")
        self._inner = inner
        self.page_size = page_size
        self.name = inner.name

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def position(self) -> int:
        return self._inner.position

    def next_sorted(self) -> GradedItem:
        return self._inner.next_sorted()

    def random_access(self, obj: ObjectId) -> float:
        return self._inner.random_access(obj)

    def sorted_access_batch(self, count: int) -> Sequence[GradedItem]:
        if count < 0:
            raise ValueError(f"batch size must be non-negative, got {count}")
        return self._inner.sorted_access_batch(min(count, self.page_size))

    def random_access_many(self, objs: Sequence[ObjectId]) -> list[float]:
        if len(objs) <= self.page_size:
            return self._inner.random_access_many(objs)
        grades: list[float] = []
        for start in range(0, len(objs), self.page_size):
            grades.extend(
                self._inner.random_access_many(
                    objs[start : start + self.page_size]
                )
            )
        return grades

    def restart(self) -> None:
        self._inner.restart()

    def fork(self) -> "PagedBatchSource":
        return PagedBatchSource(self._inner.fork(), self.page_size)


class UnbatchedSource(SortedRandomSource):
    """Hides a source's batch overrides, forcing the unit fallbacks.

    Every ``sorted_access_batch``/``random_access_many`` call on this
    wrapper decomposes into the same sequence of unit accesses the
    pre-batching implementations performed, because only the unit
    methods are delegated and the ABC defaults loop over them. Used by
    the parity tests and by the perf harness's reference ("legacy")
    path.
    """

    def __init__(self, inner: SortedRandomSource) -> None:
        self._inner = inner
        self.name = inner.name

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def position(self) -> int:
        return self._inner.position

    def next_sorted(self) -> GradedItem:
        return self._inner.next_sorted()

    def random_access(self, obj: ObjectId) -> float:
        return self._inner.random_access(obj)

    def restart(self) -> None:
        self._inner.restart()

    def fork(self) -> "UnbatchedSource":
        return UnbatchedSource(self._inner.fork())
