"""Access model: sorted/random access, cost accounting, scoring databases.

Implements the middleware-facing machinery of Sections 4-5: the
subsystem access interface (sorted access streams and random access
lookups), the middleware cost model c1*S + c2*R, and the formal
scoring-database / skeleton framework the paper's probabilistic
analysis is stated in.
"""

from repro.access.columnar import ColumnarScoringDatabase
from repro.access.cost import AccessStats, CostModel, CostTracker, combine_stats
from repro.access.scoring_database import (
    ScoringDatabase,
    Skeleton,
    prefix_intersection_size,
)
from repro.access.session import MiddlewareSession
from repro.access.source import (
    InstrumentedSource,
    MaterializedSource,
    PagedBatchSource,
    SortedRandomSource,
    UnbatchedSource,
    rank_items,
    tie_break_key,
)
from repro.access.ties import (
    consistent_skeletons,
    count_consistent_skeletons,
    tie_groups,
)
from repro.access.types import GradedItem, ObjectId

__all__ = [
    "AccessStats",
    "CostModel",
    "CostTracker",
    "combine_stats",
    "ColumnarScoringDatabase",
    "ScoringDatabase",
    "Skeleton",
    "prefix_intersection_size",
    "MiddlewareSession",
    "SortedRandomSource",
    "MaterializedSource",
    "InstrumentedSource",
    "UnbatchedSource",
    "PagedBatchSource",
    "rank_items",
    "tie_break_key",
    "GradedItem",
    "ObjectId",
    "tie_groups",
    "consistent_skeletons",
    "count_consistent_skeletons",
]
