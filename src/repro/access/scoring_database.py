"""Scoring databases and skeletons: the formal model of Section 5.

    "We define a scoring database to be a function associating with
    each i (for i = 1, ..., m) a graded set, where the objects being
    graded are 1, ..., N. … We define a skeleton (on N objects) to be a
    function associating with each i … a permutation of 1, ..., N. A
    scoring database D is consistent with skeleton S if for each i, the
    ith permutation in S gives a sorting of the ith graded set of D (in
    descending order of grade)."

A :class:`ScoringDatabase` materialises the m graded sets; it can mint
fresh :class:`~repro.access.session.MiddlewareSession` objects for
algorithm runs, compute ground-truth answers for tests, and derive or
verify :class:`Skeleton` objects. Random generation under the paper's
independence model lives in :mod:`repro.workloads.skeletons`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.access.session import MiddlewareSession
from repro.access.source import MaterializedSource, rank_items
from repro.access.types import GradedItem, ObjectId
from repro.core.aggregation import AggregationFunction
from repro.core.graded_set import GradedSet
from repro.core.grades import validate_grade
from repro.exceptions import InconsistentSkeletonError

__all__ = ["Skeleton", "ScoringDatabase"]


@dataclass(frozen=True)
class Skeleton:
    """m permutations of the same object set (Section 5)."""

    permutations: tuple[tuple[ObjectId, ...], ...]

    def __post_init__(self) -> None:
        if not self.permutations:
            raise ValueError("a skeleton needs at least one permutation")
        base = frozenset(self.permutations[0])
        for i, perm in enumerate(self.permutations):
            if len(perm) != len(self.permutations[0]) or frozenset(perm) != base:
                raise ValueError(
                    f"permutation {i} is not a permutation of the same "
                    f"object set as permutation 0"
                )
            if len(set(perm)) != len(perm):
                raise ValueError(f"permutation {i} contains duplicates")

    @property
    def num_lists(self) -> int:
        return len(self.permutations)

    @property
    def num_objects(self) -> int:
        return len(self.permutations[0])

    @property
    def objects(self) -> frozenset[ObjectId]:
        return frozenset(self.permutations[0])

    @classmethod
    def random(
        cls,
        num_lists: int,
        objects: Sequence[ObjectId] | int,
        rng: random.Random,
    ) -> "Skeleton":
        """A uniformly random skeleton — the independence model.

        Section 5: independence of the atomic queries is formalised as
        "each of the m sorted lists contains the objects in random
        order (in other words, each permutation of 1, ..., N has equal
        probability), independent of the other lists."
        """
        if isinstance(objects, int):
            objects = list(range(1, objects + 1))
        perms = []
        for _ in range(num_lists):
            perm = list(objects)
            rng.shuffle(perm)
            perms.append(tuple(perm))
        return cls(tuple(perms))

    def prefix(self, list_index: int, depth: int) -> tuple[ObjectId, ...]:
        """X^i_tau: the first ``depth`` objects of list ``list_index``."""
        return self.permutations[list_index][:depth]

    def match_depth(self, k: int) -> int:
        """The least T such that the prefix intersection has >= k members.

        This is the quantity T of A0's sorted-access phase; both the
        upper bound (Theorem 5.3) and the lower bound (Lemma 6.2) are
        statements about its distribution.
        """
        n = self.num_objects
        if k > n:
            raise ValueError(f"k={k} exceeds N={n}")
        counts: dict[ObjectId, int] = {}
        matched = 0
        for depth in range(1, n + 1):
            for perm in self.permutations:
                obj = perm[depth - 1]
                counts[obj] = counts.get(obj, 0) + 1
                if counts[obj] == self.num_lists:
                    matched += 1
            if matched >= k:
                return depth
        return n

    def reversed_pair(self) -> "Skeleton":
        """For a single-list skeleton, the (pi, reverse(pi)) pair of §7.

        "the top object pi_Q(1) according to the permutation pi_Q is
        the bottom object pi_notQ(N) according to the permutation
        pi_notQ" — the extreme negative correlation of the hard query.
        """
        if self.num_lists != 1:
            raise ValueError("reversed_pair is defined on a 1-list skeleton")
        forward = self.permutations[0]
        return Skeleton((forward, tuple(reversed(forward))))


class ScoringDatabase:
    """m graded sets over a common population of N objects.

    Parameters
    ----------
    lists:
        One grade assignment per atomic query — mappings (or
        :class:`GradedSet` objects) from object to grade. All lists
        must grade exactly the same objects, per the formal model.
    """

    def __init__(
        self, lists: Sequence[Mapping[ObjectId, float] | GradedSet]
    ) -> None:
        if not lists:
            raise ValueError("a scoring database needs at least one list")
        normalised: list[dict[ObjectId, float]] = []
        for i, entry in enumerate(lists):
            mapping = entry.as_dict() if isinstance(entry, GradedSet) else dict(entry)
            for obj, g in mapping.items():
                mapping[obj] = validate_grade(g, context=f"list {i}, object {obj!r}")
            normalised.append(mapping)
        domain = frozenset(normalised[0])
        for i, mapping in enumerate(normalised):
            if frozenset(mapping) != domain:
                raise ValueError(
                    f"list {i} grades a different object set than list 0; "
                    "every list must grade all N objects (Section 5 model)"
                )
        if not domain:
            raise ValueError("a scoring database needs at least one object")
        self._lists = normalised
        self._objects = domain
        self._rankings: list[tuple[GradedItem, ...] | None] = [None] * len(lists)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_skeleton(
        cls, skeleton: Skeleton, grade_rows: Sequence[Sequence[float]]
    ) -> "ScoringDatabase":
        """Assign grades along a skeleton's permutations.

        ``grade_rows[i]`` is a non-increasing grade sequence for list i
        (grade of the rank-1 object first). The result is consistent
        with ``skeleton`` by construction.
        """
        if len(grade_rows) != skeleton.num_lists:
            raise ValueError(
                f"{skeleton.num_lists} permutations but {len(grade_rows)} grade rows"
            )
        lists = []
        for perm, row in zip(skeleton.permutations, grade_rows):
            if len(row) != len(perm):
                raise ValueError("grade row length must equal N")
            for earlier, later in zip(row, row[1:]):
                if later > earlier:
                    raise InconsistentSkeletonError(
                        "grade rows must be non-increasing to be consistent "
                        "with the skeleton"
                    )
            lists.append(dict(zip(perm, row)))
        return cls(lists)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_lists(self) -> int:
        return len(self._lists)

    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> frozenset[ObjectId]:
        return self._objects

    def grade(self, list_index: int, obj: ObjectId) -> float:
        """mu_Ai(obj) — direct lookup (ground truth, not an access)."""
        return self._lists[list_index][obj]

    def graded_set(self, list_index: int) -> GradedSet:
        """List ``i`` as a :class:`GradedSet`."""
        return GradedSet(self._lists[list_index])

    def ranking(self, list_index: int) -> tuple[GradedItem, ...]:
        """List ``i`` sorted for sorted access (deterministic tie-break)."""
        cached = self._rankings[list_index]
        if cached is None:
            cached = rank_items(self._lists[list_index])
            self._rankings[list_index] = cached
        return cached

    # ------------------------------------------------------------------
    # Skeletons
    # ------------------------------------------------------------------

    def skeleton(self) -> Skeleton:
        """The skeleton this database's rankings realise."""
        return Skeleton(
            tuple(
                tuple(item.obj for item in self.ranking(i))
                for i in range(self.num_lists)
            )
        )

    def consistent_with(self, skeleton: Skeleton) -> bool:
        """Section 5 consistency: each permutation sorts the graded set."""
        if skeleton.num_lists != self.num_lists:
            return False
        if skeleton.objects != self._objects:
            return False
        for i, perm in enumerate(skeleton.permutations):
            grades = [self._lists[i][obj] for obj in perm]
            if any(later > earlier for earlier, later in zip(grades, grades[1:])):
                return False
        return True

    def has_ties(self) -> bool:
        """True iff some list gives two objects the same grade."""
        return any(
            len(set(mapping.values())) != len(mapping) for mapping in self._lists
        )

    # ------------------------------------------------------------------
    # Sessions and ground truth
    # ------------------------------------------------------------------

    def session(self) -> MiddlewareSession:
        """A fresh instrumented session over this database's lists."""
        raw = [
            MaterializedSource(f"list-{i}", self.ranking(i))
            for i in range(self.num_lists)
        ]
        return MiddlewareSession.over_sources(raw, num_objects=self.num_objects)

    def overall_grades(self, aggregation: AggregationFunction) -> GradedSet:
        """Ground-truth mu_Q for every object (bypasses access accounting).

        For tests and oracle comparisons only — algorithms must go
        through a session.
        """
        return GradedSet(
            {
                obj: aggregation(*(lst[obj] for lst in self._lists))
                for obj in self._objects
            }
        )

    def true_top_k(
        self, aggregation: AggregationFunction, k: int
    ) -> tuple[GradedItem, ...]:
        """Ground-truth top-k answers (deterministic tie-break)."""
        ranked = rank_items(self.overall_grades(aggregation).as_dict())
        return ranked[:k]

    def __repr__(self) -> str:
        return (
            f"ScoringDatabase(m={self.num_lists}, N={self.num_objects}, "
            f"ties={self.has_ties()})"
        )


def prefix_intersection_size(
    skeleton: Skeleton, depth: int
) -> int:
    """|intersection over i of X^i_depth| — the quantity Lemma 5.1 bounds."""
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    sets: Iterable[frozenset] = (
        frozenset(perm[:depth]) for perm in skeleton.permutations
    )
    result: frozenset | None = None
    for s in sets:
        result = s if result is None else (result & s)
    assert result is not None
    return len(result)
