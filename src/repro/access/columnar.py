"""Columnar scoring databases: the in-memory fast path.

:class:`~repro.access.scoring_database.ScoringDatabase` stores each of
the m graded sets as a ``dict[ObjectId, float]`` and mints every
session by handing a full ranking to ``MaterializedSource``, whose
constructor re-validates all N items and rebuilds an N-entry grade
dictionary — O(N * m) of pure Python overhead *per session*, before a
single access is charged.

:class:`ColumnarScoringDatabase` stores the same formal object
(Section 5's function from list index to graded set) in columnar form:

* object ids are **interned** once into a dense ``0..N-1`` index;
* each list's grades live in one contiguous float64 column — a numpy
  array when numpy is importable, an ``array('d')`` otherwise (numpy
  is an accelerator, never a requirement) — indexed by interned id;
* each list's descending rank order (the skeleton permutation realised
  by the grades, ties broken by
  :func:`~repro.access.source.tie_break_key` exactly as
  :func:`~repro.access.source.rank_items` breaks them) is computed
  **once** and shared. All-integer populations sort through
  ``np.lexsort`` (the tie key for ints is numeric order, which lexsort
  reproduces directly); anything else falls back to the Python sort.

Sessions are minted in O(m): each source is a cursor over the shared,
pre-built ranking tuple and grade map (``MaterializedSource.trusted``),
so repeated runs — the benchmark regime — pay for accesses, not for
re-sorting. Access-count semantics are untouched: the sources speak
the same sorted/random (and batched) protocol through the same
instrumented wrappers.

The numpy columns additionally feed the *computation* phase:
:meth:`ColumnarScoringDatabase.grades_matrix` gathers any subset of
objects into an (m, n) matrix in one shot, and
:meth:`overall_grades` / :meth:`true_top_k` score it through the
vectorized kernels of :mod:`repro.core.kernels` — ground truth at C
speed, still outside the access accounting.

**Concurrency contract.** A columnar database is a *shared read-only
store*: after ``__init__`` returns, its columns, interned index and
rank orders never change (the numpy arrays are marked non-writeable to
enforce it), so any number of threads may mint sessions and read
ground truth concurrently. All mutable state — sorted cursors, cost
trackers — lives in the per-query :class:`MiddlewareSession` objects
:meth:`session` mints, which are single-consumer and must not be
shared between threads. The only writes after construction are the
lazy, idempotent memoisations of :meth:`ranking` / :meth:`_grade_map`,
which are double-checked under an internal lock; once warm, minting a
session is lock-free O(m).
"""

from __future__ import annotations

import threading
from array import array
from typing import Mapping, Sequence

from repro.access.session import MiddlewareSession
from repro.access.source import MaterializedSource, tie_break_key
from repro.access.types import GradedItem, ObjectId
from repro.core.aggregation import AggregationFunction
from repro.core.graded_set import GradedSet
from repro.core.grades import validate_grade
from repro.core.kernels import HAVE_NUMPY, evaluate_columns

if HAVE_NUMPY:
    import numpy as _np

__all__ = ["ColumnarScoringDatabase", "rank_orders"]


def rank_orders(objects: tuple[ObjectId, ...], columns):
    """Descending rank order per column, as interned-id permutations.

    The one tie-break (:func:`~repro.access.source.tie_break_key`)
    realised as index permutations: when every object id is a plain
    int, ``tie_break_key`` reduces to numeric order and one
    ``np.lexsort`` per column replaces the O(N log N) Python sort —
    identical permutation, C speed. Mixed or non-integer populations
    keep the key-based sort. Shared by the full-store constructor and
    the shard partitioner (a shard's order is exactly the restriction
    of the global order to the shard's objects, because the sort key
    is a total order).
    """
    if HAVE_NUMPY and all(type(obj) is int for obj in objects):
        try:
            ids = _np.asarray(objects, dtype=_np.int64)
        except OverflowError:
            # Arbitrary-precision ids (beyond int64) keep the
            # key-based sort below — same ordering, Python speed.
            ids = None
        if ids is not None:
            return [
                _np.lexsort((ids, -_np.asarray(column)))
                for column in columns
            ]
    tie_keys = [tie_break_key(obj) for obj in objects]
    orders = [
        array(
            "l",
            sorted(
                range(len(objects)),
                key=lambda j: (-column[j], tie_keys[j]),
            ),
        )
        for column in columns
    ]
    return orders


def _validated_column(
    mapping: Mapping[ObjectId, float],
    objects: tuple[ObjectId, ...],
    list_index: int,
):
    """One list's grades as a float64 column in interned-id order.

    The bulk path converts and range-checks the whole column with numpy
    (same predicate as :func:`validate_grade`: a real in [0, 1], NaN
    excluded); on any failure — or without numpy — it falls back to the
    scalar validator, which produces the precise per-object error.
    """
    if HAVE_NUMPY:
        try:
            column = _np.asarray(
                [mapping[obj] for obj in objects], dtype=_np.float64
            )
        except (TypeError, ValueError):
            column = None
        if column is not None and not (
            _np.isnan(column).any()
            or (column < 0.0).any()
            or (column > 1.0).any()
        ):
            return column
    scalar = array(
        "d",
        (
            validate_grade(
                mapping[obj], context=f"list {list_index}, object {obj!r}"
            )
            for obj in objects
        ),
    )
    return _np.asarray(scalar) if HAVE_NUMPY else scalar


class ColumnarScoringDatabase:
    """m graded sets over N objects, stored as float columns.

    Duck-type compatible with the subset of
    :class:`~repro.access.scoring_database.ScoringDatabase` the engine
    and benchmarks rely on (``session()``, ``overall_grades``,
    ``true_top_k``, ``ranking``, dimensions), and produces rankings
    identical to it item for item — the columnar layout is purely a
    representation change.

    Parameters
    ----------
    lists:
        One grade assignment per atomic query — mappings (or
        :class:`~repro.core.graded_set.GradedSet` objects) from object
        to grade. All lists must grade exactly the same objects.
    """

    def __init__(
        self, lists: Sequence[Mapping[ObjectId, float] | GradedSet]
    ) -> None:
        if not lists:
            raise ValueError("a scoring database needs at least one list")
        first = lists[0]
        first_map = first.as_dict() if isinstance(first, GradedSet) else first
        # Intern: index position is the object's dense integer id.
        objects = tuple(first_map)
        if not objects:
            raise ValueError("a scoring database needs at least one object")
        index = {obj: idx for idx, obj in enumerate(objects)}

        columns = []
        for i, entry in enumerate(lists):
            mapping = entry.as_dict() if isinstance(entry, GradedSet) else entry
            if len(mapping) != len(objects) or any(
                obj not in index for obj in mapping
            ):
                raise ValueError(
                    f"list {i} grades a different object set than list 0; "
                    "every list must grade all N objects (Section 5 model)"
                )
            columns.append(_validated_column(mapping, objects, i))

        self._objects = objects
        self._index = index
        self._columns = columns
        self._orders = self._rank_orders()
        if HAVE_NUMPY:
            # Enforce the shared-read-only contract: sessions and
            # ground-truth readers in any thread see frozen columns.
            for column in self._columns:
                if isinstance(column, _np.ndarray):
                    column.flags.writeable = False
            for order in self._orders:
                if isinstance(order, _np.ndarray):
                    order.flags.writeable = False
        # Lazy shared per-list state minted sessions slice into. The
        # builds are idempotent (pure functions of the frozen columns)
        # and double-checked under the lock, so concurrent first mints
        # neither duplicate work nor observe partial state.
        self._mint_lock = threading.Lock()
        self._rankings: list[tuple[GradedItem, ...] | None] = [None] * len(columns)
        self._grade_maps: list[dict[ObjectId, float] | None] = [None] * len(columns)

    def _rank_orders(self):
        return rank_orders(self._objects, self._columns)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_frozen_arrays(
        cls, objects: tuple[ObjectId, ...], columns, orders
    ) -> "ColumnarScoringDatabase":
        """Wrap pre-built frozen columns without re-validating them.

        The trusted constructor for shard attach: ``columns`` are m
        already-validated float64 grade columns and ``orders`` their
        descending rank permutations (as :func:`rank_orders` would
        build them), typically views over a shared-memory segment. The
        caller vouches for validity and for the shared-read-only
        contract — numpy arrays are re-marked non-writeable here, but
        no grades are range-checked and no orders recomputed, so attach
        is O(m), not O(N log N).
        """
        if not columns or len(orders) != len(columns):
            raise ValueError(
                "from_frozen_arrays needs one order per column "
                f"(got {len(columns)} columns, {len(orders)} orders)"
            )
        if not objects:
            raise ValueError("a scoring database needs at least one object")
        self = cls.__new__(cls)
        self._objects = tuple(objects)
        self._index = {obj: idx for idx, obj in enumerate(self._objects)}
        self._columns = list(columns)
        self._orders = list(orders)
        if HAVE_NUMPY:
            for arr in (*self._columns, *self._orders):
                if isinstance(arr, _np.ndarray):
                    arr.flags.writeable = False
        self._mint_lock = threading.Lock()
        self._rankings = [None] * len(self._columns)
        self._grade_maps = [None] * len(self._columns)
        return self

    @classmethod
    def from_scoring_database(cls, db) -> "ColumnarScoringDatabase":
        """Columnarise an existing (row-oriented) scoring database."""
        return cls([db.graded_set(i).as_dict() for i in range(db.num_lists)])

    @classmethod
    def from_skeleton(
        cls, skeleton, grade_rows: Sequence[Sequence[float]]
    ) -> "ColumnarScoringDatabase":
        """Assign grades along a skeleton's permutations (see
        :meth:`ScoringDatabase.from_skeleton`); columnar from the start."""
        from repro.access.scoring_database import ScoringDatabase

        return cls.from_scoring_database(
            ScoringDatabase.from_skeleton(skeleton, grade_rows)
        )

    # ------------------------------------------------------------------
    # Dimensions and direct lookups
    # ------------------------------------------------------------------

    @property
    def num_lists(self) -> int:
        return len(self._columns)

    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> frozenset[ObjectId]:
        return frozenset(self._objects)

    @property
    def interned_objects(self) -> tuple[ObjectId, ...]:
        """All object ids, in interned (dense-index) order.

        The ordered counterpart of :attr:`objects`; position ``j`` in
        every grade column and :meth:`grades_matrix` belongs to
        ``interned_objects[j]``. The shard partitioner slices this
        axis.
        """
        return self._objects

    def grade(self, list_index: int, obj: ObjectId) -> float:
        """mu_Ai(obj) — direct lookup (ground truth, not an access)."""
        grade = self._columns[list_index][self._index[obj]]
        return float(grade)

    def graded_set(self, list_index: int) -> GradedSet:
        """List ``i`` as a :class:`GradedSet`."""
        column = self._columns[list_index]
        return GradedSet(dict(zip(self._objects, self._as_floats(column))))

    @staticmethod
    def _as_floats(column) -> list[float]:
        """A column as plain Python floats (numpy and array agree)."""
        return column.tolist()

    def ranking(self, list_index: int) -> tuple[GradedItem, ...]:
        """List ``i`` sorted for sorted access; built once, then shared."""
        cached = self._rankings[list_index]
        if cached is None:
            with self._mint_lock:
                cached = self._rankings[list_index]
                if cached is None:
                    grades = self._as_floats(self._columns[list_index])
                    objects = self._objects
                    cached = tuple(
                        GradedItem(objects[j], grades[j])
                        for j in self._order_indices(list_index)
                    )
                    self._rankings[list_index] = cached
        return cached

    def _order_indices(self, list_index: int) -> list[int]:
        order = self._orders[list_index]
        return order.tolist()

    def _grade_map(self, list_index: int) -> dict[ObjectId, float]:
        cached = self._grade_maps[list_index]
        if cached is None:
            with self._mint_lock:
                cached = self._grade_maps[list_index]
                if cached is None:
                    grades = self._as_floats(self._columns[list_index])
                    cached = dict(zip(self._objects, grades))
                    self._grade_maps[list_index] = cached
        return cached

    # ------------------------------------------------------------------
    # Bulk gather
    # ------------------------------------------------------------------

    def grades_matrix(self, objs: Sequence[ObjectId] | None = None):
        """The (m, n) grade matrix for ``objs`` (all objects if None).

        Column j of the result holds ``objs[j]``'s grades across the m
        lists, gathered with one fancy-index per list — the bulk
        counterpart of :meth:`grade`, and like it *ground truth*: the
        matrix bypasses sources entirely, so reading it is not an
        access. With numpy absent the matrix is a list of per-list
        ``array('d')`` rows with the same layout.

        Raises :class:`KeyError` for objects this database does not
        grade (same contract as a plain dict lookup).
        """
        if objs is None:
            if HAVE_NUMPY:
                return _np.vstack(self._columns)
            return [array("d", column) for column in self._columns]
        index = self._index
        positions = [index[obj] for obj in objs]
        if HAVE_NUMPY:
            gather = _np.asarray(positions, dtype=_np.intp)
            return _np.vstack([column[gather] for column in self._columns])
        return [
            array("d", (column[p] for p in positions))
            for column in self._columns
        ]

    # ------------------------------------------------------------------
    # Sessions and ground truth
    # ------------------------------------------------------------------

    def session(self) -> MiddlewareSession:
        """A fresh instrumented session, minted without re-sorting.

        Every source shares the database's pre-built ranking tuple and
        grade map; only the per-session cursor and cost tracker are
        new, so minting is O(m) instead of O(N * m). Minting is safe
        from any thread (lock-free once the shared ranking is warm);
        the returned session itself is single-consumer — give each
        concurrent query its own.
        """
        raw = [
            MaterializedSource.trusted(
                f"list-{i}", self.ranking(i), self._grade_map(i)
            )
            for i in range(self.num_lists)
        ]
        return MiddlewareSession.over_sources(raw, num_objects=self.num_objects)

    def _all_scores(self, aggregation: AggregationFunction) -> list[float]:
        """Every object's overall grade, in interned order (vectorized)."""
        return evaluate_columns(
            aggregation, self.grades_matrix(), self.num_objects
        )

    def overall_grades(self, aggregation: AggregationFunction) -> GradedSet:
        """Ground-truth mu_Q for every object (bypasses access accounting)."""
        return GradedSet(dict(zip(self._objects, self._all_scores(aggregation))))

    def true_top_k(
        self, aggregation: AggregationFunction, k: int
    ) -> tuple[GradedItem, ...]:
        """Ground-truth top-k answers (deterministic tie-break)."""
        from repro.algorithms.base import top_k_of

        return top_k_of(
            list(zip(self._objects, self._all_scores(aggregation))), k
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarScoringDatabase(m={self.num_lists}, "
            f"N={self.num_objects})"
        )
