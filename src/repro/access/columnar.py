"""Columnar scoring databases: the in-memory fast path.

:class:`~repro.access.scoring_database.ScoringDatabase` stores each of
the m graded sets as a ``dict[ObjectId, float]`` and mints every
session by handing a full ranking to ``MaterializedSource``, whose
constructor re-validates all N items and rebuilds an N-entry grade
dictionary — O(N * m) of pure Python overhead *per session*, before a
single access is charged.

:class:`ColumnarScoringDatabase` stores the same formal object
(Section 5's function from list index to graded set) in columnar form:

* object ids are **interned** once into a dense ``0..N-1`` index;
* each list's grades live in one ``array('d')`` float column, indexed
  by interned id;
* each list's descending rank order (the skeleton permutation realised
  by the grades, ties broken by
  :func:`~repro.access.source.tie_break_key` exactly as
  :func:`~repro.access.source.rank_items` breaks them) is computed
  **once** and shared.

Sessions are minted in O(m): each source is a cursor over the shared,
pre-built ranking tuple and grade map (``MaterializedSource.trusted``),
so repeated runs — the benchmark regime — pay for accesses, not for
re-sorting. Access-count semantics are untouched: the sources speak
the same sorted/random (and batched) protocol through the same
instrumented wrappers.
"""

from __future__ import annotations

from array import array
from typing import Mapping, Sequence

from repro.access.session import MiddlewareSession
from repro.access.source import MaterializedSource, tie_break_key
from repro.access.types import GradedItem, ObjectId
from repro.core.aggregation import AggregationFunction
from repro.core.graded_set import GradedSet
from repro.core.grades import validate_grade

__all__ = ["ColumnarScoringDatabase"]


class ColumnarScoringDatabase:
    """m graded sets over N objects, stored as float columns.

    Duck-type compatible with the subset of
    :class:`~repro.access.scoring_database.ScoringDatabase` the engine
    and benchmarks rely on (``session()``, ``overall_grades``,
    ``true_top_k``, ``ranking``, dimensions), and produces rankings
    identical to it item for item — the columnar layout is purely a
    representation change.

    Parameters
    ----------
    lists:
        One grade assignment per atomic query — mappings (or
        :class:`~repro.core.graded_set.GradedSet` objects) from object
        to grade. All lists must grade exactly the same objects.
    """

    def __init__(
        self, lists: Sequence[Mapping[ObjectId, float] | GradedSet]
    ) -> None:
        if not lists:
            raise ValueError("a scoring database needs at least one list")
        first = lists[0]
        first_map = first.as_dict() if isinstance(first, GradedSet) else first
        # Intern: index position is the object's dense integer id.
        objects = tuple(first_map)
        if not objects:
            raise ValueError("a scoring database needs at least one object")
        index = {obj: idx for idx, obj in enumerate(objects)}

        columns: list[array] = []
        for i, entry in enumerate(lists):
            mapping = entry.as_dict() if isinstance(entry, GradedSet) else entry
            if len(mapping) != len(objects) or any(
                obj not in index for obj in mapping
            ):
                raise ValueError(
                    f"list {i} grades a different object set than list 0; "
                    "every list must grade all N objects (Section 5 model)"
                )
            column = array("d", bytes(8 * len(objects)))
            for obj, grade in mapping.items():
                column[index[obj]] = validate_grade(
                    grade, context=f"list {i}, object {obj!r}"
                )
            columns.append(column)

        self._objects = objects
        self._index = index
        self._columns = columns
        # Descending rank orders (interned ids), computed once per list.
        tie_keys = [tie_break_key(obj) for obj in objects]
        self._orders: list[array] = [
            array(
                "l",
                sorted(
                    range(len(objects)),
                    key=lambda j: (-column[j], tie_keys[j]),
                ),
            )
            for column in columns
        ]
        # Lazy shared per-list state minted sessions slice into.
        self._rankings: list[tuple[GradedItem, ...] | None] = [None] * len(columns)
        self._grade_maps: list[dict[ObjectId, float] | None] = [None] * len(columns)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_scoring_database(cls, db) -> "ColumnarScoringDatabase":
        """Columnarise an existing (row-oriented) scoring database."""
        return cls([db.graded_set(i).as_dict() for i in range(db.num_lists)])

    @classmethod
    def from_skeleton(
        cls, skeleton, grade_rows: Sequence[Sequence[float]]
    ) -> "ColumnarScoringDatabase":
        """Assign grades along a skeleton's permutations (see
        :meth:`ScoringDatabase.from_skeleton`); columnar from the start."""
        from repro.access.scoring_database import ScoringDatabase

        return cls.from_scoring_database(
            ScoringDatabase.from_skeleton(skeleton, grade_rows)
        )

    # ------------------------------------------------------------------
    # Dimensions and direct lookups
    # ------------------------------------------------------------------

    @property
    def num_lists(self) -> int:
        return len(self._columns)

    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> frozenset[ObjectId]:
        return frozenset(self._objects)

    def grade(self, list_index: int, obj: ObjectId) -> float:
        """mu_Ai(obj) — direct lookup (ground truth, not an access)."""
        return self._columns[list_index][self._index[obj]]

    def graded_set(self, list_index: int) -> GradedSet:
        """List ``i`` as a :class:`GradedSet`."""
        column = self._columns[list_index]
        return GradedSet(
            {obj: column[j] for j, obj in enumerate(self._objects)}
        )

    def ranking(self, list_index: int) -> tuple[GradedItem, ...]:
        """List ``i`` sorted for sorted access; built once, then shared."""
        cached = self._rankings[list_index]
        if cached is None:
            column = self._columns[list_index]
            objects = self._objects
            cached = tuple(
                GradedItem(objects[j], column[j])
                for j in self._orders[list_index]
            )
            self._rankings[list_index] = cached
        return cached

    def _grade_map(self, list_index: int) -> dict[ObjectId, float]:
        cached = self._grade_maps[list_index]
        if cached is None:
            column = self._columns[list_index]
            cached = {obj: column[j] for j, obj in enumerate(self._objects)}
            self._grade_maps[list_index] = cached
        return cached

    # ------------------------------------------------------------------
    # Sessions and ground truth
    # ------------------------------------------------------------------

    def session(self) -> MiddlewareSession:
        """A fresh instrumented session, minted without re-sorting.

        Every source shares the database's pre-built ranking tuple and
        grade map; only the per-session cursor and cost tracker are
        new, so minting is O(m) instead of O(N * m).
        """
        raw = [
            MaterializedSource.trusted(
                f"list-{i}", self.ranking(i), self._grade_map(i)
            )
            for i in range(self.num_lists)
        ]
        return MiddlewareSession.over_sources(raw, num_objects=self.num_objects)

    def overall_grades(self, aggregation: AggregationFunction) -> GradedSet:
        """Ground-truth mu_Q for every object (bypasses access accounting)."""
        return GradedSet(
            {
                obj: aggregation(*(column[j] for column in self._columns))
                for j, obj in enumerate(self._objects)
            }
        )

    def true_top_k(
        self, aggregation: AggregationFunction, k: int
    ) -> tuple[GradedItem, ...]:
        """Ground-truth top-k answers (deterministic tie-break)."""
        from repro.algorithms.base import top_k_of

        columns = self._columns
        return top_k_of(
            {
                obj: aggregation(*(column[j] for column in columns))
                for j, obj in enumerate(self._objects)
            },
            k,
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarScoringDatabase(m={self.num_lists}, "
            f"N={self.num_objects})"
        )
