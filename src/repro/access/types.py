"""Shared value types for the access layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.grades import validate_grade

ObjectId = Hashable

__all__ = ["ObjectId", "GradedItem"]


@dataclass(frozen=True, slots=True)
class GradedItem:
    """One (object, grade) pair as delivered by a subsystem.

    This is the unit of *sorted access* (Section 4): "the subsystem
    will output the graded set consisting of all objects, one by one,
    along with their grades under the subquery, in sorted order based
    on grade". Minted once per access on the hot path, hence
    ``slots=True`` (no per-instance ``__dict__``).
    """

    obj: ObjectId
    grade: float

    def __post_init__(self) -> None:
        validate_grade(self.grade, context=f"item {self.obj!r}")

    def __iter__(self):
        """Allow ``obj, grade = item`` unpacking."""
        return iter((self.obj, self.grade))

    def __repr__(self) -> str:
        return f"({self.obj!r}, {self.grade:.4g})"
