"""Middleware sessions: what an algorithm run sees.

A session bundles the m instrumented sources (one per atomic subquery),
the shared cost tracker, and the object-population size. Algorithms in
:mod:`repro.algorithms` take a session and can reach grades only
through its sources — mirroring how Garlic "receives answers to
subqueries from various subsystems, which can be accessed only in
limited ways" (Abstract).

A session is the unit of *mutable* state in the concurrency model:
its sorted cursors and cost tracker belong to exactly one query run
and must not be shared between threads. The stores sessions are
minted from (:class:`~repro.access.columnar.ColumnarScoringDatabase`,
the subsystems' ranking caches) are shared read-only, so serving many
queries in parallel means one cheap session per query, never one
session across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.access.cost import CostTracker
from repro.access.source import InstrumentedSource, SortedRandomSource

__all__ = ["MiddlewareSession"]


@dataclass
class MiddlewareSession:
    """The m ranked sources an algorithm run may access, plus accounting.

    Attributes
    ----------
    sources:
        One :class:`SortedRandomSource` per atomic subquery, already
        instrumented so every access is charged to :attr:`tracker`.
    tracker:
        Shared cost accumulator; its per-list indices correspond to the
        *original* list positions even inside sub-sessions.
    num_objects:
        N, the size of the object population (every list ranks the
        same N objects in the formal model of Section 5).
    """

    sources: tuple[SortedRandomSource, ...]
    tracker: CostTracker
    num_objects: int

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError("a session needs at least one source")
        self.sources = tuple(self.sources)

    @property
    def num_lists(self) -> int:
        return len(self.sources)

    @classmethod
    def over_sources(
        cls, raw_sources: Sequence[SortedRandomSource], num_objects: int | None = None
    ) -> "MiddlewareSession":
        """Build a session by instrumenting plain sources with a fresh tracker."""
        tracker = CostTracker(len(raw_sources))
        instrumented = tuple(
            InstrumentedSource(src, tracker, i) for i, src in enumerate(raw_sources)
        )
        if num_objects is None:
            num_objects = max(len(src) for src in raw_sources)
        return cls(instrumented, tracker, num_objects)

    def subsession(
        self, list_indices: Sequence[int], restart: bool = True
    ) -> "MiddlewareSession":
        """A session over a subset of this session's lists.

        Used by the median algorithm of Remark 6.1, which runs A0 on
        each pair of lists. The tracker is shared, so sub-run costs
        accumulate into the parent's accounting (the remark's cost
        analysis adds the three A0 runs). With ``restart`` (the
        default) the sub-run re-issues sorted access from the top, as a
        real middleware would when starting a fresh subquery.
        """
        chosen = tuple(self.sources[i] for i in list_indices)
        if restart:
            for src in chosen:
                src.restart()
        return MiddlewareSession(chosen, self.tracker, self.num_objects)

    def restart_all(self) -> None:
        """Reset every source's sorted cursor (fresh algorithm run)."""
        for src in self.sources:
            src.restart()
