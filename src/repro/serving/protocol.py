"""Wire types of the serving layer: requests, responses, error envelopes.

Transport-independent on purpose: :class:`~repro.serving.app.ServingApp`
consumes :class:`HttpRequest` and produces :class:`HttpResponse`, and
the asyncio socket transport in :mod:`repro.serving.server` is just one
way to mint the former and flush the latter — unit tests drive the app
directly with hand-built requests.

Every error the server emits uses one structured JSON envelope::

    {"error": {"code": "deadline_exceeded", "status": 504,
               "message": "...", ...}}

so clients can branch on ``code`` without parsing prose. Server-side,
any handler can abort with :class:`ServingError`; the app maps it (and
the library's own :class:`~repro.exceptions.ReproError` family) onto
the envelope.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Mapping

from repro.core.aggregation import AggregationFunction
from repro.core.means import (
    ARITHMETIC_MEAN,
    GEOMETRIC_MEAN,
    HARMONIC_MEAN,
)
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.exceptions import ReproError

__all__ = [
    "NAMED_AGGREGATIONS",
    "HttpRequest",
    "HttpResponse",
    "ServingError",
    "error_response",
    "json_response",
    "resolve_aggregation",
]

#: Aggregations addressable by name over the wire (source-backed
#: engines take an :class:`AggregationFunction`, and HTTP clients can
#: only send strings). MEDIAN is deliberately absent: it is not
#: strict, so the auto-selected strategies differ per arity — callers
#: who need it run the library directly.
NAMED_AGGREGATIONS: Mapping[str, AggregationFunction] = {
    "min": MINIMUM,
    "max": MAXIMUM,
    "mean": ARITHMETIC_MEAN,
    "geometric-mean": GEOMETRIC_MEAN,
    "harmonic-mean": HARMONIC_MEAN,
    "product": ALGEBRAIC_PRODUCT,
}


class ServingError(ReproError):
    """A request-scoped failure with a definite HTTP mapping.

    Handlers raise it; the app converts it to the JSON error envelope.
    ``retry_after_s`` adds a ``Retry-After`` header (shedding).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after_s: float | None = None,
        details: Mapping[str, object] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        self.details = dict(details) if details else None


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP request, as the app sees it."""

    method: str
    path: str
    query: Mapping[str, str] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)  # lower-cased keys
    body: bytes = b""

    def json(self) -> object:
        """The body as JSON; 400-enveloped :class:`ServingError` if not."""
        if not self.body:
            raise ServingError(
                HTTPStatus.BAD_REQUEST, "missing_body",
                "this endpoint requires a JSON request body",
            )
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise ServingError(
                HTTPStatus.BAD_REQUEST, "invalid_json",
                f"request body is not valid JSON: {exc}",
            ) from None

    def json_object(self) -> dict:
        """The body as a JSON *object* (the common case)."""
        payload = self.json()
        if not isinstance(payload, dict):
            raise ServingError(
                HTTPStatus.BAD_REQUEST, "invalid_request",
                "request body must be a JSON object",
            )
        return payload


@dataclass(frozen=True)
class HttpResponse:
    """One response: status + JSON-encoded body + extra headers."""

    status: int
    body: bytes
    headers: tuple[tuple[str, str], ...] = ()

    @property
    def reason(self) -> str:
        try:
            return HTTPStatus(self.status).phrase
        except ValueError:  # pragma: no cover - non-standard status
            return "Unknown"


def json_response(
    payload: object,
    status: int = HTTPStatus.OK,
    headers: tuple[tuple[str, str], ...] = (),
) -> HttpResponse:
    """A response carrying ``payload`` as JSON.

    Object ids may be arbitrary hashables; anything the encoder does
    not know is serialised via ``str`` so an exotic id degrades to its
    repr instead of a 500.
    """
    body = json.dumps(payload, default=str).encode("utf-8")
    return HttpResponse(status=int(status), body=body, headers=headers)


def error_response(error: ServingError) -> HttpResponse:
    """``error`` as the structured JSON envelope."""
    envelope: dict[str, object] = {
        "code": error.code,
        "status": int(error.status),
        "message": error.message,
    }
    if error.retry_after_s is not None:
        envelope["retry_after_s"] = error.retry_after_s
    if error.details:
        envelope["details"] = error.details
    headers: tuple[tuple[str, str], ...] = ()
    if error.retry_after_s is not None:
        # Retry-After is delta-seconds and integral per RFC 9110;
        # round sub-second shed hints up so "0" never tells a client
        # to hammer straight back.
        headers = (("Retry-After", str(max(1, round(error.retry_after_s)))),)
    return json_response({"error": envelope}, error.status, headers)


def resolve_aggregation(name: object) -> AggregationFunction:
    """The named aggregation, or a 400-enveloped error."""
    if not isinstance(name, str):
        raise ServingError(
            HTTPStatus.BAD_REQUEST, "invalid_aggregation",
            f"aggregation must be a string, got {type(name).__name__}",
        )
    aggregation = NAMED_AGGREGATIONS.get(name)
    if aggregation is None:
        raise ServingError(
            HTTPStatus.BAD_REQUEST, "unknown_aggregation",
            f"unknown aggregation {name!r}; "
            f"one of {sorted(NAMED_AGGREGATIONS)}",
        )
    return aggregation
