"""The serving metrics plane: latency histograms, qps, traffic counters.

Stdlib-only, lock-guarded (engine work completes on pool threads, so
observations arrive from anywhere), and cheap enough to update on
every request: an observation is two dict increments and one bucket
increment.

Percentiles come from a fixed log-spaced latency histogram rather than
a reservoir: the buckets span 0.25 ms to ~8 s doubling each step, so a
reported p99 is the upper bound of the bucket holding the 99th
percentile — at most one doubling above the true value, stable under
load, and O(1) memory regardless of traffic.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["LatencyHistogram", "ServerMetrics"]


def _default_bounds() -> tuple[float, ...]:
    # 0.25, 0.5, 1, 2, ... 8192 ms; +inf is implicit as the last bucket.
    return tuple(0.25 * (2.0 ** i) for i in range(16))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Not thread-safe by itself — :class:`ServerMetrics` updates it under
    its own lock.
    """

    def __init__(self, bounds: tuple[float, ...] | None = None) -> None:
        self.bounds = bounds if bounds is not None else _default_bounds()
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        # counts[i] counts observations <= bounds[i]; the final slot is
        # the +inf overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        latency_ms = max(0.0, float(latency_ms))
        # Linear scan beats bisect at 16 buckets for the common (fast)
        # case: most observations land in the first few buckets.
        for i, bound in enumerate(self.bounds):
            if latency_ms <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms

    def percentile(self, q: float) -> float | None:
        """Upper bound of the bucket holding the ``q``-th percentile.

        ``None`` when nothing was observed. ``q`` in [0, 100].
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.total == 0:
            return None
        # The smallest rank covering q% of observations (nearest-rank).
        rank = max(1, -(-int(q * self.total) // 100))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max_ms  # overflow bucket: report the max
        return self.max_ms  # pragma: no cover - rank <= total always hits

    def snapshot(self) -> dict:
        mean = self.sum_ms / self.total if self.total else None
        return {
            "count": self.total,
            "mean_ms": round(mean, 3) if mean is not None else None,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "max_ms": round(self.max_ms, 3),
        }


#: Sliding-qps window length, seconds.
_QPS_WINDOW_S = 60.0


class ServerMetrics:
    """Thread-safe aggregate of everything the server observed.

    ``clock`` is injectable (monotonic seconds) so tests can march
    time instead of sleeping.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        #: (route, status) -> count; routes are templates
        #: ("/v1/cursor/{id}/next"), never raw paths, to bound
        #: cardinality.
        self._requests: dict[tuple[str, int], int] = {}
        self._latency = LatencyHistogram()
        self._per_route: dict[str, LatencyHistogram] = {}
        self._recent: deque[float] = deque()
        self.in_flight = 0
        self.peak_in_flight = 0
        self.shed_total = 0
        self.deadline_total = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def request_started(self) -> None:
        with self._lock:
            self.in_flight += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight

    def request_finished(
        self, route: str, status: int, latency_ms: float
    ) -> None:
        now = self._clock()
        with self._lock:
            self.in_flight = max(0, self.in_flight - 1)
            key = (route, int(status))
            self._requests[key] = self._requests.get(key, 0) + 1
            self._latency.observe(latency_ms)
            per_route = self._per_route.get(route)
            if per_route is None:
                per_route = self._per_route[route] = LatencyHistogram()
            per_route.observe(latency_ms)
            if status == 503:
                self.shed_total += 1
            elif status == 504:
                self.deadline_total += 1
            self._recent.append(now)
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - _QPS_WINDOW_S
        recent = self._recent
        while recent and recent[0] < horizon:
            recent.popleft()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        now = self._clock()
        with self._lock:
            self._prune(now)
            uptime = max(now - self.started_at, 1e-9)
            total = sum(self._requests.values())
            window = min(uptime, _QPS_WINDOW_S)
            by_status: dict[str, int] = {}
            by_route: dict[str, dict] = {}
            for (route, status), count in sorted(self._requests.items()):
                by_status[str(status)] = by_status.get(str(status), 0) + count
                entry = by_route.setdefault(
                    route, {"requests": 0, "by_status": {}}
                )
                entry["requests"] += count
                entry["by_status"][str(status)] = count
            for route, entry in by_route.items():
                entry["latency"] = self._per_route[route].snapshot()
            return {
                "uptime_s": round(uptime, 3),
                "requests_total": total,
                "qps": round(total / uptime, 3),
                "qps_60s": round(len(self._recent) / max(window, 1e-9), 3),
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "shed_total": self.shed_total,
                "deadline_exceeded_total": self.deadline_total,
                "by_status": by_status,
                "latency": self._latency.snapshot(),
                "routes": by_route,
            }
