"""Serving configuration: every operational knob in one dataclass.

The defaults describe a small single-process deployment; the CLI
(``python -m repro.serving``) and the tests construct variants via
``dataclasses.replace``-style keyword overrides.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """Operational limits of one serving process.

    Attributes
    ----------
    host / port:
        Bind address. Port 0 asks the OS for an ephemeral port (the
        integration tests use this); the bound port is surfaced on
        :attr:`~repro.serving.server.ServingServer.port`.
    max_workers:
        Thread-pool width of the wrapped
        :class:`~repro.engine.async_engine.AsyncEngine` — the number
        of engine calls actually executing at once.
    max_inflight:
        Admission-control bound on *admitted* requests (executing on
        the pool). Held at or below ``max_workers`` there is no
        internal queueing surprise: every admitted request has a
        worker.
    max_queue:
        Requests allowed to wait for admission before the server
        starts shedding with 503. Queue depth bounds worst-case
        latency: a request admitted after waiting behind ``max_queue``
        peers still meets a deadline sized for it.
    shed_retry_after_s:
        ``Retry-After`` value (seconds) sent with every 503.
    default_deadline_ms:
        Deadline applied when a request does not carry its own
        ``deadline_ms``; ``None`` means no implicit deadline.
    max_deadline_ms:
        Upper clamp for client-supplied deadlines (a client cannot
        pin a worker for minutes by asking politely).
    cursor_ttl_s:
        Idle lifetime of a server-side cursor session; the sweeper
        evicts sessions idle longer than this.
    max_cursors:
        Bound on concurrently live cursor sessions (creation past the
        bound is shed with 503 — cursors hold sessions, i.e. memory).
    sweep_interval_s:
        Period of the TTL sweeper task.
    drain_grace_s:
        Graceful-shutdown budget: how long ``shutdown()`` waits for
        in-flight requests to finish before closing the engine anyway.
    max_body_bytes:
        Request-body size cap (413 above it).
    request_timeout_s:
        Socket-level budget for reading one request head + body.
    shards:
        Split the columnar backing into this many shared-memory
        shards served by worker processes (``None``/0 = unsharded,
        single-interpreter). Consumed when the engine is *built* (the
        CLI's ``build_engine``, or your own ``Engine.over_shards``
        call); the running app just reflects it in ``/healthz`` and
        ``/metrics``. Meaningless for catalog backings.
    shard_processes:
        Worker-pool width for the sharded backing: ``None`` = one per
        shard up to the CPU count, ``0`` = inline (no pool; the
        accounting-reference mode, useful in tests).
    """

    host: str = "127.0.0.1"
    port: int = 8000
    max_workers: int = 8
    max_inflight: int = 8
    max_queue: int = 16
    shed_retry_after_s: float = 1.0
    default_deadline_ms: int | None = None
    max_deadline_ms: int = 60_000
    cursor_ttl_s: float = 300.0
    max_cursors: int = 256
    sweep_interval_s: float = 5.0
    drain_grace_s: float = 10.0
    max_body_bytes: int = 1 << 20
    request_timeout_s: float = 30.0
    shards: int | None = None
    shard_processes: int | None = None

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 0:
            raise ValueError(f"shards must be >= 0 or None, got {self.shards}")
        if self.shard_processes is not None and self.shard_processes < 0:
            raise ValueError(
                "shard_processes must be >= 0 or None, "
                f"got {self.shard_processes}"
            )
        if self.shard_processes is not None and not self.shards:
            raise ValueError(
                "shard_processes without shards makes no pool to size; "
                "set shards >= 1"
            )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.max_cursors < 1:
            raise ValueError(f"max_cursors must be >= 1, got {self.max_cursors}")
        if self.cursor_ttl_s <= 0:
            raise ValueError(f"cursor_ttl_s must be > 0, got {self.cursor_ttl_s}")
        if self.max_deadline_ms < 1:
            raise ValueError(
                f"max_deadline_ms must be >= 1, got {self.max_deadline_ms}"
            )
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms < 1
        ):
            raise ValueError(
                "default_deadline_ms must be >= 1 or None, "
                f"got {self.default_deadline_ms}"
            )
