"""Server-side cursor sessions: paging state with a TTL.

Section 4's "continue where we left off" is a *stateful* contract —
a cursor owns incremental Fagin bookkeeping and live sources. Over
HTTP that state must live server-side between requests, which makes it
a resource to account for and bound:

* every open cursor is a :class:`CursorSession` with an opaque id;
* sessions idle past their TTL are evicted by the server's sweeper (a
  later request for the id gets 410 Gone, distinguishable from a
  never-existed 404 only by phrasing — ids are unguessable either way);
* the live-session count is bounded (503 on exhaustion: cursors hold
  memory, so creating one is subject to load shedding like any work);
* graceful shutdown drains the store, ending every session.

The store mutates only on the server's event loop, so plain dicts
suffice; the clock is injectable for tests.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field
from http import HTTPStatus

from repro.engine.async_engine import AsyncResultCursor
from repro.serving.protocol import ServingError

__all__ = ["CursorSession", "CursorSessionStore"]


@dataclass
class CursorSession:
    """One live server-side paging session."""

    id: str
    cursor: AsyncResultCursor
    spec: dict
    ttl_s: float
    created_at: float
    last_used: float
    pages_served: int = 0
    details: dict = field(default_factory=dict)

    def expired(self, now: float) -> bool:
        return now - self.last_used > self.ttl_s

    def describe(self, now: float) -> dict:
        # getattr: the store is duck-typed over anything page-shaped
        # (tests drive it with fakes that predate the certified surface).
        guarantee = getattr(self.cursor, "guarantee", None)
        live_bounds = getattr(self.cursor, "live_bounds", None)
        return {
            "cursor_id": self.id,
            "spec": self.spec,
            "ttl_s": self.ttl_s,
            "idle_s": round(now - self.last_used, 3),
            "age_s": round(now - self.created_at, 3),
            "pages_served": self.pages_served,
            "pages_fetched": self.cursor.pages_fetched,
            "answers_fetched": self.cursor.answers_fetched,
            "remaining": self.cursor.remaining,
            # The active anytime certificate (None before the first
            # page): what the answers fetched so far are worth, and
            # the certified cap on everything still unfetched.
            "guarantee": None if guarantee is None else guarantee.as_dict(),
            "bounds": live_bounds() if callable(live_bounds) else None,
        }


class CursorSessionStore:
    """Bounded TTL map of cursor ids to live sessions."""

    def __init__(
        self,
        *,
        ttl_s: float = 300.0,
        max_sessions: int = 256,
        clock=time.monotonic,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.ttl_s = ttl_s
        self.max_sessions = max_sessions
        self._clock = clock
        self._sessions: dict[str, CursorSession] = {}
        self.created_total = 0
        self.expired_total = 0
        self.closed_total = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def create(self, cursor: AsyncResultCursor, spec: dict) -> CursorSession:
        self.evict_expired()
        if len(self._sessions) >= self.max_sessions:
            raise ServingError(
                HTTPStatus.SERVICE_UNAVAILABLE,
                "too_many_cursors",
                f"cursor-session limit reached ({self.max_sessions}); "
                "close or let idle sessions expire, then retry",
                retry_after_s=self.ttl_s,
            )
        now = self._clock()
        session = CursorSession(
            id=secrets.token_hex(8),
            cursor=cursor,
            spec=spec,
            ttl_s=self.ttl_s,
            created_at=now,
            last_used=now,
        )
        self._sessions[session.id] = session
        self.created_total += 1
        return session

    def get(self, cursor_id: str) -> CursorSession:
        """The live session for ``cursor_id``; touching refreshes TTL."""
        session = self._sessions.get(cursor_id)
        if session is None:
            raise ServingError(
                HTTPStatus.NOT_FOUND,
                "unknown_cursor",
                f"no cursor session {cursor_id!r} (never created, "
                "already closed, or expired and swept)",
            )
        now = self._clock()
        if session.expired(now):
            del self._sessions[cursor_id]
            self.expired_total += 1
            raise ServingError(
                HTTPStatus.GONE,
                "cursor_expired",
                f"cursor session {cursor_id!r} expired after "
                f"{session.ttl_s:g}s idle",
            )
        session.last_used = now
        return session

    def close(self, cursor_id: str) -> CursorSession:
        """Remove and return the session (404/410 mapped via :meth:`get`)."""
        session = self.get(cursor_id)
        del self._sessions[cursor_id]
        self.closed_total += 1
        return session

    def evict_expired(self) -> int:
        """Drop every expired session; returns how many were evicted."""
        now = self._clock()
        expired = [
            cursor_id
            for cursor_id, session in self._sessions.items()
            if session.expired(now)
        ]
        for cursor_id in expired:
            del self._sessions[cursor_id]
        self.expired_total += len(expired)
        return len(expired)

    def drain(self) -> int:
        """Close every live session (graceful shutdown)."""
        count = len(self._sessions)
        self._sessions.clear()
        self.closed_total += count
        return count

    def snapshot(self) -> dict:
        return {
            "active": len(self._sessions),
            "max_sessions": self.max_sessions,
            "ttl_s": self.ttl_s,
            "created_total": self.created_total,
            "expired_total": self.expired_total,
            "closed_total": self.closed_total,
        }

    def __repr__(self) -> str:
        return (
            f"CursorSessionStore({len(self._sessions)}/{self.max_sessions} "
            f"active, ttl={self.ttl_s:g}s)"
        )
