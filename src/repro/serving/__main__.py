"""CLI entry point: ``python -m repro.serving``.

Boots a serving process over one of two demo backings:

* ``--backing columnar`` (default) — a source-backed engine over a
  shared read-only :class:`ColumnarScoringDatabase` built from the
  Section 5 independent workload (``--n/--m/--seed``); queries name
  an aggregation (``{"aggregation": "min", "k": 10}``).
* ``--backing catalog`` — the federated Garlic demo: a relational and
  a QBIC-style image subsystem over one object population; queries
  are strings (``{"query": "(Artist = \\"artist-1\\") AND (Color ~
  \\"red\\")", "k": 5}``).

Real deployments construct their own :class:`Engine` and call
:func:`main`'s building blocks directly; the CLI exists so the load
generator, the Docker image, and the CI smoke job have a one-line
server to aim at.

SIGINT/SIGTERM trigger a graceful drain (admission empties, cursor
sessions close, engine facade closes) and a zero exit — what the
compose file and the CI smoke job assert on.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys

from repro.access import ColumnarScoringDatabase
from repro.engine import Engine
from repro.serving.app import ServingApp
from repro.serving.config import ServingConfig
from repro.serving.server import ServingServer
from repro.workloads import independent_database

__all__ = ["build_engine", "main"]


def build_engine(args: argparse.Namespace) -> Engine:
    if args.backing == "columnar":
        store = ColumnarScoringDatabase.from_scoring_database(
            independent_database(args.m, args.n, seed=args.seed)
        )
        if args.shards:
            # Multi-process serving: the store moves into shared-memory
            # shards, queries fan out to a persistent worker pool. The
            # engine owns that pool; the app's graceful drain closes it.
            return Engine.over_shards(
                store,
                shards=args.shards,
                processes=args.shard_processes,
            )
        return Engine.over(store)
    if args.shards:
        raise SystemExit(
            "--shards applies to the columnar backing only; the catalog "
            "demo federates subsystems, which have no columns to shard"
        )
    # The federated catalog demo: objects graded by two subsystems.
    import random

    from repro.subsystems import QbicSubsystem, RelationalSubsystem

    rng = random.Random(args.seed)
    objects = [f"o{i}" for i in range(args.n)]
    relational = RelationalSubsystem(
        "rel",
        {o: {"Artist": f"artist-{i % 17}"} for i, o in enumerate(objects)},
    )
    qbic = QbicSubsystem(
        "img",
        {
            "Color": {
                o: (rng.random(), rng.random(), rng.random())
                for o in objects
            }
        },
    )
    return Engine().register(relational).register(qbic)


async def _run(args: argparse.Namespace) -> int:
    config = ServingConfig(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        cursor_ttl_s=args.cursor_ttl_s,
        drain_grace_s=args.drain_grace_s,
        shards=args.shards or None,
        shard_processes=args.shard_processes if args.shards else None,
    )
    app = ServingApp(build_engine(args), config)
    server = ServingServer(app, config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(
            signum, lambda: asyncio.ensure_future(server.shutdown())
        )
    sharding = (
        f", shards={config.shards}x{config.shard_processes or 'auto'}proc"
        if config.shards
        else ""
    )
    print(
        f"repro.serving listening on http://{config.host}:{server.port} "
        f"(backing={args.backing}, workers={config.max_workers}, "
        f"inflight<={config.max_inflight}, queue<={config.max_queue}"
        f"{sharding})",
        flush=True,
    )
    summary = await server.serve_forever()
    print(f"repro.serving drained: {json.dumps(summary)}", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument(
        "--backing", choices=("columnar", "catalog"), default="columnar"
    )
    parser.add_argument("--n", type=int, default=10_000, help="population size")
    parser.add_argument("--m", type=int, default=3, help="ranked lists")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--default-deadline-ms", type=int, default=None)
    parser.add_argument("--cursor-ttl-s", type=float, default=300.0)
    parser.add_argument("--drain-grace-s", type=float, default=10.0)
    # Sharded multi-process execution. Env-overridable so the Docker
    # image / compose file can turn sharding on without editing the
    # command line: REPRO_SHARDS=8 docker run ...
    parser.add_argument(
        "--shards",
        type=int,
        default=int(os.environ.get("REPRO_SHARDS", "0") or "0"),
        help="split the columnar store into N shared-memory shards "
        "served by worker processes (0 = unsharded; env REPRO_SHARDS)",
    )
    parser.add_argument(
        "--shard-processes",
        type=int,
        default=(
            int(os.environ["REPRO_SHARD_PROCESSES"])
            if os.environ.get("REPRO_SHARD_PROCESSES")
            else None
        ),
        help="worker-pool width for --shards (default: one per shard "
        "up to the CPU count; env REPRO_SHARD_PROCESSES)",
    )
    args = parser.parse_args(argv)
    if args.shards < 0:
        parser.error(f"--shards must be >= 0, got {args.shards}")
    if args.shard_processes is not None and args.shard_processes < 0:
        parser.error(
            f"--shard-processes must be >= 0, got {args.shard_processes}"
        )
    try:
        return asyncio.run(_run(args))
    except KeyboardInterrupt:  # pragma: no cover - double ^C
        return 130


if __name__ == "__main__":
    sys.exit(main())
