"""repro.serving — the HTTP serving subsystem over :class:`AsyncEngine`.

Fagin's middleware is a *service*: a query layer federating multimedia
subsystems for many concurrent callers. This package is that service's
network edge — a minimal-dependency (stdlib ``asyncio`` + ``http``)
HTTP/JSON server wrapping one engine:

* ``POST /v1/query`` — one-shot top-k submit,
* ``POST /v1/cursor`` + ``GET /v1/cursor/{id}/next`` — server-side
  paging sessions with TTL eviction (Section 4's "continue where we
  left off" as a wire protocol),
* ``GET /v1/explain`` — the planner's strategy description,
* ``GET /healthz`` / ``GET /metrics`` — the operational plane.

Robustness is first-class: per-request deadlines (``deadline_ms`` →
504), admission control with queue-depth shedding (503 +
``Retry-After``), graceful shutdown draining live cursors, and
structured JSON error envelopes. See DESIGN.md "Serving layer".

Programmatic use::

    from repro.engine import Engine
    from repro.serving import ServingApp, ServingConfig, ServingServer

    app = ServingApp(engine, ServingConfig(port=0))
    server = ServingServer(app)
    await server.start()

or from a shell: ``python -m repro.serving --port 8000``.
"""

from repro.serving.admission import AdmissionController
from repro.serving.app import ServingApp
from repro.serving.config import ServingConfig
from repro.serving.metrics import LatencyHistogram, ServerMetrics
from repro.serving.protocol import (
    NAMED_AGGREGATIONS,
    HttpRequest,
    HttpResponse,
    ServingError,
    error_response,
    json_response,
    resolve_aggregation,
)
from repro.serving.server import ServingServer
from repro.serving.sessions import CursorSession, CursorSessionStore

__all__ = [
    "AdmissionController",
    "CursorSession",
    "CursorSessionStore",
    "HttpRequest",
    "HttpResponse",
    "LatencyHistogram",
    "NAMED_AGGREGATIONS",
    "ServerMetrics",
    "ServingApp",
    "ServingConfig",
    "ServingError",
    "ServingServer",
    "error_response",
    "json_response",
    "resolve_aggregation",
]
