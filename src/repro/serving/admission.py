"""Admission control: bounded in-flight work, queue-depth shedding.

The paper's middleware assumes one caller; a server has thousands. Two
numbers keep it stable under overload:

* ``max_inflight`` — requests actually executing on the engine pool at
  once. Admission is a semaphore of this width.
* ``max_queue`` — requests allowed to *wait* for a slot. Anything
  arriving past a full queue is shed immediately with 503 and a
  ``Retry-After`` hint, because a request admitted behind an unbounded
  queue would only time out later having consumed a slot — shedding
  early is the load-stable behaviour (and the client's signal to back
  off).

Single-event-loop discipline: all state mutates on the owning loop
(the server's), so plain ints suffice — the asyncio primitives provide
the waiting, not the mutual exclusion.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from http import HTTPStatus

from repro.serving.protocol import ServingError

__all__ = ["AdmissionController"]


class AdmissionController:
    """A bounded-concurrency gate with early shedding.

    Use as ``async with controller.admit(): ...`` around the work of
    one request. Raises a 503 :class:`ServingError` instead of
    admitting once ``max_queue`` requests are already waiting.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        *,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s
        self._slots = asyncio.Semaphore(max_inflight)
        self.in_flight = 0
        self.waiting = 0
        self.admitted_total = 0
        self.shed_total = 0

    @asynccontextmanager
    async def admit(self):
        if self.in_flight >= self.max_inflight and self.waiting >= self.max_queue:
            self.shed_total += 1
            raise ServingError(
                HTTPStatus.SERVICE_UNAVAILABLE,
                "overloaded",
                f"server at capacity ({self.in_flight} in flight, "
                f"{self.waiting} queued); retry later",
                retry_after_s=self.retry_after_s,
                details={
                    "max_inflight": self.max_inflight,
                    "max_queue": self.max_queue,
                },
            )
        self.waiting += 1
        try:
            await self._slots.acquire()
        finally:
            self.waiting -= 1
        self.in_flight += 1
        self.admitted_total += 1
        try:
            yield
        finally:
            self.in_flight -= 1
            self._slots.release()

    async def drain(self) -> None:
        """Wait until nothing is in flight (used by graceful shutdown).

        Acquiring every slot means every admitted request has
        released; the slots are put straight back so a non-draining
        caller (tests) can reuse the controller.
        """
        for _ in range(self.max_inflight):
            await self._slots.acquire()
        for _ in range(self.max_inflight):
            self._slots.release()

    def snapshot(self) -> dict:
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "in_flight": self.in_flight,
            "waiting": self.waiting,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionController({self.in_flight}/{self.max_inflight} "
            f"in flight, {self.waiting}/{self.max_queue} queued)"
        )
