"""The serving application: routes, request lifecycle, graceful drain.

Transport-independent: :meth:`ServingApp.handle` maps one
:class:`~repro.serving.protocol.HttpRequest` to one
:class:`~repro.serving.protocol.HttpResponse`; the asyncio socket
server in :mod:`repro.serving.server` is just the pump. Endpoints:

========  =========================  =====================================
method    path                       purpose
========  =========================  =====================================
POST      /v1/query                  one-shot top-k submit
POST      /v1/cursor                 open a server-side paging session
GET       /v1/cursor/{id}            describe a live session
GET       /v1/cursor/{id}/next       fetch the next page
DELETE    /v1/cursor/{id}            close a session
GET       /v1/explain                the planner's strategy description
GET       /healthz                   liveness + drain state (never shed)
GET       /metrics                   the metrics plane (never shed)
========  =========================  =====================================

Request lifecycle invariants (DESIGN.md "Serving layer" documents the
why at length):

1. **Admission before work.** Every engine-touching endpoint passes
   the :class:`~repro.serving.admission.AdmissionController`; a
   request past the queue bound is shed with 503 + ``Retry-After``
   *before* any session is minted.
2. **Deadline around work.** ``deadline_ms`` (body field or query
   parameter, clamped to the config's maximum) bounds the awaited
   engine call; expiry maps to 504. The underlying pool thread may
   finish its page in the background — the engine's per-session
   isolation means that work is invisible to every other request, and
   a timed-out *cursor* page is recorded on the session (the page was
   genuinely fetched; only delivery timed out), keeping the paging
   accounting consistent.
3. **Errors are envelopes.** Library errors (bad k, unknown
   aggregation, planning failures) map to structured 400s; only
   genuinely unexpected exceptions produce a 500, and the engine
   stays healthy either way.
4. **Draining is explicit.** During shutdown new work is refused with
   503 ``draining``, in-flight requests get the grace period, cursor
   sessions are closed, then the engine facade closes.
"""

from __future__ import annotations

import asyncio
import time
from http import HTTPStatus

from repro import __version__
from repro.algorithms.base import TopKResult
from repro.core.certify import validate_epsilon
from repro.engine.async_engine import AsyncEngine
from repro.engine.engine import Engine
from repro.exceptions import ReproError
from repro.serving.admission import AdmissionController
from repro.serving.config import ServingConfig
from repro.serving.metrics import ServerMetrics
from repro.serving.protocol import (
    HttpRequest,
    HttpResponse,
    ServingError,
    error_response,
    json_response,
    resolve_aggregation,
)
from repro.serving.sessions import CursorSessionStore

__all__ = ["ServingApp"]

#: Routes exempt from admission control and drain refusal: an operator
#: must always be able to ask "are you alive" and "what are you doing".
_CONTROL_ROUTES = frozenset({"/healthz", "/metrics"})


class ServingApp:
    """One engine served over the HTTP/JSON protocol."""

    def __init__(
        self, engine: Engine, config: ServingConfig | None = None
    ) -> None:
        self.config = config or ServingConfig()
        self.engine = engine
        self.async_engine = AsyncEngine(
            engine, max_workers=self.config.max_workers
        )
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.max_queue,
            retry_after_s=self.config.shed_retry_after_s,
        )
        self.sessions = CursorSessionStore(
            ttl_s=self.config.cursor_ttl_s,
            max_sessions=self.config.max_cursors,
        )
        self._draining = False
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """One request, fully enveloped: never raises."""
        route, handler, args = self._route(request)
        started = time.perf_counter()
        self.metrics.request_started()
        try:
            if handler is None:
                raise ServingError(
                    HTTPStatus.NOT_FOUND,
                    "unknown_route",
                    f"no route for {request.method} {request.path}",
                )
            if self._draining and route not in _CONTROL_ROUTES:
                raise ServingError(
                    HTTPStatus.SERVICE_UNAVAILABLE,
                    "draining",
                    "server is draining for shutdown",
                    retry_after_s=self.config.shed_retry_after_s,
                )
            response = await handler(request, *args)
        except ServingError as exc:
            response = error_response(exc)
        except (ReproError, ValueError) as exc:
            # The library's own validation errors are the client's
            # fault: bad k, unknown attribute, non-monotone cursor
            # aggregation... all deterministic 400s.
            response = error_response(
                ServingError(
                    HTTPStatus.BAD_REQUEST,
                    type(exc).__name__,
                    str(exc),
                )
            )
        except asyncio.CancelledError:
            raise  # shutdown cancellation must propagate
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            response = error_response(
                ServingError(
                    HTTPStatus.INTERNAL_SERVER_ERROR,
                    "internal_error",
                    f"unexpected {type(exc).__name__}: {exc}",
                )
            )
        latency_ms = (time.perf_counter() - started) * 1e3
        self.metrics.request_finished(route, response.status, latency_ms)
        return response

    def _route(self, request: HttpRequest):
        """(template, handler, extra args) for one request."""
        method, path = request.method.upper(), request.path
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return "/healthz", self._healthz, ()
        if path == "/metrics" and method == "GET":
            return "/metrics", self._metrics, ()
        if path == "/v1/query" and method == "POST":
            return "/v1/query", self._query, ()
        if path == "/v1/explain" and method == "GET":
            return "/v1/explain", self._explain, ()
        if path == "/v1/cursor" and method == "POST":
            return "/v1/cursor", self._cursor_open, ()
        if len(parts) == 3 and parts[:2] == ["v1", "cursor"]:
            if method == "GET":
                return "/v1/cursor/{id}", self._cursor_describe, (parts[2],)
            if method == "DELETE":
                return "/v1/cursor/{id}", self._cursor_close, (parts[2],)
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "cursor"]
            and parts[3] == "next"
            and method == "GET"
        ):
            return "/v1/cursor/{id}/next", self._cursor_next, (parts[2],)
        return path, None, ()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _deadline_ms(
        self, request: HttpRequest, payload: dict | None = None
    ) -> int | None:
        """The request's effective deadline, validated and clamped."""
        raw: object | None = None
        if payload is not None and "deadline_ms" in payload:
            raw = payload["deadline_ms"]
        elif "deadline_ms" in request.query:
            raw = request.query["deadline_ms"]
        if raw is None:
            return self.config.default_deadline_ms
        try:
            deadline = int(raw)
        except (TypeError, ValueError):
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_deadline",
                f"deadline_ms must be a positive integer, got {raw!r}",
            ) from None
        if deadline < 1:
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_deadline",
                f"deadline_ms must be at least 1, got {deadline}",
            )
        return min(deadline, self.config.max_deadline_ms)

    async def _bounded(self, awaitable, deadline_ms: int | None):
        """Await under the deadline; expiry is a 504 envelope.

        The awaited engine call runs on the facade's pool;
        cancellation here abandons the await, and the pool thread
        winds down on its own — per-request sessions mean that
        orphaned work cannot corrupt any other request's state.
        """
        if deadline_ms is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, deadline_ms / 1e3)
        except asyncio.TimeoutError:
            raise ServingError(
                HTTPStatus.GATEWAY_TIMEOUT,
                "deadline_exceeded",
                f"request exceeded its deadline of {deadline_ms} ms",
                details={"deadline_ms": deadline_ms},
            ) from None

    @staticmethod
    def _serialise_result(answer: object) -> dict:
        """A TopKResult or QueryAnswer as the wire answer shape."""
        result = answer if isinstance(answer, TopKResult) else answer.result
        payload = {
            "k": result.k,
            "algorithm": result.algorithm,
            "items": [
                {"obj": item.obj, "grade": item.grade}
                for item in result.items
            ],
            "stats": {
                "sorted": result.stats.sorted_cost,
                "random": result.stats.random_cost,
                "total": result.stats.sum_cost,
            },
        }
        guarantee = getattr(result, "guarantee", None)
        if guarantee is not None:
            payload["guarantee"] = guarantee.as_dict()
        plan = getattr(answer, "plan", None)
        if plan is not None:
            payload["plan"] = plan.explain()
        return payload

    @staticmethod
    def _epsilon_from(payload: dict) -> float | None:
        """The request's ε, validated; None when absent."""
        raw = payload.get("epsilon")
        if raw is None:
            return None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_epsilon",
                f"epsilon must be a non-negative number, got {raw!r}",
            )
        try:
            return validate_epsilon(raw)
        except ValueError as exc:
            raise ServingError(
                HTTPStatus.BAD_REQUEST, "invalid_epsilon", str(exc)
            ) from None

    @staticmethod
    def _allow_partial_from(payload: dict) -> bool:
        raw = payload.get("allow_partial", False)
        if not isinstance(raw, bool):
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_request",
                f"allow_partial must be a boolean, got {raw!r}",
            )
        return raw

    def _spec_from(self, payload: dict) -> dict:
        """The query spec shared by /v1/query and /v1/cursor.

        Exactly one of ``query`` (a string, catalog-backed engines) or
        ``aggregation`` (a registered name, source-backed engines)
        selects the workload; the engine's own validation rejects a
        spec aimed at the wrong backing with a clear 400.
        """
        has_query = "query" in payload
        has_aggregation = "aggregation" in payload
        if has_query == has_aggregation:
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_request",
                "exactly one of 'query' (catalog-backed) or "
                "'aggregation' (source-backed) is required",
            )
        spec: dict = {}
        if has_query:
            query = payload["query"]
            if not isinstance(query, str):
                raise ServingError(
                    HTTPStatus.BAD_REQUEST,
                    "invalid_query",
                    f"query must be a string, got {type(query).__name__}",
                )
            spec["query"] = query
        else:
            spec["aggregation"] = resolve_aggregation(payload["aggregation"])
            spec["aggregation_name"] = payload["aggregation"]
        conjunction = payload.get("conjunction")
        if conjunction is not None and not isinstance(conjunction, str):
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_request",
                "conjunction must be a string",
            )
        spec["conjunction"] = conjunction
        return spec

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    async def _healthz(self, request: HttpRequest) -> HttpResponse:
        status = "draining" if self._draining else "ok"
        payload = {
            "status": status,
            "version": __version__,
            "uptime_s": self.metrics.snapshot()["uptime_s"],
        }
        sharded = self.engine.sharding
        if sharded is not None:
            # Liveness of the worker-process pool, not just this
            # interpreter: pool_health pings every pool (off the event
            # loop — it blocks on worker round-trips) and never raises.
            health = await asyncio.get_running_loop().run_in_executor(
                None, sharded.pool_health
            )
            payload["workers"] = {
                "shards": sharded.num_shards,
                **health,
            }
            if not self._draining and health["alive"] < health["processes"]:
                payload["status"] = "degraded"
        return json_response(
            payload,
            HTTPStatus.SERVICE_UNAVAILABLE if self._draining else HTTPStatus.OK,
        )

    async def _metrics(self, request: HttpRequest) -> HttpResponse:
        try:
            engine_metrics = await self.async_engine.metrics_snapshot()
        except ReproError:
            # Post-drain scrape: the facade is closed but the ledger
            # is still a plain locked read.
            engine_metrics = self.engine.metrics_snapshot()
        return json_response(
            {
                "server": self.metrics.snapshot(),
                "admission": self.admission.snapshot(),
                "cursors": self.sessions.snapshot(),
                "engine": engine_metrics,
            }
        )

    async def _query(self, request: HttpRequest) -> HttpResponse:
        payload = request.json_object()
        spec = self._spec_from(payload)
        k = payload.get("k")
        strategy = payload.get("strategy")
        if strategy is not None and not isinstance(strategy, str):
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_strategy",
                "strategy must be a registry name string",
            )
        epsilon = self._epsilon_from(payload)
        allow_partial = self._allow_partial_from(payload)
        deadline_ms = self._deadline_ms(request, payload)
        if allow_partial and strategy is not None:
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_request",
                "allow_partial pages through the anytime cursor, which "
                "cannot honour a forced strategy; drop one of the two",
            )
        if (
            allow_partial
            and deadline_ms is not None
            # Sharded backings have no paging cursors to stop early —
            # the query either completes in time or maps to 504 as
            # without the flag.
            and self.engine.sharding is None
        ):
            return await self._query_partial(spec, k, epsilon, deadline_ms)
        async with self.admission.admit():
            result = await self._bounded(
                self.async_engine.top_k(
                    spec.get("query", spec.get("aggregation")),
                    k=k,
                    strategy=strategy,
                    conjunction=spec["conjunction"],
                    epsilon=epsilon,
                ),
                deadline_ms,
            )
        return json_response(self._serialise_result(result))

    async def _query_partial(
        self, spec: dict, k: int | None, epsilon: float | None, deadline_ms: int
    ) -> HttpResponse:
        """The anytime path: page under the deadline, certify what landed.

        The k answers are pulled as cursor pages, each page awaited
        against the *remaining* budget. Completing every page is the
        exact answer; expiring with pages in hand is a **200** partial
        answer whose ``guarantee`` block is read from the last
        *collected* page — never from the live cursor, whose bounds an
        orphaned in-flight page could still tighten after the timeout,
        which would be unsound for the smaller item set actually
        returned. Expiring with nothing is the plain 504.
        """
        want = self.engine.context.default_k if k is None else k
        if isinstance(want, bool) or not isinstance(want, int) or want < 1:
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_k",
                f"k must be a positive integer, got {want!r}",
            )
        page_size = max(1, -(-want // 8))
        cursor = self.async_engine.cursor(
            spec.get("query", spec.get("aggregation")),
            conjunction=spec["conjunction"],
            page_size=page_size,
            epsilon=epsilon,
        )
        loop = asyncio.get_running_loop()
        budget_end = loop.time() + deadline_ms / 1e3
        pages: list[TopKResult] = []
        fetched = 0
        timed_out = False
        async with self.admission.admit():
            while fetched < want:
                budget = budget_end - loop.time()
                if budget <= 0:
                    timed_out = True
                    break
                try:
                    page = await asyncio.wait_for(
                        cursor.next_k(min(page_size, want - fetched)),
                        budget,
                    )
                except asyncio.TimeoutError:
                    timed_out = True
                    break
                pages.append(page)
                fetched += len(page.items)
        if timed_out and not pages:
            raise ServingError(
                HTTPStatus.GATEWAY_TIMEOUT,
                "deadline_exceeded",
                f"request exceeded its deadline of {deadline_ms} ms "
                "before any page completed",
                details={"deadline_ms": deadline_ms, "allow_partial": True},
            )
        items = [item for page in pages for item in page.items]
        stats = pages[0].stats
        for page in pages[1:]:
            stats = stats + page.stats
        last = pages[-1]
        guarantee = (
            last.guarantee.as_dict()
            if last.guarantee is not None
            else {"kind": "anytime", "epsilon": 0.0}
        )
        payload = {
            "k": want,
            "algorithm": last.algorithm,
            "items": [
                {"obj": item.obj, "grade": item.grade} for item in items
            ],
            "stats": {
                "sorted": stats.sorted_cost,
                "random": stats.random_cost,
                "total": stats.sum_cost,
            },
            "partial": timed_out,
            "guarantee": (
                guarantee
                if timed_out
                # Every page landed: the prefix is the complete exact
                # top-k, and the envelope says so.
                else {"kind": "exact", "epsilon": 0.0}
            ),
        }
        if timed_out:
            payload["deadline_ms"] = deadline_ms
            certified = last.details.get("certified")
            if certified is not None:
                payload["bounds"] = certified
        return json_response(payload)

    async def _explain(self, request: HttpRequest) -> HttpResponse:
        query = request.query.get("query")
        if not query:
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_request",
                "explain requires a ?query= parameter",
            )
        conjunction = request.query.get("conjunction")
        deadline_ms = self._deadline_ms(request)
        async with self.admission.admit():
            explanation = await self._bounded(
                self.async_engine.explain(query, conjunction), deadline_ms
            )
        return json_response({"query": query, "explain": explanation})

    async def _cursor_open(self, request: HttpRequest) -> HttpResponse:
        payload = request.json_object()
        spec = self._spec_from(payload)
        page_size = payload.get("page_size")
        if page_size is not None and (
            not isinstance(page_size, int)
            or isinstance(page_size, bool)
            or page_size < 1
        ):
            raise ServingError(
                HTTPStatus.BAD_REQUEST,
                "invalid_page_size",
                f"page_size must be a positive integer, got {page_size!r}",
            )
        epsilon = self._epsilon_from(payload)
        # Opening is lazy (no subsystem work until the first page), so
        # no admission slot is needed — but the session *bound* is
        # enforced here, where the resource is allocated.
        cursor = self.async_engine.cursor(
            spec.get("query", spec.get("aggregation")),
            conjunction=spec["conjunction"],
            page_size=page_size,
            epsilon=epsilon,
        )
        wire_spec = {
            key: value
            for key, value in (
                ("query", spec.get("query")),
                ("aggregation", spec.get("aggregation_name")),
                ("conjunction", spec.get("conjunction")),
                ("page_size", page_size),
                ("epsilon", epsilon),
            )
            if value is not None
        }
        session = self.sessions.create(cursor, wire_spec)
        return json_response(
            {
                "cursor_id": session.id,
                "ttl_s": session.ttl_s,
                "spec": wire_spec,
                "next": f"/v1/cursor/{session.id}/next",
            },
            HTTPStatus.CREATED,
        )

    async def _cursor_next(
        self, request: HttpRequest, cursor_id: str
    ) -> HttpResponse:
        session = self.sessions.get(cursor_id)
        k: int | None = None
        if "k" in request.query:
            try:
                k = int(request.query["k"])
            except ValueError:
                raise ServingError(
                    HTTPStatus.BAD_REQUEST,
                    "invalid_k",
                    f"k must be an integer, got {request.query['k']!r}",
                ) from None
        deadline_ms = self._deadline_ms(request)
        remaining = session.cursor.remaining
        if remaining is not None and remaining <= 0:
            return json_response(
                {
                    "cursor_id": cursor_id,
                    "items": [],
                    "done": True,
                    "remaining": 0,
                    "pages_fetched": session.cursor.pages_fetched,
                    "answers_fetched": session.cursor.answers_fetched,
                }
            )
        if remaining is not None and k is not None:
            k = min(k, remaining)
        async with self.admission.admit():
            page = await self._bounded(session.cursor.next_k(k), deadline_ms)
        session.pages_served += 1
        remaining = session.cursor.remaining
        envelope = {
            "cursor_id": cursor_id,
            "items": [
                {"obj": item.obj, "grade": item.grade}
                for item in page.items
            ],
            "stats": {
                "sorted": page.stats.sorted_cost,
                "random": page.stats.random_cost,
            },
            "done": remaining is not None and remaining <= 0,
            "remaining": remaining,
            "pages_fetched": session.cursor.pages_fetched,
            "answers_fetched": session.cursor.answers_fetched,
        }
        # The anytime certificate as of *this* page: the guarantee plus
        # the live bound state its threshold was read from.
        if page.guarantee is not None:
            envelope["guarantee"] = page.guarantee.as_dict()
        certified = page.details.get("certified")
        if certified is not None:
            envelope["bounds"] = certified
        return json_response(envelope)

    async def _cursor_describe(
        self, request: HttpRequest, cursor_id: str
    ) -> HttpResponse:
        session = self.sessions.get(cursor_id)
        return json_response(session.describe(time.monotonic()))

    async def _cursor_close(
        self, request: HttpRequest, cursor_id: str
    ) -> HttpResponse:
        session = self.sessions.close(cursor_id)
        return json_response(
            {"closed": session.describe(time.monotonic())}
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def shutdown(self, grace_s: float | None = None) -> dict:
        """Graceful drain: refuse new work, finish in-flight, close.

        Returns a summary dict (used by the CLI's exit log and the
        integration tests). Idempotent.
        """
        if self._drained.is_set():
            return {"already_drained": True}
        self._draining = True
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        forced = False
        try:
            await asyncio.wait_for(self.admission.drain(), grace)
        except asyncio.TimeoutError:
            forced = True
        cursors_closed = self.sessions.drain()
        await self.async_engine.aclose()
        self._drained.set()
        return {
            "forced": forced,
            "cursors_closed": cursors_closed,
            "requests_total": self.metrics.snapshot()["requests_total"],
        }
