"""The asyncio HTTP/1.1 transport: sockets in, ServingApp in the middle.

Stdlib only — ``asyncio.start_server`` plus a small, strict HTTP/1.1
request reader. Strict is the point: the server speaks exactly what
the protocol needs (JSON bodies, keep-alive, Content-Length framing)
and rejects everything else with enveloped errors rather than
guessing. Chunked uploads, continuations, and multi-line headers are
out of scope for an engine API and answered with 400/501.

Lifecycle::

    server = ServingServer(app, config)
    await server.start()           # bound; server.port is real
    await server.serve_forever()   # until shutdown() or signal

``shutdown()`` stops accepting, lets the app drain (admission slots
empty, cursor sessions closed, engine facade closed), then closes
lingering connections. The CLI installs SIGINT/SIGTERM handlers that
call it, so a composed deployment stops cleanly.
"""

from __future__ import annotations

import asyncio
from http import HTTPStatus
from urllib.parse import parse_qsl, unquote, urlsplit

from repro import __version__
from repro.serving.app import ServingApp
from repro.serving.config import ServingConfig
from repro.serving.protocol import HttpRequest, HttpResponse, ServingError, error_response

__all__ = ["ServingServer"]

#: Request head (request line + headers) size cap.
_MAX_HEAD_BYTES = 16 * 1024


class _ProtocolViolation(Exception):
    """A malformed request head; carries the response to send."""

    def __init__(self, response: HttpResponse) -> None:
        super().__init__(response.reason)
        self.response = response


def _violation(status: HTTPStatus, code: str, message: str) -> _ProtocolViolation:
    return _ProtocolViolation(error_response(ServingError(status, code, message)))


class ServingServer:
    """One :class:`ServingApp` bound to a TCP socket."""

    def __init__(self, app: ServingApp, config: ServingConfig | None = None) -> None:
        self.app = app
        self.config = config or app.config
        self._server: asyncio.base_events.Server | None = None
        self._sweeper: asyncio.Task | None = None
        self._shutdown_requested = asyncio.Event()
        self._shutdown_summary: dict | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`; supports
        ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ServingServer":
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._sweeper = asyncio.create_task(
            self._sweep_cursors(), name="repro-serving-sweeper"
        )
        return self

    async def serve_forever(self) -> dict:
        """Serve until :meth:`shutdown` is requested; returns its summary."""
        await self._shutdown_requested.wait()
        return self._shutdown_summary or {}

    async def shutdown(self, grace_s: float | None = None) -> dict:
        """Stop accepting, drain the app, close the socket. Idempotent."""
        if self._shutdown_summary is not None:
            return self._shutdown_summary
        server = self._server
        if server is not None:
            server.close()  # stop accepting; live connections continue
        if self._sweeper is not None:
            self._sweeper.cancel()
        summary = await self.app.shutdown(grace_s)
        if server is not None:
            await server.wait_closed()
        self._shutdown_summary = summary
        self._shutdown_requested.set()
        return summary

    async def _sweep_cursors(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.sweep_interval_s)
                self.app.sessions.evict_expired()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        self.config.request_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: just close
                except _ProtocolViolation as exc:
                    await self._write_response(writer, exc.response, close=True)
                    break
                if request is None:
                    break  # clean EOF between requests
                response = await self.app.handle(request)
                close = (
                    request.headers.get("connection", "").lower() == "close"
                )
                await self._write_response(writer, response, close=close)
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to clean beyond the socket
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> HttpRequest | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF: keep-alive peer closed
            raise _violation(
                HTTPStatus.BAD_REQUEST, "truncated_request",
                "connection closed mid-request",
            ) from None
        except asyncio.LimitOverrunError:
            raise _violation(
                HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE, "head_too_large",
                f"request head exceeds {_MAX_HEAD_BYTES} bytes",
            ) from None
        if len(head) > _MAX_HEAD_BYTES:
            raise _violation(
                HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE, "head_too_large",
                f"request head exceeds {_MAX_HEAD_BYTES} bytes",
            )
        try:
            request_line, *header_lines = head[:-4].decode("latin-1").split("\r\n")
            method, target, http_version = request_line.split(" ", 2)
        except ValueError:
            raise _violation(
                HTTPStatus.BAD_REQUEST, "malformed_request_line",
                "expected 'METHOD /path HTTP/1.x'",
            ) from None
        if http_version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _violation(
                HTTPStatus.HTTP_VERSION_NOT_SUPPORTED, "bad_http_version",
                f"unsupported {http_version!r}",
            )
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name or name != name.strip():
                raise _violation(
                    HTTPStatus.BAD_REQUEST, "malformed_header",
                    f"malformed header line {line!r}",
                )
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding"):
            raise _violation(
                HTTPStatus.NOT_IMPLEMENTED, "chunked_unsupported",
                "chunked request bodies are not supported; "
                "send Content-Length",
            )
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
                if length < 0:
                    raise ValueError
            except ValueError:
                raise _violation(
                    HTTPStatus.BAD_REQUEST, "bad_content_length",
                    f"invalid Content-Length {headers['content-length']!r}",
                ) from None
            if length > self.config.max_body_bytes:
                raise _violation(
                    HTTPStatus.REQUEST_ENTITY_TOO_LARGE, "body_too_large",
                    f"body of {length} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit",
                )
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    raise _violation(
                        HTTPStatus.BAD_REQUEST, "truncated_body",
                        "connection closed mid-body",
                    ) from None
        split = urlsplit(target)
        query = {
            key: value for key, value in parse_qsl(split.query, keep_blank_values=True)
        }
        return HttpRequest(
            method=method.upper(),
            path=unquote(split.path) or "/",
            query=query,
            headers=headers,
            body=body,
        )

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, response: HttpResponse, *, close: bool
    ) -> None:
        head_lines = [
            f"HTTP/1.1 {response.status} {response.reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(response.body)}",
            f"Server: repro-serving/{__version__}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        head_lines.extend(f"{name}: {value}" for name, value in response.headers)
        writer.write(
            ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
            + response.body
        )
        await writer.drain()
