"""RPR001 — determinism: replay-scoped code reads no entropy.

PR 8's contract (DESIGN.md "Adaptive planning"): adaptive decisions
are a pure function of the query sequence, so replays are
bit-identical; PR 9 extended the same promise to certified results.
The scoped modules — ``algorithms/``, ``engine/adaptive.py``,
``core/certify.py`` — therefore must not read wall-clock time, global
random state, OS entropy, or anything else that varies run to run.

Flagged:

* wall-clock reads: ``time.time/monotonic/perf_counter/…`` (and their
  ``_ns`` variants), ``datetime.now/utcnow/today``;
* global or unseeded randomness: any ``random.<fn>()`` on the module's
  shared state, ``random.Random()`` with no seed, ``SystemRandom``,
  ``numpy.random.<legacy fn>``, ``numpy.random.default_rng()`` with no
  seed, ``os.urandom``, ``uuid.uuid1/uuid4``, anything in ``secrets``;
* hash-order-dependent iteration: a ``for`` loop or comprehension
  driven directly by a set display or ``set(…)``/``frozenset(…)``
  call — set iteration order depends on ``PYTHONHASHSEED``.

Allowed without comment: ``random.Random(seed)`` *with* a seed and
``numpy.random.default_rng(seed)`` — deterministic by construction.
Telemetry-only call sites are waived via the config's
``allow-within`` qualname globs (e.g. a calibration observer that is
*handed* an elapsed time but never reads the clock itself).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator

from repro.devtools.config import RuleConfig
from repro.devtools.findings import Finding
from repro.devtools.visitor import ModuleInfo, Rule, iter_with_symbol

__all__ = ["DeterminismRule"]

_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "thread_time",
    "thread_time_ns", "localtime", "gmtime",
}
_DATETIME_FNS = {"now", "utcnow", "today"}
_UUID_FNS = {"uuid1", "uuid4"}
#: numpy.random functions that are deterministic given an explicit seed.
_NP_SEEDED_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "MT19937"}


def _has_seed(call: ast.Call) -> bool:
    return bool(call.args) or bool(call.keywords)


class DeterminismRule(Rule):
    rule_id = "RPR001"
    summary = (
        "replay-scoped code must not read wall-clock, global randomness, "
        "OS entropy, or set iteration order"
    )
    default_paths = (
        "repro/algorithms/",
        "repro/engine/adaptive.py",
        "repro/core/certify.py",
    )

    def check(
        self, module: ModuleInfo, config: RuleConfig
    ) -> Iterator[Finding]:
        for node, symbol, _classes in iter_with_symbol(module.tree):
            if any(fnmatchcase(symbol, pat) for pat in config.allow_within):
                continue
            if isinstance(node, ast.Call):
                message = self._classify_call(module, node)
                if message is not None:
                    yield self.finding(module, node, message, symbol)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(
                    module, node.iter, symbol
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iteration(
                        module, gen.iter, symbol
                    )

    # ------------------------------------------------------------------

    def _classify_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> str | None:
        target = module.resolve_call(call.func)
        if target is None:
            return None
        head, _, tail = target.partition(".")
        if head == "time" and tail in _TIME_FNS:
            return (
                f"wall-clock read `{target}()` in replay-scoped code — "
                "decisions must be a pure function of the query sequence"
            )
        if head == "datetime" and target.rsplit(".", 1)[-1] in _DATETIME_FNS:
            return f"wall-clock read `{target}()` in replay-scoped code"
        if target == "os.urandom":
            return "`os.urandom()` reads OS entropy — not replayable"
        if head == "secrets":
            return f"`{target}()` reads OS entropy — not replayable"
        if head == "uuid" and tail in _UUID_FNS:
            return (
                f"`{target}()` derives from clock/entropy — not replayable"
            )
        if target == "random.Random":
            if _has_seed(call):
                return None  # seeded Random is deterministic
            return (
                "`random.Random()` without a seed draws from OS entropy — "
                "pass an explicit seed"
            )
        if target in ("random.SystemRandom", "secrets.SystemRandom"):
            return "`SystemRandom` reads OS entropy — not replayable"
        if head == "random" and tail:
            return (
                f"`{target}()` uses the process-global random state — "
                "thread a seeded `random.Random` through instead"
            )
        if target.startswith("numpy.random."):
            fn = target.rsplit(".", 1)[-1]
            if fn in _NP_SEEDED_OK:
                if _has_seed(call):
                    return None
                return (
                    f"`{target}()` without a seed draws from OS entropy — "
                    "pass an explicit seed"
                )
            return (
                f"`{target}()` uses numpy's global random state — "
                "use a seeded `numpy.random.default_rng` instead"
            )
        return None

    def _check_iteration(
        self, module: ModuleInfo, iter_node: ast.AST, symbol: str
    ) -> Iterator[Finding]:
        if isinstance(iter_node, ast.Set) or (
            isinstance(iter_node, ast.SetComp)
        ):
            yield self.finding(
                module, iter_node,
                "iteration over a set display is hash-order-dependent — "
                "sort it or use a sequence",
                symbol,
            )
            return
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ):
            callee = iter_node.func.id
            if callee in ("set", "frozenset") and callee not in (
                module.from_imports
            ) and callee not in module.module_aliases:
                yield self.finding(
                    module, iter_node,
                    f"iteration over `{callee}(…)` is hash-order-"
                    "dependent — wrap it in `sorted(…)` or keep a list",
                    symbol,
                )
