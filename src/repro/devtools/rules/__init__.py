"""The shipped rule pack.

One module per rule; each encodes one invariant a previous PR
introduced by convention (see DESIGN.md "Static contracts" for the
rule-by-rule history). ``ALL_RULES`` is the registry the driver and
the config defaults iterate — adding a rule means adding a module and
one entry here.
"""

from __future__ import annotations

from repro.devtools.rules.determinism import DeterminismRule
from repro.devtools.rules.immutability import StoreImmutabilityRule
from repro.devtools.rules.ledger import LedgerAccountingRule
from repro.devtools.rules.locks import LockDisciplineRule
from repro.devtools.rules.spawn import SpawnSafetyRule
from repro.devtools.visitor import Rule

__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "LedgerAccountingRule",
    "LockDisciplineRule",
    "SpawnSafetyRule",
    "StoreImmutabilityRule",
]

ALL_RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    LockDisciplineRule(),
    LedgerAccountingRule(),
    SpawnSafetyRule(),
    StoreImmutabilityRule(),
)
