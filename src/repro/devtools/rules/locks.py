"""RPR002 — lock discipline: guarded state stays guarded.

PR 5's concurrency model (DESIGN.md): shared mutable state lives
behind an owning lock, and every *write* happens inside ``with
self._lock:``. The subtle regression this rule exists for is the
attribute that is guarded in nine methods and silently bare in the
tenth — exactly the kind of miss a review skims past.

For every class that mints a lock (``self.X = threading.Lock()`` /
``RLock()`` in any method), the rule partitions its plain attribute
assignments (``self.attr = …`` / ``self.attr += …``) into
lock-guarded and unguarded sites. An attribute with sites in *both*
partitions gets a finding at each unguarded site.

Deliberately out of scope (precision over recall):

* ``__init__``/``__new__`` — construction happens-before sharing;
* methods named ``*_locked`` — the documented caller-holds-the-lock
  convention;
* container mutation through an attribute (``self._cache[k] = v``) —
  guarded-call-chain analysis would need flow information; the plain
  rebinding case is the one that corrupts snapshots in practice.

A read path that is intentionally lock-free (e.g. a monotonic counter
peeked for telemetry) is waived with an inline
``# repro: allow[RPR002] reason`` at the assignment site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.config import RuleConfig
from repro.devtools.findings import Finding
from repro.devtools.visitor import ModuleInfo, Rule, dotted_name

__all__ = ["LockDisciplineRule"]

_EXEMPT_METHODS = {"__init__", "__new__"}
_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}


def _first_param(method: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """The receiver parameter name, or None for static/classmethods.

    A classmethod's ``cls`` is not an instance receiver: attribute
    stores on locals (even one *named* ``self``) inside it are
    unpublished construction state, which this rule must not flag.
    """
    for deco in method.decorator_list:
        name = dotted_name(deco)
        if name in ("staticmethod", "classmethod"):
            return None
    args = method.args
    if args.posonlyargs:
        return args.posonlyargs[0].arg
    if args.args:
        return args.args[0].arg
    return None


def _is_lock_mint(module: ModuleInfo, value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    target = module.resolve_call(value.func)
    if target in _LOCK_FACTORIES:
        return True
    # Unresolved bare names Lock()/RLock() imported via star imports.
    name = dotted_name(value.func)
    return name in ("Lock", "RLock")


def _self_attr(node: ast.AST, self_name: str = "self") -> str | None:
    """``attr`` when the node is exactly ``<self_name>.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


class _AssignmentCollector(ast.NodeVisitor):
    """Walk one method, tracking whether we're under ``with self.<lock>``.

    ``self_name`` is the method's *actual* first parameter — in a
    classmethod a variable named ``self`` is a plain local (e.g. an
    alternate constructor minting an unpublished instance), and its
    attributes are construction state, not shared state.
    """

    def __init__(self, lock_attrs: frozenset[str], self_name: str) -> None:
        self.lock_attrs = lock_attrs
        self.self_name = self_name
        self.depth = 0
        #: (attr name, node, guarded) triples.
        self.sites: list[tuple[str, ast.AST, bool]] = []

    def _guards(self, item: ast.withitem) -> bool:
        attr = _self_attr(item.context_expr, self.self_name)
        return attr is not None and attr in self.lock_attrs

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        guarded = any(self._guards(item) for item in node.items)
        for item in node.items:
            self.visit(item)
        if guarded:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self.depth -= 1

    def _record(self, target: ast.AST) -> None:
        attr = _self_attr(target, self.self_name)
        if attr is not None and attr not in self.lock_attrs:
            self.sites.append((attr, target, self.depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        # Only plain `self.attr = …` rebinds (incl. tuple unpacking);
        # container mutation through an attribute is documented out of
        # scope — see the module docstring.
        stack = list(node.targets)
        while stack:
            target = stack.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
            elif isinstance(target, ast.Starred):
                stack.append(target.value)
            else:
                self._record(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target)
            self.visit(node.value)


class LockDisciplineRule(Rule):
    rule_id = "RPR002"
    summary = (
        "attributes of a lock-owning class must not be assigned both "
        "inside and outside `with self._lock:`"
    )
    default_paths = ("repro/",)

    def check(
        self, module: ModuleInfo, config: RuleConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            child
            for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = set()
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_mint(
                    module, node.value
                ):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            lock_attrs.add(attr)
        if not lock_attrs:
            return
        guarded_attrs: set[str] = set()
        unguarded: list[tuple[str, ast.AST, str]] = []
        for method in methods:
            if method.name in _EXEMPT_METHODS or method.name.endswith(
                "_locked"
            ):
                continue
            self_name = _first_param(method)
            if self_name is None:
                continue  # static/zero-arg: no instance to guard
            collector = _AssignmentCollector(frozenset(lock_attrs), self_name)
            for stmt in method.body:
                collector.visit(stmt)
            symbol = f"{cls.name}.{method.name}"
            for attr, node, is_guarded in collector.sites:
                if is_guarded:
                    guarded_attrs.add(attr)
                else:
                    unguarded.append((attr, node, symbol))
        for attr, node, symbol in unguarded:
            if attr in guarded_attrs:
                yield self.finding(
                    module, node,
                    f"`self.{attr}` is assigned under `with self.<lock>:` "
                    "elsewhere in this class but bare here — guard it or "
                    "waive with a reason",
                    symbol,
                )
