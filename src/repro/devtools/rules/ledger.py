"""RPR003 — ledger accounting: every access is charged.

The paper's cost model *is* the access count: Theorem 5.3 bounds the
number of sorted/random accesses, and every gate in
``BENCH_topk.json`` compares those counts bit-for-bit. The charging
point is :class:`repro.access.source.InstrumentedSource` — sessions
hand algorithms instrumented sources, so ``next_sorted`` /
``sorted_access_batch`` / ``random_access`` / ``random_access_many``
decompose into ``AccessStats`` entries by construction.

This rule flags the access paths that dodge that wrapper:

* access methods on a **freshly minted raw source** —
  ``MaterializedSource(…).next_sorted()`` or through a local bound to
  one (``src = MaterializedSource(…); src.random_access(o)``) — raw
  mints never charge;
* access methods on ``self.<attr>`` in a class that is **not itself a
  source wrapper** (an algorithm or executor squirrelling away a raw
  source and probing it off-ledger). Wrappers — classes whose base
  names mention ``Source`` — legitimately delegate to ``self._inner``
  and are exempt; they *are* the access layer.

Receivers that are parameters or session lookups
(``sources[i].sorted_access_batch(n)``,
``session.sources[j].random_access(obj)``) are the sanctioned path and
never flagged. The access package itself is excluded — it is the
implementation being protected.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.config import RuleConfig
from repro.devtools.findings import Finding
from repro.devtools.visitor import (
    ModuleInfo,
    Rule,
    dotted_name,
    iter_with_symbol,
    root_name,
)

__all__ = ["LedgerAccountingRule"]


def _is_access_method(name: str) -> bool:
    return (
        name == "next_sorted"
        or name.startswith("sorted_access")
        or name.startswith("random_access")
    )


def _is_raw_source_mint(node: ast.AST) -> bool:
    """A call expression that mints an uninstrumented source."""
    if not isinstance(node, ast.Call):
        return False
    callee = dotted_name(node.func)
    if callee is None:
        return False
    last = callee.rsplit(".", 1)[-1]
    if last == "trusted":  # MaterializedSource.trusted fast-path mint
        return "Source" in callee
    return last.endswith("Source") and last != "InstrumentedSource"


def _receiver_mints_raw_source(receiver: ast.AST) -> bool:
    return any(_is_raw_source_mint(sub) for sub in ast.walk(receiver))


def _class_is_source_wrapper(classes: tuple[ast.ClassDef, ...]) -> bool:
    if not classes:
        return False
    cls = classes[-1]
    for base in cls.bases:
        name = dotted_name(base)
        if name is not None and "Source" in name:
            return True
    return False


def _local_raw_source_names(
    tree: ast.Module,
) -> dict[tuple[int, int], set[str]]:
    """Per-function-span sets of local names bound to raw source mints."""
    spans: dict[tuple[int, int], set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        names: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and _is_raw_source_mint(sub.value):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        if names:
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            spans[(node.lineno, end)] = names
    return spans


class LedgerAccountingRule(Rule):
    rule_id = "RPR003"
    summary = (
        "sorted/random accesses must go through instrumented session "
        "sources so AccessStats charges them"
    )
    default_paths = (
        "repro/algorithms/",
        "repro/engine/",
        "repro/middleware/",
        "repro/serving/",
        "repro/analysis/",
    )
    default_exclude = ("repro/access/",)

    def check(
        self, module: ModuleInfo, config: RuleConfig
    ) -> Iterator[Finding]:
        raw_locals = _local_raw_source_names(module.tree)
        for node, symbol, classes in iter_with_symbol(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not _is_access_method(func.attr):
                continue
            receiver = func.value
            if _receiver_mints_raw_source(receiver):
                yield self.finding(
                    module, node,
                    f"`{func.attr}` on a freshly minted raw source — raw "
                    "mints bypass AccessStats; go through the session's "
                    "instrumented sources",
                    symbol,
                )
                continue
            root = root_name(receiver)
            if root == "self" and not _class_is_source_wrapper(classes):
                yield self.finding(
                    module, node,
                    f"`{func.attr}` on a stored `self.…` source in a "
                    "non-wrapper class — accesses here dodge the session "
                    "ledger; take sources from the session per query",
                    symbol,
                )
                continue
            if root is not None and isinstance(receiver, ast.Name):
                line = node.lineno
                for (start, end), names in raw_locals.items():
                    if start <= line <= end and root in names:
                        yield self.finding(
                            module, node,
                            f"`{func.attr}` on `{root}`, which this "
                            "function bound to a raw source mint — raw "
                            "mints bypass AccessStats",
                            symbol,
                        )
                        break
