"""RPR005 — store immutability: frozen columns stay frozen.

PR 5 made :class:`ColumnarScoringDatabase` an enforced shared
read-only object: numpy columns and rank orders are marked
non-writeable at mint time, so any thread can read them without a
lock. That whole concurrency story rests on nobody flipping the
write flag back on or scribbling into the arrays — numpy will happily
oblige, and the corruption surfaces queries later as silently wrong
grades.

Outside the columnar mint paths (``access/columnar.py`` is excluded —
it owns the freeze), this rule flags:

* ``arr.setflags(write=True)`` and ``arr.flags.writeable = True`` —
  un-freezing somebody else's array (``write=False`` is always fine);
* element stores, augmented stores, and in-place mutators (``fill``,
  ``put``, ``sort``, ``partition``, ``resize``) reaching through an
  attribute named in ``protected-attrs`` (default: ``_columns``,
  ``_orders`` — the store's frozen state).

A legitimate new mint path builds fresh arrays and freezes them
*before* publishing; it never needs to thaw a live store's columns.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.config import RuleConfig
from repro.devtools.findings import Finding
from repro.devtools.visitor import ModuleInfo, Rule, iter_with_symbol

__all__ = ["StoreImmutabilityRule"]

_INPLACE_MUTATORS = {"fill", "put", "sort", "partition", "resize", "itemset"}


def _is_truthy_const(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value)


def _chain_touches(node: ast.AST, protected: frozenset[str]) -> bool:
    """Does this attribute/subscript chain pass through a protected attr?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in protected:
            return True
    return False


class StoreImmutabilityRule(Rule):
    rule_id = "RPR005"
    summary = (
        "frozen columnar arrays must not be thawed or mutated outside "
        "the store's mint paths"
    )
    default_paths = ("repro/",)
    default_exclude = ("repro/access/columnar.py",)
    default_options = {"protected_attrs": ["_columns", "_orders"]}

    def check(
        self, module: ModuleInfo, config: RuleConfig
    ) -> Iterator[Finding]:
        protected = frozenset(
            str(name)
            for name in config.options.get(
                "protected_attrs", ["_columns", "_orders"]
            )
        )
        for node, symbol, _classes in iter_with_symbol(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, protected, symbol)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_store(
                        module, target, node.value, protected, symbol
                    )
            elif isinstance(node, ast.AugAssign):
                yield from self._check_store(
                    module, node.target, None, protected, symbol
                )

    def _check_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        protected: frozenset[str],
        symbol: str,
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "setflags":
            for kw in node.keywords:
                if kw.arg == "write" and _is_truthy_const(kw.value):
                    yield self.finding(
                        module, node,
                        "`setflags(write=True)` thaws a frozen array — "
                        "mint a fresh array instead of un-freezing a "
                        "shared one",
                        symbol,
                    )
            return
        if func.attr in _INPLACE_MUTATORS and _chain_touches(
            func.value, protected
        ):
            yield self.finding(
                module, node,
                f"in-place `{func.attr}(…)` on a protected column "
                "attribute — frozen store state must not be mutated",
                symbol,
            )

    def _check_store(
        self,
        module: ModuleInfo,
        target: ast.AST,
        value: ast.AST | None,
        protected: frozenset[str],
        symbol: str,
    ) -> Iterator[Finding]:
        # arr.flags.writeable = True (thawing; `= False` freezes and is fine)
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "writeable"
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "flags"
        ):
            if value is None or not isinstance(value, ast.Constant) or (
                bool(value.value)
            ):
                yield self.finding(
                    module, target,
                    "`.flags.writeable` set to a non-False value outside "
                    "the store's mint path — thawing a shared frozen "
                    "array is never allowed",
                    symbol,
                )
            return
        if isinstance(target, ast.Subscript) and _chain_touches(
            target.value, protected
        ):
            yield self.finding(
                module, target,
                "element store into a protected column attribute — "
                "frozen store state must not be mutated",
                symbol,
            )
