"""RPR004 — spawn safety: pool tasks must be module-level callables.

PR 7's sharding design runs workers under the ``spawn`` start method
(the fork-safety caveat in DESIGN.md "Sharded execution"): every task
submitted to a process pool is pickled in the coordinator and
unpickled in a worker that re-imports the module. Lambdas and nested
functions don't pickle at all; bound methods drag their whole instance
through the pipe (or fail on unpicklable state like pool handles).
The repo's convention is module-level probe functions in
``sharding/worker.py`` — this rule keeps it that way.

Within its scope (``sharding/`` by default), calls to pool dispatch
methods (``submit``/``map``/``apply_async``/…) are checked for a
first argument that is

* a ``lambda``,
* a function *defined inside the enclosing function* (closures don't
  survive pickling), or
* a bound method rooted at ``self``/``cls``,

unwrapping ``functools.partial(…)`` to judge the real callable.
Module-level functions — bare names or attributes on imported modules
(``_worker.run_probe_batch``) — pass.

Thread pools have no pickling constraint; if a scoped module mixes
executors, waive the thread-pool sites with
``# repro: allow[RPR004] thread pool — no pickling``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.config import RuleConfig
from repro.devtools.findings import Finding
from repro.devtools.visitor import (
    ModuleInfo,
    Rule,
    dotted_name,
    iter_with_symbol,
    root_name,
)

__all__ = ["SpawnSafetyRule"]

_SUBMIT_METHODS = {
    "submit", "map", "map_async", "apply", "apply_async",
    "starmap", "starmap_async", "imap", "imap_unordered",
}


def _nested_function_names(tree: ast.Module) -> dict[tuple[int, int], set[str]]:
    """Names of functions defined *inside* each function's span."""
    spans: dict[tuple[int, int], set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nested: set[str] = set()
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(sub.name)
        if nested:
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            spans[(node.lineno, end)] = nested
    return spans


class SpawnSafetyRule(Rule):
    rule_id = "RPR004"
    summary = (
        "callables submitted to process pools must be module-level "
        "(spawn workers unpickle them from a fresh import)"
    )
    default_paths = ("repro/sharding/",)

    def check(
        self, module: ModuleInfo, config: RuleConfig
    ) -> Iterator[Finding]:
        nested_spans = _nested_function_names(module.tree)
        for node, symbol, _classes in iter_with_symbol(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _SUBMIT_METHODS:
                continue
            if not node.args:
                continue
            task = self._unwrap_partial(module, node.args[0])
            message = self._classify(module, task, node.lineno, nested_spans)
            if message is not None:
                yield self.finding(
                    module, task,
                    f"`{func.attr}(…)` given {message} — spawn workers "
                    "unpickle tasks from a fresh module import; use a "
                    "module-level function",
                    symbol,
                )

    def _unwrap_partial(self, module: ModuleInfo, node: ast.AST) -> ast.AST:
        if isinstance(node, ast.Call):
            target = module.resolve_call(node.func)
            name = dotted_name(node.func)
            if target == "functools.partial" or name == "partial":
                if node.args:
                    return self._unwrap_partial(module, node.args[0])
        return node

    def _classify(
        self,
        module: ModuleInfo,
        task: ast.AST,
        line: int,
        nested_spans: dict[tuple[int, int], set[str]],
    ) -> str | None:
        if isinstance(task, ast.Lambda):
            return "a lambda"
        if isinstance(task, ast.Name):
            for (start, end), names in nested_spans.items():
                if start <= line <= end and task.id in names:
                    return f"the locally defined function `{task.id}`"
            return None
        if isinstance(task, ast.Attribute):
            root = root_name(task)
            if root in ("self", "cls"):
                return f"the bound method `{dotted_name(task)}`"
        return None
