"""The visitor core: parsed modules, symbol tracking, AST helpers.

Rules never touch the filesystem or :mod:`ast` parsing directly. The
driver parses each file once into a :class:`ModuleInfo` — source, AST,
import tables, pragma index — and every rule walks that. The helpers
here answer the questions all five shipped rules keep asking:

* what dotted name does this expression spell (``dotted_name``), and
  what module does it resolve to through the file's imports
  (``ModuleInfo.resolve_call``)?
* which function/class am I inside (``iter_with_symbol`` yields
  ``(node, qualname, class_stack)`` triples)?
* what name sits at the root of this attribute/subscript chain
  (``root_name``)?
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.devtools.config import RuleConfig
from repro.devtools.findings import MODULE_SYMBOL, Finding
from repro.devtools.pragmas import PragmaIndex

__all__ = [
    "ModuleInfo",
    "Rule",
    "dotted_name",
    "iter_with_symbol",
    "parse_module",
    "root_name",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> str | None:
    """The Name at the bottom of an attribute/subscript/call chain."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    return node.id if isinstance(node, ast.Name) else None


@dataclass(slots=True)
class ModuleInfo:
    """One parsed file plus the lookup tables rules share."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    #: local alias -> module dotted path (``import numpy as np``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name) (``from time import …``).
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    pragmas: PragmaIndex = field(default_factory=lambda: PragmaIndex([]))

    def resolve_call(self, func: ast.AST) -> str | None:
        """Canonical dotted target of a call through this file's imports.

        ``perf_counter()`` after ``from time import perf_counter``
        resolves to ``time.perf_counter``; ``np.random.rand()`` after
        ``import numpy as np`` to ``numpy.random.rand``. Returns None
        for receivers that are not import-rooted name chains.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.module_aliases:
            base = self.module_aliases[head]
            return f"{base}.{rest}" if rest else base
        if head in self.from_imports:
            module, original = self.from_imports[head]
            resolved = f"{module}.{original}" if module else original
            return f"{resolved}.{rest}" if rest else resolved
        return None

    def is_module_alias(self, name: str) -> bool:
        return name in self.module_aliases


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                info.module_aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.from_imports[local] = (module, alias.name)


def parse_module(path: Path, rel_path: str) -> ModuleInfo | Finding:
    """Parse one file; a DT001 finding when it cannot be parsed."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding("DT001", rel_path, 1, 0, f"cannot read file: {exc}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            "DT001", rel_path, exc.lineno or 1, exc.offset or 0,
            f"cannot parse file: {exc.msg}",
        )
    info = ModuleInfo(
        path=path,
        rel_path=rel_path,
        source=source,
        tree=tree,
        pragmas=PragmaIndex.from_source(source),
    )
    _collect_imports(info)
    return info


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def iter_with_symbol(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, str, tuple[ast.ClassDef, ...]]]:
    """Yield ``(node, enclosing symbol, enclosing class stack)``.

    The symbol is the qualname of the innermost function/class the
    node sits in (the def/class line itself belongs to the *enclosing*
    scope, matching how humans point at code).
    """

    def rec(
        node: ast.AST, symbol: str, classes: tuple[ast.ClassDef, ...]
    ) -> Iterator[tuple[ast.AST, str, tuple[ast.ClassDef, ...]]]:
        for child in ast.iter_child_nodes(node):
            yield child, symbol, classes
            if isinstance(child, _SCOPE_NODES):
                child_symbol = (
                    child.name
                    if symbol == MODULE_SYMBOL
                    else f"{symbol}.{child.name}"
                )
                child_classes = (
                    classes + (child,)
                    if isinstance(child, ast.ClassDef)
                    else classes
                )
                yield from rec(child, child_symbol, child_classes)
            else:
                yield from rec(child, symbol, classes)

    yield tree, MODULE_SYMBOL, ()
    yield from rec(tree, MODULE_SYMBOL, ())


class Rule:
    """Base class for contract rules.

    Subclasses set the identity/scoping class attributes and implement
    :meth:`check`. Registration happens in ``rules/__init__.py`` —
    importing a rule module has no side effects.
    """

    rule_id: str = ""
    #: One-line statement of the invariant (shown in ``--list-rules``).
    summary: str = ""
    #: Default path scopes (empty = the whole checked tree).
    default_paths: tuple[str, ...] = ()
    default_exclude: tuple[str, ...] = ()
    default_options: dict[str, object] = {}

    def check(
        self, module: ModuleInfo, config: RuleConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        symbol: str = MODULE_SYMBOL,
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )
