"""The contract checker driver and CLI.

``python -m repro.devtools.check [paths…]`` walks the given files and
directories (default ``src``), runs every scoped rule from
:mod:`repro.devtools.rules` over each parsed module, filters the raw
findings through inline pragmas and the TOML baseline, and reports
what survives.

Exit codes::

    0  clean (possibly via reason-annotated suppressions)
    1  findings (including stale suppressions and parse failures)
    2  usage or configuration error

``--format json`` emits a machine-readable report (the CI job uploads
it as an artifact on failure); ``--changed-only`` restricts the walk
to files touched in the working tree per ``git status`` — the fast
pre-commit loop; ``--list-rules`` prints the rule pack and scopes.

The meta-checks the driver itself adds:

``DT001``  file cannot be read or parsed
``DT002``  pragma without a reason (it suppressed nothing)
``DT003``  stale waiver: an unused pragma or baseline entry
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.devtools.config import CheckConfig, ConfigError
from repro.devtools.findings import Finding
from repro.devtools.rules import ALL_RULES
from repro.devtools.visitor import ModuleInfo, parse_module

__all__ = ["CheckResult", "main", "run_check"]

DEFAULT_CONFIG_NAME = "devtools.toml"


class CheckResult:
    """Findings plus enough bookkeeping to format a report."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.files_checked = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "clean": self.clean,
            "summary": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_text(self) -> str:
        lines = [f.format_text() for f in self.findings]
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in self.counts().items()
        )
        if self.findings:
            lines.append("")
            lines.append(
                f"{len(self.findings)} finding"
                f"{'s' if len(self.findings) != 1 else ''} "
                f"in {self.files_checked} files ({summary})"
            )
        else:
            lines.append(f"clean: {self.files_checked} files, 0 findings")
        return "\n".join(lines)


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _changed_files(root: Path) -> set[Path] | None:
    """Resolved paths of files modified per git; None when git fails."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--no-renames"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    changed: set[Path] = set()
    for line in proc.stdout.splitlines():
        if len(line) < 4 or line[:2] == "!!":
            continue
        name = line[3:].strip()
        if name.endswith(".py"):
            changed.add((root / name).resolve())
    return changed


def _relativize(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def run_check(
    paths: list[Path],
    config: CheckConfig,
    root: Path | None = None,
    changed_only: bool = False,
) -> CheckResult:
    """Run the rule pack; raises ConfigError for unusable inputs."""
    root = (root or Path.cwd()).resolve()
    for path in paths:
        if not path.exists():
            raise ConfigError(f"no such path: {path}")
    files = iter_python_files(paths)
    if changed_only:
        changed = _changed_files(root)
        if changed is None:
            raise ConfigError(
                "--changed-only needs a working `git status` in "
                f"{root}; run without it or fix the checkout"
            )
        files = [f for f in files if f.resolve() in changed]

    result = CheckResult()
    modules: list[ModuleInfo] = []
    for path in files:
        rel = _relativize(path, root)
        parsed = parse_module(path, rel)
        if isinstance(parsed, Finding):
            result.findings.append(parsed)
            continue
        modules.append(parsed)
    result.files_checked = len(files)

    for module in modules:
        for rule in ALL_RULES:
            rule_config = config.rule_config(rule.rule_id)
            if not rule_config.applies_to(module.rel_path):
                continue
            for finding in rule.check(module, rule_config):
                if module.pragmas.allows(finding.rule, finding.line):
                    continue
                if config.suppressed(
                    finding.rule, finding.path, finding.symbol
                ):
                    continue
                result.findings.append(finding)
        for pragma in module.pragmas.without_reason():
            result.findings.append(
                Finding(
                    "DT002", module.rel_path, pragma.line, 0,
                    "suppression pragma without a reason — "
                    "`# repro: allow[RPRxxx] <why>` (reasonless pragmas "
                    "suppress nothing)",
                )
            )
        for pragma in module.pragmas.unused():
            result.findings.append(
                Finding(
                    "DT003", module.rel_path, pragma.line, 0,
                    "stale pragma: suppressed nothing in this run — "
                    "remove it or fix the rule ids "
                    f"({', '.join(sorted(pragma.rules))})",
                )
            )
    if not changed_only:
        # A partial walk legitimately leaves baseline entries unused.
        for entry in config.stale_suppressions():
            result.findings.append(
                Finding(
                    "DT003", entry.path, 1, 0,
                    f"stale baseline entry: {entry.rule} at "
                    f"`{entry.symbol}` matched nothing — remove it",
                    symbol=entry.symbol,
                )
            )
    result.findings.sort(key=Finding.sort_key)
    return result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.check",
        description="AST contract checker for the repo's invariants "
        "(determinism, lock discipline, ledger accounting, spawn "
        "safety, store immutability).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config", default=None, metavar="TOML",
        help=f"config/baseline file (default: ./{DEFAULT_CONFIG_NAME} "
        "when present)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore any config file; run the built-in defaults",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="only check files modified per `git status` — the fast "
        "pre-commit loop (skips stale-baseline detection)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root for relative paths (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule pack and default scopes, then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.default_paths) or "(everywhere)"
            print(f"{rule.rule_id}  {rule.summary}")
            print(f"        scope: {scope}")
        return 0
    root = Path(args.root) if args.root else Path.cwd()
    config_path: Path | None = None
    if not args.no_config:
        if args.config is not None:
            config_path = Path(args.config)
        elif (root / DEFAULT_CONFIG_NAME).is_file():
            config_path = root / DEFAULT_CONFIG_NAME
    try:
        config = CheckConfig.load(config_path)
        result = run_check(
            [Path(p) for p in args.paths],
            config,
            root=root,
            changed_only=args.changed_only,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.format_text())
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
