"""Checker configuration: rule scopes, allowlists, and the baseline.

Everything is optional — the rule pack ships with the scopes DESIGN.md
documents — and a single TOML file (``devtools.toml`` at the repo
root by default) can override scopes, extend allowlists, and carry the
baseline/suppression entries::

    [rules.RPR001]
    paths = ["repro/algorithms/", "repro/engine/adaptive.py"]
    allow-within = ["CalibratedCostModel.observe"]

    [[suppressions]]
    rule = "RPR002"
    path = "src/repro/serving/metrics.py"
    symbol = "ServerMetrics.request_finished"
    reason = "prune runs on the snapshot thread only, measured 2026-08"

Suppressions match on ``(rule, path, symbol)`` so they survive line
shifts; ``reason`` is mandatory (a baseline entry is a documented
debt, not a mute button). Entries that match nothing in a full run are
reported as stale (``DT003``).

Path patterns are POSIX fragments matched on segment boundaries:
``repro/algorithms/`` scopes a package, ``repro/core/certify.py`` a
single file.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "CheckConfig",
    "ConfigError",
    "RuleConfig",
    "Suppression",
    "path_matches",
]


class ConfigError(Exception):
    """The TOML file exists but cannot be used."""


def path_matches(rel: str, pattern: str) -> bool:
    """Segment-anchored match of ``pattern`` against a relative path."""
    rel = rel.replace("\\", "/").strip("/")
    pattern = pattern.replace("\\", "/").strip("/")
    if not pattern:
        return False
    if pattern.endswith(".py"):
        return rel == pattern or rel.endswith("/" + pattern)
    padded = "/" + rel + "/"
    return padded.startswith("/" + pattern + "/") or (
        "/" + pattern + "/" in padded
    )


def path_in_any(rel: str, patterns: Iterable[str]) -> bool:
    return any(path_matches(rel, p) for p in patterns)


@dataclass(slots=True)
class RuleConfig:
    """Scope and knobs for one rule."""

    #: Path fragments the rule applies to; empty = everywhere.
    paths: tuple[str, ...] = ()
    #: Path fragments the rule never applies to.
    exclude: tuple[str, ...] = ()
    #: Enclosing-symbol globs whose findings are waived (telemetry
    #: call sites and similar — the documented escape hatch).
    allow_within: tuple[str, ...] = ()
    #: Rule-specific options (e.g. RPR005's protected attribute names).
    options: dict[str, object] = field(default_factory=dict)

    def applies_to(self, rel_path: str) -> bool:
        if self.paths and not path_in_any(rel_path, self.paths):
            return False
        return not path_in_any(rel_path, self.exclude)


@dataclass(slots=True)
class Suppression:
    """One baseline entry; matches on (rule, path, symbol)."""

    rule: str
    path: str
    symbol: str
    reason: str
    used: bool = field(default=False)

    def matches(self, rule: str, rel_path: str, symbol: str) -> bool:
        return (
            self.rule == rule
            and path_matches(rel_path, self.path)
            and self.symbol == symbol
        )


def _default_rule_configs() -> dict[str, RuleConfig]:
    # The shipped scopes; devtools.toml can override any entry.
    # Imported lazily to avoid a cycle (rules import config helpers).
    from repro.devtools.rules import ALL_RULES

    return {
        rule.rule_id: RuleConfig(
            paths=tuple(rule.default_paths),
            exclude=tuple(rule.default_exclude),
            options=dict(rule.default_options),
        )
        for rule in ALL_RULES
    }


class CheckConfig:
    """Merged defaults + TOML overrides + suppressions."""

    def __init__(
        self,
        rules: Mapping[str, RuleConfig] | None = None,
        suppressions: Iterable[Suppression] = (),
    ) -> None:
        self.rules = dict(rules) if rules is not None else _default_rule_configs()
        self.suppressions = list(suppressions)

    def rule_config(self, rule_id: str) -> RuleConfig:
        return self.rules.setdefault(rule_id, RuleConfig())

    def suppressed(self, rule: str, rel_path: str, symbol: str) -> bool:
        hit = False
        for entry in self.suppressions:
            if entry.reason and entry.matches(rule, rel_path, symbol):
                entry.used = True
                hit = True
        return hit

    def stale_suppressions(self) -> list[Suppression]:
        return [s for s in self.suppressions if not s.used]

    @classmethod
    def load(cls, path: str | Path | None) -> "CheckConfig":
        """Defaults when ``path`` is None; else defaults + overrides."""
        config = cls()
        if path is None:
            return config
        path = Path(path)
        try:
            with path.open("rb") as handle:
                data = tomllib.load(handle)
        except FileNotFoundError:
            raise ConfigError(f"config file not found: {path}") from None
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"invalid TOML in {path}: {exc}") from None
        return config.merge(data, source=str(path))

    def merge(self, data: Mapping, source: str = "<config>") -> "CheckConfig":
        rules = data.get("rules", {})
        if not isinstance(rules, Mapping):
            raise ConfigError(f"{source}: [rules] must be a table")
        for rule_id, raw in rules.items():
            if not isinstance(raw, Mapping):
                raise ConfigError(f"{source}: [rules.{rule_id}] must be a table")
            entry = self.rule_config(str(rule_id))
            if "paths" in raw:
                entry.paths = _str_tuple(raw["paths"], source, rule_id, "paths")
            if "exclude" in raw:
                entry.exclude = _str_tuple(raw["exclude"], source, rule_id, "exclude")
            if "allow-within" in raw:
                entry.allow_within = entry.allow_within + _str_tuple(
                    raw["allow-within"], source, rule_id, "allow-within"
                )
            for key, value in raw.items():
                if key not in {"paths", "exclude", "allow-within"}:
                    entry.options[key.replace("-", "_")] = value
        for raw in data.get("suppressions", ()):
            if not isinstance(raw, Mapping):
                raise ConfigError(f"{source}: suppressions must be tables")
            try:
                entry = Suppression(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    symbol=str(raw["symbol"]),
                    reason=str(raw.get("reason", "")).strip(),
                )
            except KeyError as exc:
                raise ConfigError(
                    f"{source}: suppression missing key {exc}"
                ) from None
            if not entry.reason:
                raise ConfigError(
                    f"{source}: suppression for {entry.rule} at "
                    f"{entry.path}:{entry.symbol} needs a reason"
                )
            self.suppressions.append(entry)
        return self


def _str_tuple(value: object, source: str, rule_id: object, key: str) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)) and all(isinstance(v, str) for v in value):
        return tuple(value)
    raise ConfigError(f"{source}: [rules.{rule_id}] {key} must be a string list")
