"""``python -m repro.devtools`` — alias for ``repro.devtools.check``."""

from __future__ import annotations

import sys

from repro.devtools.check import main

if __name__ == "__main__":
    sys.exit(main())
