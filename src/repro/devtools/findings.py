"""Finding records — what a contract rule reports.

A :class:`Finding` is one violation of one rule at one source
location. Findings are plain frozen data so the CLI can sort, format
(text or JSON), diff against suppressions, and count them without any
rule knowing how it will be rendered.

``symbol`` is the dotted qualname of the enclosing function or class
(``PlanCache.lookup``, ``<module>`` at top level). Suppressions match
on ``(rule, path, symbol)`` rather than line numbers so a baseline
entry survives unrelated edits that shift lines.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "MODULE_SYMBOL"]

#: The ``symbol`` used for findings outside any function or class.
MODULE_SYMBOL = "<module>"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = MODULE_SYMBOL

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.symbol}] {self.message}"
        )
