"""``repro.devtools`` — static enforcement of the engine's contracts.

PRs 5–9 built guarantees that live above the type system: replays are
bit-identical, shared caches mutate only under their locks, every
sorted/random access lands in the ``AccessStats`` ledger (the very
quantity Fagin's Theorem 5.3 bounds), columnar stores stay frozen,
and shard workers survive ``spawn``. Each was enforced by convention
and review. This package machine-checks them: a stdlib-``ast``
framework (``visitor``), a rule pack encoding the five contracts
(``rules``, ids ``RPR001``–``RPR005``), inline pragma and TOML
baseline suppression with mandatory reasons (``pragmas``,
``config``), and a CLI (``python -m repro.devtools.check``) wired
into CI as the ``contracts`` job.

DESIGN.md "Static contracts" documents each rule, the PR that
introduced its invariant, and how to suppress.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only re-exports
    from repro.devtools.check import CheckResult, main, run_check
    from repro.devtools.config import (
        CheckConfig,
        ConfigError,
        RuleConfig,
        Suppression,
    )
    from repro.devtools.findings import Finding
    from repro.devtools.pragmas import Pragma, PragmaIndex
    from repro.devtools.rules import ALL_RULES
    from repro.devtools.visitor import ModuleInfo, Rule, parse_module

#: attribute name -> defining submodule, resolved lazily (PEP 562) so
#: `python -m repro.devtools.check` does not import the package's CLI
#: module twice (once as `repro.devtools.check`, once as `__main__`).
_EXPORTS = {
    "ALL_RULES": "rules",
    "CheckConfig": "config",
    "CheckResult": "check",
    "ConfigError": "config",
    "Finding": "findings",
    "ModuleInfo": "visitor",
    "Pragma": "pragmas",
    "PragmaIndex": "pragmas",
    "Rule": "visitor",
    "RuleConfig": "config",
    "Suppression": "config",
    "main": "check",
    "parse_module": "visitor",
    "run_check": "check",
}


def __getattr__(name: str) -> object:
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(
        importlib.import_module(f"{__name__}.{submodule}"), name
    )


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "ALL_RULES",
    "CheckConfig",
    "CheckResult",
    "ConfigError",
    "Finding",
    "ModuleInfo",
    "Pragma",
    "PragmaIndex",
    "Rule",
    "RuleConfig",
    "Suppression",
    "main",
    "parse_module",
    "run_check",
]
