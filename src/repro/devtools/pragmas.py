"""Inline suppression pragmas.

A finding can be waived at its call site with a comment::

    self._total += 1  # repro: allow[RPR002] counter is telemetry-only

The pragma covers the line it sits on and, when written as a
standalone comment, the line directly below it. Several rule ids may
share one pragma (``allow[RPR001,RPR005]``).

Two honesty requirements are enforced by the checker itself:

* a pragma **must** carry a reason — a bare ``allow[RPR002]`` does not
  suppress anything and is itself reported (``DT002``), and
* a pragma that suppressed nothing in the run is reported as stale
  (``DT003``) so dead waivers cannot accumulate.

Comments are found with :mod:`tokenize`, not a regex over raw lines,
so pragma-shaped text inside string literals is never misread.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Pragma", "PragmaIndex"]

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<reason>.*)"
)


@dataclass(slots=True)
class Pragma:
    """One ``# repro: allow[...]`` comment."""

    line: int
    rules: frozenset[str]
    reason: str
    #: True when the comment is the whole line (covers the next line too).
    standalone: bool
    used: bool = field(default=False)

    def covers(self, line: int) -> bool:
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


class PragmaIndex:
    """All pragmas of one module, with use tracking."""

    def __init__(self, pragmas: list[Pragma]) -> None:
        self._pragmas = pragmas

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        pragmas: list[Pragma] = []
        reader = io.StringIO(source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # The AST parse reports the real error; no pragmas here.
            return cls([])
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.match(tok.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            if not rules:
                continue
            pragmas.append(
                Pragma(
                    line=tok.start[0],
                    rules=rules,
                    reason=match.group("reason").strip(),
                    standalone=tok.line.lstrip().startswith("#"),
                )
            )
        return cls(pragmas)

    def allows(self, rule: str, line: int) -> bool:
        """True when a reason-carrying pragma waives ``rule`` at ``line``."""
        for pragma in self._pragmas:
            if rule in pragma.rules and pragma.covers(line):
                if not pragma.reason:
                    continue  # reasonless pragmas never suppress
                pragma.used = True
                return True
        return False

    def without_reason(self) -> list[Pragma]:
        return [p for p in self._pragmas if not p.reason]

    def unused(self) -> list[Pragma]:
        return [p for p in self._pragmas if p.reason and not p.used]
