"""A text-retrieval subsystem ("many text retrieval systems", Section 1).

    "In other data servers, such as a system with queries based on
    image content, or many text retrieval systems, the result of a
    query is a sorted list."

**Substitution note (DESIGN.md):** stands in for whatever text engine
Garlic federated. Documents are tokenised, weighted with TF-IDF, and
queries are scored by cosine similarity — the classical vector-space
model, normalised into [0, 1] grades. The middleware only sees
sorted/random access, so any scoring text engine exercises the same
code paths.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Mapping

from repro.access.source import SortedRandomSource
from repro.access.types import ObjectId
from repro.core.query import AtomicQuery
from repro.subsystems.base import DEFAULT_RANKING_CACHE_CAPACITY, Subsystem

__all__ = ["TextSubsystem", "tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens (alphanumerics and apostrophes).

    >>> tokenize("A Hard Day's Night!")
    ['a', 'hard', "day's", 'night']
    """
    return _TOKEN_RE.findall(text.lower())


class TextSubsystem(Subsystem):
    """TF-IDF / cosine retrieval over a fixed document collection.

    Parameters
    ----------
    name:
        Subsystem label.
    documents:
        object id -> document text. One attribute (default ``"text"``)
        is served; its graded queries are free-text strings.
    attribute:
        The attribute name queries address, e.g. ``Blurb ~ "raw soul"``.
    cache_capacity:
        Distinct query strings whose materialised rankings are kept in
        the subsystem's :class:`~repro.subsystems.base.RankingCache`
        (``None`` = unbounded).

    Text engines returned ranked hit *pages* long before 1996; the
    stand-in declares ``supports_batched_access`` and serves its cosine
    ranking through the native batch slices of its materialised source.
    """

    supports_batched_access = True

    def __init__(
        self,
        name: str,
        documents: Mapping[ObjectId, str],
        attribute: str = "text",
        cache_capacity: int | None = DEFAULT_RANKING_CACHE_CAPACITY,
    ) -> None:
        if not documents:
            raise ValueError("a text subsystem needs at least one document")
        self.name = name
        self.ranking_cache_capacity = cache_capacity
        self._attribute = attribute
        self._docs = dict(documents)
        self._doc_tokens = {obj: tokenize(t) for obj, t in self._docs.items()}
        # Document frequencies for IDF weighting.
        df: Counter[str] = Counter()
        for tokens in self._doc_tokens.values():
            df.update(set(tokens))
        n_docs = len(self._docs)
        # Smoothed IDF keeps weights positive even for ubiquitous terms.
        self._idf = {
            term: math.log(1.0 + n_docs / (1.0 + count)) + 1.0
            for term, count in df.items()
        }
        self._doc_vectors = {
            obj: self._vectorise(tokens)
            for obj, tokens in self._doc_tokens.items()
        }

    def _vectorise(self, tokens: list[str]) -> dict[str, float]:
        counts = Counter(tokens)
        total = sum(counts.values()) or 1
        vec = {
            term: (count / total) * self._idf.get(term, 1.0)
            for term, count in counts.items()
        }
        norm = math.sqrt(sum(w * w for w in vec.values()))
        if norm > 0:
            vec = {term: w / norm for term, w in vec.items()}
        return vec

    def attributes(self) -> frozenset[str]:
        return frozenset({self._attribute})

    def object_ids(self) -> frozenset[ObjectId]:
        return frozenset(self._docs)

    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        self.validate_query(query)
        if query.op != "~":
            raise ValueError(
                f"text subsystem {self.name!r} evaluates graded matches "
                f"('~') only; got op {query.op!r}"
            )
        if not isinstance(query.target, str):
            raise ValueError(
                f"text queries take a string target, got {query.target!r}"
            )
        def build() -> dict[ObjectId, float]:
            query_vec = self._vectorise(tokenize(query.target))
            return {
                obj: self._cosine(query_vec, doc_vec)
                for obj, doc_vec in self._doc_vectors.items()
            }

        return self.ranking_cache.source(
            f"{self.name}:{self._attribute}~{query.target!r}", query, build
        )

    @staticmethod
    def _cosine(a: dict[str, float], b: dict[str, float]) -> float:
        if len(b) < len(a):
            a, b = b, a
        score = sum(w * b.get(term, 0.0) for term, w in a.items())
        # Both vectors are unit-normalised, so the dot product is the
        # cosine; clamp floating-point overshoot into the grade domain.
        return min(1.0, max(0.0, score))
