"""A crisp relational subsystem (the traditional half of Section 2).

    "A typical traditional database query might ask for the names of
    all albums where the artist is the Beatles. The result is a set …
    For traditional database queries, such as Artist = 'Beatles', the
    grade for each object is either 0 or 1."

Records are flat attribute/value mappings; atomic queries use crisp
equality (``Artist = "Beatles"``) and grade every object 0 or 1. The
sorted stream delivers all grade-1 objects first — which is what makes
the filtered-conjunct strategy of Section 4 work: read the matches off
the top, stop at the first 0.
"""

from __future__ import annotations

from typing import Mapping

from repro.access.source import SortedRandomSource
from repro.access.types import ObjectId
from repro.core.query import AtomicQuery
from repro.subsystems.base import DEFAULT_RANKING_CACHE_CAPACITY, Subsystem

__all__ = ["RelationalSubsystem"]


class RelationalSubsystem(Subsystem):
    """An in-memory relation with equality predicates.

    Parameters
    ----------
    name:
        Subsystem label.
    records:
        object id -> {attribute: value}. All records must have the
        same attribute set (a single relation schema).
    cache_capacity:
        Distinct predicates whose materialised rankings are kept in the
        subsystem's :class:`~repro.subsystems.base.RankingCache`
        (``None`` = unbounded).
    """

    crisp = True

    #: A relational engine ships result sets in fetch-many pages as a
    #: matter of course; the crisp ranking (all 1s, then all 0s) batches
    #: natively, so the federation's bulk path applies end to end.
    supports_batched_access = True

    def __init__(
        self,
        name: str,
        records: Mapping[ObjectId, Mapping[str, object]],
        cache_capacity: int | None = DEFAULT_RANKING_CACHE_CAPACITY,
    ) -> None:
        if not records:
            raise ValueError("a relational subsystem needs at least one record")
        self.name = name
        self.ranking_cache_capacity = cache_capacity
        self._records = {obj: dict(attrs) for obj, attrs in records.items()}
        schemas = {frozenset(attrs) for attrs in self._records.values()}
        if len(schemas) != 1:
            raise ValueError(
                f"records of {name!r} do not share a single schema: "
                f"{sorted(len(s) for s in schemas)} distinct attribute sets"
            )
        self._schema = next(iter(schemas))

    def attributes(self) -> frozenset[str]:
        return self._schema

    def object_ids(self) -> frozenset[ObjectId]:
        return frozenset(self._records)

    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        self.validate_query(query)
        if query.op != "=":
            raise ValueError(
                f"relational subsystem {self.name!r} evaluates crisp "
                f"equality only; got op {query.op!r}"
            )
        return self.ranking_cache.source(
            f"{self.name}:{query.attribute}={query.target!r}",
            query,
            lambda: {
                obj: 1.0 if attrs[query.attribute] == query.target else 0.0
                for obj, attrs in self._records.items()
            },
        )

    #: The "estimate" is a literal count over the relation — exact, so
    #: the filtered-conjunct executor may size block reads from it.
    selectivity_is_exact = True

    def estimate_selectivity(self, query: AtomicQuery) -> float | None:
        """Exact selectivity from the relation's statistics."""
        if query.attribute not in self._schema or query.op != "=":
            return None
        matches = sum(
            1
            for attrs in self._records.values()
            if attrs[query.attribute] == query.target
        )
        return matches / len(self._records)

    def matching_set(self, query: AtomicQuery) -> frozenset[ObjectId]:
        """The crisp answer set (for tests and ground truth)."""
        self.validate_query(query)
        return frozenset(
            obj
            for obj, attrs in self._records.items()
            if attrs[query.attribute] == query.target
        )
