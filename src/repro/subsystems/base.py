"""Subsystem abstraction: what Garlic sits on top of (Sections 1-2, 8).

    "Garlic … is designed to be capable of integrating data that
    resides in different database systems as well as a variety of
    non-database data servers. A single Garlic query can access data in
    a number of different subsystems."

A :class:`Subsystem` owns some attributes of the common object
population and evaluates atomic queries over them, returning a
:class:`~repro.access.source.SortedRandomSource` — the only interface
the middleware may use (Section 4's sorted/random access model).
Capability flags record what each subsystem can do:

* ``supports_random_access`` — Section 4 footnote 5 assumes QBIC can
  ("which, in fact, it can"); a subsystem without it restricts the
  planner to sorted-only strategies.
* ``supports_internal_conjunction`` — Section 8: a subsystem may be
  able to evaluate a conjunction itself, under *its own* semantics,
  which may differ from Garlic's.
* ``supports_batched_access`` — the subsystem can stream its ranked
  result in *batches* (pages of sorted access, bulk random lookups)
  instead of strictly "one by one". The paper's protocol is unit-
  granular; batching is the engineering reality of federating over a
  network, and it changes only round trips, never the Section 5
  access counts (a batch of b accesses costs exactly b unit
  accesses). :meth:`Subsystem.evaluate_batched` is the bulk
  counterpart of :meth:`Subsystem.evaluate`; for subsystems without
  the capability it degrades to a unit-access source, which is the
  **unit-fallback contract** the planner relies on.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Callable, Iterable, Mapping, Sequence

from repro.access.source import (
    MaterializedSource,
    PagedBatchSource,
    SortedRandomSource,
    UnbatchedSource,
    rank_items,
)
from repro.access.types import GradedItem, ObjectId
from repro.core.query import AtomicQuery
from repro.exceptions import SubsystemCapabilityError

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_RANKING_CACHE_CAPACITY",
    "RankingCache",
    "Subsystem",
    "StreamOnlySubsystem",
    "negotiate_batch_size",
]

#: Page size assumed for batch-capable subsystems that state no
#: preference — large enough that in-memory backends are effectively
#: unpaged, small enough to model a sane federation message size.
DEFAULT_BATCH_SIZE = 4096

#: Distinct atomic queries whose materialised rankings a subsystem
#: retains by default. Federated workloads re-issue a handful of atoms
#: over and over (run_many batches, repeated dashboards), so a small
#: LRU makes every repeat an O(1) session mint.
DEFAULT_RANKING_CACHE_CAPACITY = 32


class RankingCache:
    """An LRU of materialised rankings, keyed by the atom's cache key.

    A subsystem's graded set for a fixed atomic query never changes, so
    the descending sort (and the grade map for random access) can be
    paid once and shared by every later session —
    :meth:`~repro.access.source.MaterializedSource.trusted` mints an
    O(1) cursor over the cached tuple. Eviction is safe by the same
    determinism: a re-miss only re-pays the sort, it cannot change the
    graded set. ``hits`` / ``misses`` are surfaced for tests and
    capacity tuning; ``capacity=None`` means unbounded.

    The cache is **thread-safe with single-flight misses**: the LRU
    dict and the hit/miss counters mutate only under an internal lock,
    and a miss takes a per-key build lock so that concurrent requests
    for the *same* atom run ``build_grades`` (and the descending sort)
    exactly once — the losers of the race block briefly, then mint off
    the winner's entry. Requests for *different* atoms build in
    parallel; hits never block on a build.
    """

    def __init__(
        self, capacity: int | None = DEFAULT_RANKING_CACHE_CAPACITY
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"ranking cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[
            object, tuple[tuple[GradedItem, ...], Mapping[ObjectId, float]]
        ] = OrderedDict()
        self._lock = threading.Lock()
        #: In-flight builds: key -> the lock its first requester holds.
        self._building: dict[object, threading.Lock] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def _hit(self, key: object):
        """Under ``self._lock``: the entry for ``key``, LRU-refreshed."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
        return entry

    def source(
        self,
        name: str,
        query: AtomicQuery,
        build_grades: Callable[[], Mapping[ObjectId, float]],
    ) -> SortedRandomSource:
        """A fresh source for ``query``, ranked at most once per entry.

        On a hit the cached ranking backs an O(1)
        :meth:`~repro.access.source.MaterializedSource.trusted` mint; on
        a miss ``build_grades`` is invoked, its result ranked (and
        validated) once, and the entry stored. An unhashable cache key
        (an exotic target object) bypasses the cache entirely rather
        than failing the query. Safe to call from any thread; the same
        atom is never built twice concurrently (single-flight).
        """
        key: object = (query.attribute, query.op, query.target)
        try:
            hash(key)
        except TypeError:  # unhashable target: serve uncached
            return MaterializedSource(name, build_grades())
        # Single-flight: exactly one designated builder per key at a
        # time. Waiters block on the builder's lock, then *re-check* —
        # never build off a captured lock reference — so a failed build
        # neither leaks its lock nor lets two racers build at once (one
        # waiter is promoted to the next builder instead).
        while True:
            with self._lock:
                entry = self._hit(key)
                if entry is not None:
                    ranking, grade_map = entry
                    return MaterializedSource.trusted(name, ranking, grade_map)
                build_lock = self._building.get(key)
                if build_lock is None:
                    build_lock = threading.Lock()
                    build_lock.acquire()
                    self._building[key] = build_lock
                    break  # this thread is the builder
            # Another thread is building this key: wait for it to
            # finish (success or failure), then loop and re-check.
            build_lock.acquire()
            build_lock.release()
        try:
            grades = build_grades()
            entry = (rank_items(grades), dict(grades))
            with self._lock:
                self.misses += 1
                self._entries[key] = entry
                if (
                    self.capacity is not None
                    and len(self._entries) > self.capacity
                ):
                    self._entries.popitem(last=False)
        finally:
            with self._lock:
                self._building.pop(key, None)
            build_lock.release()
        ranking, grade_map = entry
        return MaterializedSource.trusted(name, ranking, grade_map)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe traffic)."""
        with self._lock:
            self._entries.clear()
            # Dropping in-flight build locks is safe: a racer holding
            # one re-checks the entries dict and, at worst, rebuilds
            # the same deterministic graded set.
            self._building.clear()

    def __repr__(self) -> str:
        return (
            f"RankingCache({len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class Subsystem(ABC):
    """A data server owning some attributes of the object population."""

    name: str = "subsystem"

    #: Can the middleware ask for the grade of a specific object?
    supports_random_access: bool = True

    #: Can this subsystem evaluate conjunctions internally (Section 8)?
    supports_internal_conjunction: bool = False

    #: Are this subsystem's grades always crisp (0/1)?
    crisp: bool = False

    #: Can this subsystem serve ranked results in batches (mirrors the
    #: strategy registry's ``batch_aware`` capability, subsystem-side)?
    supports_batched_access: bool = False

    #: Largest batch this subsystem is willing to serve per exchange;
    #: ``None`` means no preference (:data:`DEFAULT_BATCH_SIZE` is
    #: assumed during negotiation).
    batch_size_hint: int | None = None

    #: Capacity of :attr:`ranking_cache`
    #: (:data:`DEFAULT_RANKING_CACHE_CAPACITY` unless a subsystem's
    #: constructor overrides it; ``None`` means unbounded).
    ranking_cache_capacity: int | None = DEFAULT_RANKING_CACHE_CAPACITY

    @property
    def ranking_cache(self) -> RankingCache:
        """This subsystem's per-query ranking LRU (lazily created).

        Concrete subsystems route their :meth:`evaluate` through
        :meth:`RankingCache.source`, so repeated federated queries are
        O(1) session mints instead of per-call re-sorts. The property is
        the tests' window onto the hit/miss counters.
        """
        cache = self.__dict__.get("_ranking_cache")
        if cache is None:
            # setdefault is atomic under the GIL: when two threads race
            # the first mint, both end up with the same cache instance.
            cache = self.__dict__.setdefault(
                "_ranking_cache", RankingCache(self.ranking_cache_capacity)
            )
        return cache

    @abstractmethod
    def attributes(self) -> frozenset[str]:
        """The attribute names this subsystem can evaluate."""

    @abstractmethod
    def object_ids(self) -> frozenset[ObjectId]:
        """The objects this subsystem grades (the shared population)."""

    @abstractmethod
    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        """The graded result of one atomic query, as a fresh source.

        Every object in :meth:`object_ids` is graded (Section 5 model);
        each call returns an independent source with its own cursor.
        """

    def evaluate_batched(
        self, query: AtomicQuery, batch_size: int | None = None
    ) -> SortedRandomSource:
        """The graded result of ``query`` as a *batch-aware* source.

        The bulk counterpart of :meth:`evaluate`, used by the executor
        once the planner has negotiated a batch size for the whole
        federation (:func:`negotiate_batch_size`):

        * a batch-capable subsystem returns a source whose
          ``sorted_access_batch`` / ``random_access_many`` are served
          natively, paged at ``batch_size`` objects per exchange when
          one is negotiated (``None`` leaves the source unpaged);
        * a subsystem without the capability returns its unit source
          behind :class:`~repro.access.source.UnbatchedSource`, so
          every batch request decomposes into the one-by-one accesses
          the subsystem actually performs — the **unit-fallback
          contract**. Either way the Section 5 access counts are
          identical; only round trips differ.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(
                f"batch size must be positive, got {batch_size}"
            )
        source = self.evaluate(query)
        if not self.supports_batched_access:
            return UnbatchedSource(source)
        if batch_size is not None:
            return PagedBatchSource(source, batch_size)
        return source

    def evaluate_conjunction(
        self, queries: Sequence[AtomicQuery]
    ) -> SortedRandomSource:
        """Internal conjunction under this subsystem's own semantics.

        Default: not supported. Subsystems that override this must
        document their internal semantics — the whole point of
        Section 8 is that it may differ from Garlic's.
        """
        raise SubsystemCapabilityError(
            f"subsystem {self.name!r} cannot evaluate conjunctions internally"
        )

    #: Does :meth:`estimate_selectivity` return *exact* fractions
    #: (true matches / population) rather than estimates? Only an
    #: exact declaration lets the filtered-conjunct executor size its
    #: paged block reads from the statistic — an over-estimate would
    #: over-read and inflate the Section 5 sorted counts relative to
    #: the unit route. Subsystems with approximate statistics keep the
    #: default (False) and are served count-exact unit-sized pages.
    selectivity_is_exact: bool = False

    def estimate_selectivity(self, query: AtomicQuery) -> float | None:
        """Optional statistics hook: the expected fraction of objects
        with a non-zero grade under ``query``.

        Used by the planner to pick the filtered-conjunct strategy of
        Section 4 ("Under the reasonable assumption that there are not
        many objects that satisfy the first conjunct …"). ``None``
        means no estimate is available. This models a catalogue-
        statistics lookup, so it is not charged as an access. Declare
        :attr:`selectivity_is_exact` when the returned fraction is a
        true count, not an estimate.
        """
        return None

    def validate_query(self, query: AtomicQuery) -> None:
        """Raise if this subsystem cannot evaluate ``query``."""
        if query.attribute not in self.attributes():
            raise SubsystemCapabilityError(
                f"subsystem {self.name!r} does not serve attribute "
                f"{query.attribute!r} (serves: {sorted(self.attributes())})"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StreamOnlySubsystem(Subsystem):
    """Wraps a subsystem, removing its random-access capability.

    Useful both for modelling genuinely stream-only data servers and
    for testing the planner's no-random-access strategy selection (the
    NRA path) against a known-good graded source. Batch capability is
    orthogonal and passes through: a stream-only server may still page
    its sorted stream.
    """

    supports_random_access = False

    def __init__(self, inner: Subsystem) -> None:
        self._inner = inner
        self.name = f"{inner.name} (stream-only)"
        self.crisp = inner.crisp
        self.supports_batched_access = inner.supports_batched_access
        self.batch_size_hint = inner.batch_size_hint
        self.selectivity_is_exact = inner.selectivity_is_exact

    def attributes(self) -> frozenset[str]:
        return self._inner.attributes()

    def object_ids(self):
        return self._inner.object_ids()

    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        from repro.access.source import StreamOnlySource

        return StreamOnlySource(self._inner.evaluate(query))

    def evaluate_batched(
        self, query: AtomicQuery, batch_size: int | None = None
    ) -> SortedRandomSource:
        from repro.access.source import StreamOnlySource

        return StreamOnlySource(
            self._inner.evaluate_batched(query, batch_size)
        )

    def estimate_selectivity(self, query: AtomicQuery) -> float | None:
        return self._inner.estimate_selectivity(query)


def negotiate_batch_size(
    subsystems: Iterable[Subsystem], requested: int | None = None
) -> int | None:
    """The batch size a federation of subsystems agrees to serve.

    ``None`` — the unit-access route — unless **every** subsystem
    involved supports batched access (a federation is only as bulk as
    its least capable member; anything else would split one query's
    lists across two protocols for no round-trip win). Otherwise the
    smallest declared :attr:`~Subsystem.batch_size_hint` wins, with
    :data:`DEFAULT_BATCH_SIZE` standing in for subsystems that state
    no preference; ``requested`` (a caller/deployment preference, e.g.
    ``ExecutionContext.batch_size``) caps the result.
    """
    if requested is not None and requested < 1:
        raise ValueError(f"requested batch size must be positive, got {requested}")
    agreed: int | None = None
    empty = True
    for subsystem in subsystems:
        empty = False
        if not subsystem.supports_batched_access:
            return None
        hint = subsystem.batch_size_hint
        if hint is not None and (agreed is None or hint < agreed):
            agreed = hint
    if empty:
        return None
    if agreed is None:
        agreed = DEFAULT_BATCH_SIZE
    if requested is not None:
        agreed = min(agreed, requested)
    return agreed
