"""Subsystem abstraction: what Garlic sits on top of (Sections 1-2, 8).

    "Garlic … is designed to be capable of integrating data that
    resides in different database systems as well as a variety of
    non-database data servers. A single Garlic query can access data in
    a number of different subsystems."

A :class:`Subsystem` owns some attributes of the common object
population and evaluates atomic queries over them, returning a
:class:`~repro.access.source.SortedRandomSource` — the only interface
the middleware may use (Section 4's sorted/random access model).
Capability flags record what each subsystem can do:

* ``supports_random_access`` — Section 4 footnote 5 assumes QBIC can
  ("which, in fact, it can"); a subsystem without it restricts the
  planner to sorted-only strategies.
* ``supports_internal_conjunction`` — Section 8: a subsystem may be
  able to evaluate a conjunction itself, under *its own* semantics,
  which may differ from Garlic's.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.access.source import SortedRandomSource
from repro.access.types import ObjectId
from repro.core.query import AtomicQuery
from repro.exceptions import SubsystemCapabilityError

__all__ = ["Subsystem"]


class Subsystem(ABC):
    """A data server owning some attributes of the object population."""

    name: str = "subsystem"

    #: Can the middleware ask for the grade of a specific object?
    supports_random_access: bool = True

    #: Can this subsystem evaluate conjunctions internally (Section 8)?
    supports_internal_conjunction: bool = False

    #: Are this subsystem's grades always crisp (0/1)?
    crisp: bool = False

    @abstractmethod
    def attributes(self) -> frozenset[str]:
        """The attribute names this subsystem can evaluate."""

    @abstractmethod
    def object_ids(self) -> frozenset[ObjectId]:
        """The objects this subsystem grades (the shared population)."""

    @abstractmethod
    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        """The graded result of one atomic query, as a fresh source.

        Every object in :meth:`object_ids` is graded (Section 5 model);
        each call returns an independent source with its own cursor.
        """

    def evaluate_conjunction(
        self, queries: Sequence[AtomicQuery]
    ) -> SortedRandomSource:
        """Internal conjunction under this subsystem's own semantics.

        Default: not supported. Subsystems that override this must
        document their internal semantics — the whole point of
        Section 8 is that it may differ from Garlic's.
        """
        raise SubsystemCapabilityError(
            f"subsystem {self.name!r} cannot evaluate conjunctions internally"
        )

    def estimate_selectivity(self, query: AtomicQuery) -> float | None:
        """Optional statistics hook: the expected fraction of objects
        with a non-zero grade under ``query``.

        Used by the planner to pick the filtered-conjunct strategy of
        Section 4 ("Under the reasonable assumption that there are not
        many objects that satisfy the first conjunct …"). ``None``
        means no estimate is available. This models a catalogue-
        statistics lookup, so it is not charged as an access.
        """
        return None

    def validate_query(self, query: AtomicQuery) -> None:
        """Raise if this subsystem cannot evaluate ``query``."""
        if query.attribute not in self.attributes():
            raise SubsystemCapabilityError(
                f"subsystem {self.name!r} does not serve attribute "
                f"{query.attribute!r} (serves: {sorted(self.attributes())})"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StreamOnlySubsystem(Subsystem):
    """Wraps a subsystem, removing its random-access capability.

    Useful both for modelling genuinely stream-only data servers and
    for testing the planner's no-random-access strategy selection (the
    NRA path) against a known-good graded source.
    """

    supports_random_access = False

    def __init__(self, inner: Subsystem) -> None:
        self._inner = inner
        self.name = f"{inner.name} (stream-only)"
        self.crisp = inner.crisp

    def attributes(self) -> frozenset[str]:
        return self._inner.attributes()

    def object_ids(self):
        return self._inner.object_ids()

    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        from repro.access.source import StreamOnlySource

        return StreamOnlySource(self._inner.evaluate(query))

    def estimate_selectivity(self, query: AtomicQuery) -> float | None:
        return self._inner.estimate_selectivity(query)
