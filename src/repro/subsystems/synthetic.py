"""Synthetic graded subsystems — the benchmark substrate.

Wraps a :class:`~repro.access.scoring_database.ScoringDatabase` list or
a grade distribution behind the :class:`~repro.subsystems.base.Subsystem`
interface, so middleware-level experiments can run against exactly the
probabilistic model of Section 5 while exercising the same federation
code paths as the "real" subsystems.
"""

from __future__ import annotations

import random
import threading
from typing import Mapping, Sequence

from repro.access.source import SortedRandomSource
from repro.access.types import ObjectId
from repro.core.query import AtomicQuery
from repro.subsystems.base import DEFAULT_RANKING_CACHE_CAPACITY, Subsystem
from repro.workloads.distributions import GradeDistribution, Uniform

__all__ = ["SyntheticSubsystem"]


class SyntheticSubsystem(Subsystem):
    """Serves attributes whose grades are fixed tables or random draws.

    Parameters
    ----------
    name:
        Subsystem label.
    tables:
        attribute -> {object -> grade}: explicit grade assignments.
    generated:
        attribute -> distribution: grades drawn once per (attribute,
        target) pair, lazily, from the seeded rng — so repeated
        evaluation of the same atomic query sees the same graded set,
        but different targets give fresh independent lists (the
        Section 5 independence model at the subsystem level).
    objects:
        The object population for generated attributes (required if
        only ``generated`` is given).
    cache_capacity:
        Distinct atomic queries whose materialised rankings the
        subsystem's :class:`~repro.subsystems.base.RankingCache`
        retains (``None`` = unbounded). Evictions are safe even for
        generated attributes: the drawn grades live in their own
        table, so a re-miss re-sorts the *same* graded set.

    The benchmark substrate speaks the full batched protocol
    (``supports_batched_access``): its sources are materialised
    rankings whose batch methods are native slices/lookups, so
    :meth:`~repro.subsystems.base.Subsystem.evaluate_batched` streams
    ranked pages at whatever size the federation negotiates.
    """

    supports_batched_access = True

    def __init__(
        self,
        name: str,
        tables: Mapping[str, Mapping[ObjectId, float]] | None = None,
        generated: Mapping[str, GradeDistribution] | None = None,
        objects: Sequence[ObjectId] | None = None,
        seed: int = 0,
        cache_capacity: int | None = DEFAULT_RANKING_CACHE_CAPACITY,
    ) -> None:
        self.name = name
        self.ranking_cache_capacity = cache_capacity
        self._tables = {
            attr: dict(grades) for attr, grades in (tables or {}).items()
        }
        self._generated = dict(generated or {})
        if not self._tables and not self._generated:
            raise ValueError(
                f"synthetic subsystem {name!r} needs tables or generators"
            )
        populations = {frozenset(t) for t in self._tables.values()}
        if objects is not None:
            populations.add(frozenset(objects))
        if not populations:
            raise ValueError(
                f"synthetic subsystem {name!r} has generated attributes "
                "but no object population; pass objects="
            )
        if len(populations) != 1:
            raise ValueError(
                f"attribute tables of {name!r} cover different object "
                "populations"
            )
        self._objects = next(iter(populations))
        self._rng = random.Random(seed)
        self._cache: dict[tuple[str, object], dict[ObjectId, float]] = {}
        # Generated attributes draw from the one seeded rng; the lock
        # keeps concurrent first draws of *different* (attribute,
        # target) pairs from interleaving rng consumption (table-backed
        # attributes never take it). Note the drawn grades still depend
        # on draw *order*: identical across runs only when the draw
        # sequence is (e.g. single-threaded, or cache-warmed) the same.
        self._draw_lock = threading.Lock()

    def attributes(self) -> frozenset[str]:
        return frozenset(self._tables) | frozenset(self._generated)

    def object_ids(self) -> frozenset[ObjectId]:
        return frozenset(self._objects)

    def _grades_for(self, query: AtomicQuery) -> dict[ObjectId, float]:
        if query.attribute in self._tables:
            return self._tables[query.attribute]
        key = (query.attribute, query.target)
        with self._draw_lock:
            if key not in self._cache:
                dist = self._generated.get(query.attribute, Uniform())
                self._cache[key] = {
                    obj: dist.sample(self._rng) for obj in sorted(
                        self._objects, key=repr
                    )
                }
            return self._cache[key]

    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        # The shared RankingCache plays ColumnarScoringDatabase's
        # share-the-ranking trick on the subsystem side: the descending
        # sort is paid once per distinct query and every later session
        # is an O(1) cursor over the cached tuple.
        self.validate_query(query)
        return self.ranking_cache.source(
            f"{self.name}:{query.attribute}{query.op}{query.target!r}",
            query,
            lambda: self._grades_for(query),
        )
