"""Simulated subsystems: the data servers Garlic federates.

Per the reproduction's substitution rule (see DESIGN.md), the
proprietary systems the paper ran on (QBIC, a relational DBMS, text
servers) are replaced by in-process simulations exposing exactly the
sorted/random access interface of Section 4 — the only surface the
algorithms under study ever touch.
"""

from repro.subsystems.base import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_RANKING_CACHE_CAPACITY,
    RankingCache,
    StreamOnlySubsystem,
    Subsystem,
    negotiate_batch_size,
)
from repro.subsystems.qbic import (
    QbicSubsystem,
    gaussian_similarity,
    histogram_intersection,
)
from repro.subsystems.relational import RelationalSubsystem
from repro.subsystems.synthetic import SyntheticSubsystem
from repro.subsystems.text import TextSubsystem, tokenize

__all__ = [
    "Subsystem",
    "StreamOnlySubsystem",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_RANKING_CACHE_CAPACITY",
    "RankingCache",
    "negotiate_batch_size",
    "RelationalSubsystem",
    "QbicSubsystem",
    "gaussian_similarity",
    "histogram_intersection",
    "TextSubsystem",
    "tokenize",
    "SyntheticSubsystem",
]
