"""A QBIC-like image subsystem: the multimedia half of Section 2.

    "QBIC can search for images by various visual characteristics such
    as color and texture. … In reality, [AlbumColor = 'red'] might be
    expressed by selecting a color from a color wheel, or by selecting
    an image I (that might be predominantly red) and asking for other
    images whose colors are 'close to' that of image I. Systems such as
    QBIC have sophisticated color-matching algorithms [Io89, NBE+93,
    SO95, SC96] that compute the closeness of the colors of two
    images."

**Substitution note (DESIGN.md):** the real QBIC is proprietary; this
stand-in stores per-object feature vectors (colour as RGB, texture and
shape descriptors) and scores closeness with a Gaussian kernel on
Euclidean distance — monotone in distance, 1 at a perfect match, like
QBIC's similarity scores. The middleware only ever sees the
sorted/random access interface, so the algorithmic behaviour under
study is identical.

The subsystem supports query-by-value (a target vector or named
colour), query-by-example (an object id whose features become the
target — the footnote's "other images whose colors are close to that
of image I"), and internal conjunction (Section 8) under QBIC-style
*averaging* semantics, deliberately different from Garlic's min rule.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.access.source import MaterializedSource, SortedRandomSource
from repro.access.types import ObjectId
from repro.core.query import AtomicQuery
from repro.exceptions import SubsystemCapabilityError, UnknownObjectError
from repro.subsystems.base import DEFAULT_RANKING_CACHE_CAPACITY, Subsystem
from repro.workloads.datasets import NAMED_COLORS

__all__ = ["QbicSubsystem", "gaussian_similarity", "histogram_intersection"]


def gaussian_similarity(
    x: Sequence[float], target: Sequence[float], bandwidth: float
) -> float:
    """exp(-||x - target||^2 / (2 * bandwidth^2)) — a [0, 1] closeness score.

    1.0 iff the feature matches the target exactly; decays smoothly
    with distance, like a similarity-ranked image engine.
    """
    if len(x) != len(target):
        raise ValueError(
            f"feature dimension mismatch: {len(x)} vs {len(target)}"
        )
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    sq = sum((a - b) ** 2 for a, b in zip(x, target))
    return math.exp(-sq / (2.0 * bandwidth * bandwidth))


def histogram_intersection(
    x: Sequence[float], target: Sequence[float]
) -> float:
    """Swain-Ballard histogram intersection: sum of binwise minima.

    The classical colour-matching score the QBIC literature builds on
    ([Io89, SO95]; Section 2's footnote 4): both arguments are colour
    histograms (non-negative bins summing to 1), and the score is the
    total mass the two distributions share — 1.0 for identical
    histograms, 0.0 for disjoint ones. Notably, "an image that contains
    a lot of red and a little green might be considered moderately
    close in color to another image with a lot of pink and no green"
    falls out of bin overlap rather than pointwise distance.
    """
    if len(x) != len(target):
        raise ValueError(
            f"histogram length mismatch: {len(x)} vs {len(target)}"
        )
    if not x:
        raise ValueError("histograms must be non-empty")
    for h in (x, target):
        if any(v < 0 for v in h):
            raise ValueError("histogram bins must be non-negative")
        total = sum(h)
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ValueError(
                f"histogram bins must sum to 1, got {total:.6f}"
            )
    return min(1.0, sum(min(a, b) for a, b in zip(x, target)))


class QbicSubsystem(Subsystem):
    """Feature-vector store with similarity-ranked atomic queries.

    Parameters
    ----------
    name:
        Subsystem label.
    features:
        feature name -> {object id -> feature vector}. All features
        must cover the same object population.
    bandwidths:
        Per-feature Gaussian kernel bandwidth (default 0.35, a gentle
        kernel for unit-cube features).
    named_targets:
        String targets recognised per feature, e.g. colour names; the
        default wires :data:`~repro.workloads.datasets.NAMED_COLORS`
        into the ``color`` feature.
    scoring:
        Per-feature scoring model: ``"gaussian"`` (default; kernel on
        Euclidean distance) or ``"histogram"`` (Swain-Ballard
        histogram intersection — feature vectors must then be
        normalised histograms, the [SO95] colour-matching style).
    cache_capacity:
        Distinct similarity queries whose materialised rankings are
        kept in the subsystem's
        :class:`~repro.subsystems.base.RankingCache` (``None`` =
        unbounded). Unhashable targets (raw vectors given as lists)
        are served uncached.
    """

    supports_internal_conjunction = True

    #: Similarity engines rank the whole collection per query, so
    #: shipping the ranking in pages is free — the QBIC stand-in joins
    #: the federation's bulk path (Section 4's sorted access "until
    #: Garlic tells the subsystem to stop", a page at a time).
    supports_batched_access = True

    def __init__(
        self,
        name: str,
        features: Mapping[str, Mapping[ObjectId, Sequence[float]]],
        bandwidths: Mapping[str, float] | None = None,
        named_targets: Mapping[str, Mapping[str, Sequence[float]]] | None = None,
        scoring: Mapping[str, str] | None = None,
        cache_capacity: int | None = DEFAULT_RANKING_CACHE_CAPACITY,
    ) -> None:
        if not features:
            raise ValueError("a QBIC subsystem needs at least one feature")
        self.name = name
        self.ranking_cache_capacity = cache_capacity
        self._features = {
            feat: {obj: tuple(map(float, vec)) for obj, vec in table.items()}
            for feat, table in features.items()
        }
        populations = {frozenset(t) for t in self._features.values()}
        if len(populations) != 1:
            raise ValueError(
                f"features of {name!r} cover different object populations"
            )
        self._objects = next(iter(populations))
        if not self._objects:
            raise ValueError(f"subsystem {name!r} has no objects")
        self._bandwidths = dict(bandwidths or {})
        self._scoring = dict(scoring or {})
        for feat, mode in self._scoring.items():
            if feat not in self._features:
                raise ValueError(
                    f"scoring declared for unknown feature {feat!r}"
                )
            if mode not in ("gaussian", "histogram"):
                raise ValueError(
                    f"scoring for {feat!r} must be 'gaussian' or "
                    f"'histogram', got {mode!r}"
                )
        self._named_targets = {
            feat: dict(targets)
            for feat, targets in (named_targets or {}).items()
        }
        # Colour-like features understand the standard named colours out
        # of the box ("selecting a color from a color wheel", Section 2).
        for feat in self._features:
            if "color" in feat.lower() and feat not in self._named_targets:
                self._named_targets[feat] = dict(NAMED_COLORS)

    def attributes(self) -> frozenset[str]:
        return frozenset(self._features)

    def object_ids(self) -> frozenset[ObjectId]:
        return frozenset(self._objects)

    def _bandwidth(self, feature: str) -> float:
        return self._bandwidths.get(feature, 0.35)

    def _resolve_target(
        self, feature: str, target: object
    ) -> tuple[float, ...]:
        """Turn a query target into a feature vector.

        Accepts a vector, a named target (e.g. ``"red"``), or an
        existing object id (query by example).
        """
        table = self._features[feature]
        if isinstance(target, str):
            named = self._named_targets.get(feature, {})
            if target in named:
                return tuple(map(float, named[target]))
            if target in table:
                return table[target]
            raise UnknownObjectError(target, f"{self.name}:{feature}")
        try:
            known = target in table  # query by example with a non-string id
        except TypeError:  # unhashable target (e.g. a raw vector as list)
            known = False
        if known:
            return table[target]  # type: ignore[index]
        try:
            return tuple(float(v) for v in target)  # type: ignore[union-attr]
        except TypeError:
            raise ValueError(
                f"cannot interpret target {target!r} for feature "
                f"{feature!r}: expected a vector, a named target, or an "
                "object id"
            ) from None

    def _grades_for(
        self, query: AtomicQuery
    ) -> dict[ObjectId, float]:
        self.validate_query(query)
        if query.op != "~":
            raise ValueError(
                f"QBIC subsystem {self.name!r} evaluates graded matches "
                f"('~') only; got op {query.op!r}"
            )
        feature = query.attribute
        target_vec = self._resolve_target(feature, query.target)
        if self._scoring.get(feature, "gaussian") == "histogram":
            return {
                obj: histogram_intersection(vec, target_vec)
                for obj, vec in self._features[feature].items()
            }
        bw = self._bandwidth(feature)
        return {
            obj: gaussian_similarity(vec, target_vec, bw)
            for obj, vec in self._features[feature].items()
        }

    def evaluate(self, query: AtomicQuery) -> SortedRandomSource:
        return self.ranking_cache.source(
            f"{self.name}:{query.attribute}~{query.target!r}",
            query,
            lambda: self._grades_for(query),
        )

    def evaluate_conjunction(
        self, queries: Sequence[AtomicQuery]
    ) -> SortedRandomSource:
        """Internal conjunction under QBIC-style *averaging* semantics.

        Section 8: "Assume, as is the case currently, that QBIC has a
        different semantics for conjunction than Garlic." Real image
        engines combine feature scores by (weighted) averaging rather
        than min; we average the per-query similarities. The executor
        exposes both modes so their answers can be compared.
        """
        if len(queries) < 2:
            raise SubsystemCapabilityError(
                "internal conjunction needs at least two atomic queries"
            )
        tables = [self._grades_for(q) for q in queries]
        grades = {
            obj: sum(t[obj] for t in tables) / len(tables)
            for obj in self._objects
        }
        label = " & ".join(f"{q.attribute}~{q.target!r}" for q in queries)
        return MaterializedSource(f"{self.name}:internal({label})", grades)
