"""Graded sets: the paper's unifying answer representation (Section 2).

    "Our solution is in terms of graded sets. A graded set is a set of
    pairs (x, g), where x is an object (such as a tuple), and g (the
    grade) is a real number in the interval [0, 1]. It is sometimes
    convenient to think of a graded set as corresponding to a sorted
    list, where the objects are sorted by their grades. Thus, a graded
    set is a generalization of both a set and a sorted list."

A :class:`GradedSet` maps hashable objects to grades. Objects that are
not explicitly present have the implicit grade 0 (the standard fuzzy-set
support convention), which is exactly how a crisp relational answer
embeds: members get grade 1, everything else grade 0.

The class is immutable: set operations return new graded sets. This
keeps answers safe to share between middleware layers and makes the
algebraic laws tested in ``tests/core/test_graded_set.py`` meaningful.
"""

from __future__ import annotations

from typing import (
    Callable,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    Tuple,
)

from repro.core.grades import (
    FALSE_GRADE,
    TRUE_GRADE,
    grades_close,
    standard_negation,
    validate_grade,
)
from repro.exceptions import InsufficientObjectsError

ObjectId = Hashable
GradedPair = Tuple[ObjectId, float]


def _sort_key(pair: GradedPair) -> tuple[float, str]:
    """Descending by grade; ties broken by the repr of the object.

    The tie-break keeps iteration deterministic (important for
    reproducible benchmarks) without constraining the semantics: the
    paper explicitly allows ties to be "broken arbitrarily" (Section 4).
    """
    obj, grade = pair
    return (-grade, repr(obj))


class GradedSet:
    """An immutable set of (object, grade) pairs.

    Parameters
    ----------
    pairs:
        A mapping from objects to grades, or an iterable of
        ``(object, grade)`` pairs. Duplicate objects are rejected.

    Examples
    --------
    >>> gs = GradedSet({"a": 1.0, "b": 0.25})
    >>> gs.grade("a")
    1.0
    >>> gs.grade("missing")
    0.0
    >>> [obj for obj, grade in gs]
    ['a', 'b']
    """

    __slots__ = ("_grades",)

    def __init__(
        self, pairs: Mapping[ObjectId, float] | Iterable[GradedPair] = ()
    ) -> None:
        items: Iterable[GradedPair]
        if isinstance(pairs, Mapping):
            items = pairs.items()
        else:
            items = pairs
        grades: dict[ObjectId, float] = {}
        for obj, grade in items:
            if obj in grades:
                raise ValueError(f"duplicate object {obj!r} in graded set")
            grades[obj] = validate_grade(grade, context=f"object {obj!r}")
        self._grades = grades

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_crisp(
        cls, members: Iterable[ObjectId], universe: Iterable[ObjectId] | None = None
    ) -> "GradedSet":
        """Embed a crisp set: members get grade 1.

        If ``universe`` is given, non-members are stored explicitly with
        grade 0 (useful when a total grade assignment is needed, e.g.
        before negation); otherwise non-members stay implicit.
        """
        grades = {obj: TRUE_GRADE for obj in members}
        if universe is not None:
            for obj in universe:
                grades.setdefault(obj, FALSE_GRADE)
        return cls(grades)

    @classmethod
    def from_ranked(
        cls, objects: Sequence[ObjectId], grades: Sequence[float]
    ) -> "GradedSet":
        """Build from parallel sequences of objects and grades."""
        if len(objects) != len(grades):
            raise ValueError(
                f"{len(objects)} objects but {len(grades)} grades"
            )
        return cls(zip(objects, grades))

    # ------------------------------------------------------------------
    # Mapping behaviour
    # ------------------------------------------------------------------

    def grade(self, obj: ObjectId) -> float:
        """The grade of ``obj``; objects not present have grade 0."""
        return self._grades.get(obj, FALSE_GRADE)

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._grades

    def __len__(self) -> int:
        return len(self._grades)

    def __iter__(self) -> Iterator[GradedPair]:
        """Iterate pairs in descending grade order (the "sorted list" view)."""
        return iter(sorted(self._grades.items(), key=_sort_key))

    def objects(self) -> frozenset[ObjectId]:
        """The set of objects explicitly present."""
        return frozenset(self._grades)

    def as_dict(self) -> dict[ObjectId, float]:
        """A fresh dict of the explicit (object, grade) pairs."""
        return dict(self._grades)

    def to_sorted_list(self) -> list[GradedPair]:
        """The sorted-list view: pairs in descending grade order."""
        return list(self)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def top(self, k: int) -> "GradedSet":
        """The top ``k`` answers: ``k`` pairs with the highest grades.

        Ties are broken deterministically (by object repr), which is one
        of the arbitrary tie-breaks Section 4 permits. Raises
        :class:`InsufficientObjectsError` if fewer than ``k`` objects
        are present, matching A0's standing assumption.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k > len(self._grades):
            raise InsufficientObjectsError(k, len(self._grades))
        return GradedSet(self.to_sorted_list()[:k])

    def support(self) -> "GradedSet":
        """The sub-graded-set of objects with non-zero grade."""
        return GradedSet(
            {obj: g for obj, g in self._grades.items() if g > FALSE_GRADE}
        )

    def cut(self, alpha: float) -> frozenset[ObjectId]:
        """The (weak) alpha-cut: objects with grade >= ``alpha``."""
        alpha = validate_grade(alpha, context="alpha-cut level")
        return frozenset(obj for obj, g in self._grades.items() if g >= alpha)

    def is_crisp(self) -> bool:
        """True iff every explicit grade is exactly 0 or 1."""
        return all(g in (FALSE_GRADE, TRUE_GRADE) for g in self._grades.values())

    def restrict(self, objects: Iterable[ObjectId]) -> "GradedSet":
        """Keep only the given objects (missing ones are dropped)."""
        keep = set(objects)
        return GradedSet({o: g for o, g in self._grades.items() if o in keep})

    # ------------------------------------------------------------------
    # Connective-parameterised set algebra (Section 3)
    # ------------------------------------------------------------------

    def combine(
        self,
        other: "GradedSet",
        connective: Callable[[float, float], float],
    ) -> "GradedSet":
        """Pointwise combination over the union of both objects' domains.

        Missing objects contribute their implicit grade 0, so e.g.
        ``a.combine(b, min)`` is the standard fuzzy intersection and
        ``a.combine(b, max)`` the standard fuzzy union.
        """
        domain = set(self._grades) | set(other._grades)
        return GradedSet(
            {obj: connective(self.grade(obj), other.grade(obj)) for obj in domain}
        )

    def intersect(
        self,
        other: "GradedSet",
        tnorm: Callable[[float, float], float] = min,
    ) -> "GradedSet":
        """Fuzzy intersection under ``tnorm`` (default: the min rule)."""
        return self.combine(other, tnorm)

    def union(
        self,
        other: "GradedSet",
        conorm: Callable[[float, float], float] = max,
    ) -> "GradedSet":
        """Fuzzy union under ``conorm`` (default: the max rule)."""
        return self.combine(other, conorm)

    def negate(
        self,
        universe: Iterable[ObjectId],
        negation: Callable[[float], float] = standard_negation,
    ) -> "GradedSet":
        """Fuzzy complement over an explicit ``universe`` of objects.

        The universe must be explicit because objects absent from the
        graded set have grade 0, hence negated grade 1: negation is only
        meaningful relative to a known object population (Section 7 uses
        this to build the reversed list for ¬Q).
        """
        return GradedSet({obj: negation(self.grade(obj)) for obj in universe})

    def scale(self, factor: float) -> "GradedSet":
        """Multiply all grades by ``factor`` in [0, 1] (importance damping)."""
        factor = validate_grade(factor, context="scale factor")
        return GradedSet({o: g * factor for o, g in self._grades.items()})

    # ------------------------------------------------------------------
    # Alpha-cut decomposition (classical fuzzy-set structure theory)
    # ------------------------------------------------------------------

    def decompose(self) -> dict[float, frozenset[ObjectId]]:
        """The level-set decomposition: each distinct positive grade
        mapped to its (weak) alpha-cut.

        The resolution identity of fuzzy set theory [Za65]: a fuzzy set
        is fully determined by its alpha-cuts, and
        ``GradedSet.from_cuts(gs.decompose()) == gs.support()``.
        Nested by construction: higher levels are subsets of lower.
        """
        levels = sorted(
            {g for g in self._grades.values() if g > FALSE_GRADE}
        )
        return {alpha: self.cut(alpha) for alpha in levels}

    @classmethod
    def from_cuts(
        cls, cuts: Mapping[float, Iterable[ObjectId]]
    ) -> "GradedSet":
        """Reconstruct a graded set from alpha-cuts.

        Each object's grade is the highest level whose cut contains it
        (the supremum of the resolution identity). Inverse of
        :meth:`decompose` on supports.
        """
        grades: dict[ObjectId, float] = {}
        for alpha, members in cuts.items():
            alpha = validate_grade(alpha, context="cut level")
            for obj in members:
                if alpha > grades.get(obj, FALSE_GRADE):
                    grades[obj] = alpha
        return cls(grades)

    # ------------------------------------------------------------------
    # Equality / representation
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GradedSet):
            return NotImplemented
        return self._grades == other._grades

    def __hash__(self) -> int:
        return hash(frozenset(self._grades.items()))

    def approx_equal(self, other: "GradedSet", tolerance: float = 1e-9) -> bool:
        """Equality of domains and grades up to ``tolerance``."""
        if self.objects() != other.objects():
            return False
        return all(
            grades_close(g, other.grade(obj), tolerance)
            for obj, g in self._grades.items()
        )

    def __repr__(self) -> str:
        preview = ", ".join(f"{obj!r}: {g:.4g}" for obj, g in list(self)[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"GradedSet({{{preview}{suffix}}}, n={len(self)})"
