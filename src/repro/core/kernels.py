"""Vectorized aggregation kernels: the bulk computation phase.

The paper's cost model counts *accesses* (Section 5's c1*S + c2*R);
the computation phase — "Compute the grade mu_Q(x) = t(mu_A1(x), ...,
mu_Am(x)) for each object x that has been seen" (Section 4) — is free
in that model but very much not free on a real machine: evaluating an
aggregation one Python call per object dominates wall-clock once the
access layer is batched. This module evaluates the standard
aggregations over a whole *grade matrix* at once — one (m, N') float64
array in, one length-N' score vector out — with numpy doing the per-
object arithmetic in C.

Design constraints:

* **Access semantics untouched.** Kernels only ever see grades an
  algorithm already fetched through the instrumented sources; nothing
  here touches a source, so the Section 5 accounting is unchanged by
  construction.
* **Bit-for-bit parity where floats allow it.** Each kernel mirrors
  the exact operation order of its scalar counterpart — reductions
  over the list axis are sequential left-folds (numpy's ``reduce``
  over axis 0 applies rows in order), so min/max/product/Łukasiewicz/
  arithmetic-and-weighted-arithmetic/median/harmonic kernels reproduce
  the scalar ``evaluate`` path to the last bit. The geometric-mean
  family is the documented exception: ``x ** (1/m)`` goes through
  numpy's vectorised ``pow``, which may differ from libm's by one ulp
  (the property tests pin a 1e-12 relative tolerance there).
* **Pure-Python fallback.** Without numpy (``HAVE_NUMPY`` false) or
  without a registered kernel, :func:`evaluate_columns` falls back to
  the scalar ``evaluate_trusted`` fold — same answers, no new
  dependency. numpy is an accelerator, never a requirement.

Kernels are looked up by *exact* aggregation type (a subclass that
overrides ``aggregate`` must not inherit a kernel that no longer
matches it); instances of
:class:`~repro.core.aggregation.VectorizedAggregation` supply their
own ``aggregate_columns`` and win over the registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into CI images
    _np = None  # type: ignore[assignment]

#: True when numpy is importable; every kernel path is gated on this.
HAVE_NUMPY: bool = _np is not None

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.aggregation import AggregationFunction

__all__ = [
    "HAVE_NUMPY",
    "Kernel",
    "register_kernel",
    "kernel_for",
    "as_grade_matrix",
    "stack_rows",
    "evaluate_matrix",
    "evaluate_columns",
]

#: A kernel maps an (m, n) grade matrix to a length-n score vector.
Kernel = Callable[["np.ndarray"], "np.ndarray"]

#: Exact-type registry: aggregation class -> kernel factory. A factory
#: receives the aggregation *instance* (weighted kernels close over its
#: weights) and returns a kernel, or None to decline.
_FACTORIES: dict[type, Callable[["AggregationFunction"], Kernel | None]] = {}


def register_kernel(
    aggregation_type: type,
    factory: Callable[["AggregationFunction"], Kernel | None],
) -> None:
    """Register a kernel factory for an exact aggregation class.

    Lookup is by ``type(aggregation)`` — deliberately *not* the MRO —
    so a subclass that redefines ``aggregate`` never silently inherits
    a kernel computing the parent's formula. Re-registration replaces
    the entry (module reloads stay safe).
    """
    _FACTORIES[aggregation_type] = factory


def kernel_for(aggregation: "AggregationFunction") -> Kernel | None:
    """The bulk kernel for ``aggregation``, or None (scalar fallback).

    Checks, in order: numpy availability, the
    :class:`~repro.core.aggregation.VectorizedAggregation` capability
    (an instance-supplied kernel), then the exact-type registry.
    """
    if not HAVE_NUMPY:
        return None
    aggregate_columns = getattr(aggregation, "aggregate_columns", None)
    if aggregate_columns is not None:
        return aggregate_columns
    factory = _FACTORIES.get(type(aggregation))
    if factory is None:
        return None
    return factory(aggregation)


def as_grade_matrix(rows: Sequence[Sequence[float]]) -> "np.ndarray":
    """Stack m per-list grade rows into an (m, n) float64 matrix."""
    assert HAVE_NUMPY, "as_grade_matrix needs numpy; gate on HAVE_NUMPY"
    return _np.asarray(rows, dtype=_np.float64)


def stack_rows(vectors: Sequence["np.ndarray"]) -> "np.ndarray":
    """Gather per-child score vectors into an (m, n) kernel input.

    The helper compositional kernels use (e.g. the compiled query
    column plans of :mod:`repro.middleware.compile`): each child node
    evaluates to a length-n vector, and the parent connective's kernel
    wants them stacked as a matrix, rows in child order.
    """
    assert HAVE_NUMPY, "stack_rows needs numpy; gate on HAVE_NUMPY"
    return _np.stack(vectors)


def evaluate_matrix(
    aggregation: "AggregationFunction", matrix: "np.ndarray"
) -> "np.ndarray | None":
    """Kernel-evaluate every column of ``matrix``, or None if no kernel.

    The result is clipped into the grade domain exactly as the scalar
    path's ``clamp_grade`` does (a no-op for in-range values, so parity
    is preserved bit for bit where the kernel itself is exact).
    """
    kernel = kernel_for(aggregation)
    if kernel is None:
        return None
    return _np.clip(kernel(matrix), 0.0, 1.0)


def evaluate_columns(
    aggregation: "AggregationFunction",
    rows: Sequence[Sequence[float]],
    num_columns: int,
) -> list[float]:
    """Scores for ``num_columns`` objects from m per-list grade rows.

    The bulk entry point algorithms use for their computation phase:
    kernel path when available, otherwise the same scalar
    ``evaluate_trusted`` fold the pre-vectorization code ran. Always
    returns plain Python floats.
    """
    if HAVE_NUMPY:
        scores = evaluate_matrix(aggregation, as_grade_matrix(rows))
        if scores is not None:
            return scores.tolist()
    evaluate = aggregation.evaluate_trusted
    return [
        evaluate([row[j] for row in rows]) for j in range(num_columns)
    ]


# ----------------------------------------------------------------------
# The standard kernels. Each mirrors its scalar fold's operation order;
# comments note the only places (pow) where numpy may differ by an ulp.
# ----------------------------------------------------------------------


def _min_kernel(matrix: "np.ndarray") -> "np.ndarray":
    return _np.minimum.reduce(matrix, axis=0)


def _max_kernel(matrix: "np.ndarray") -> "np.ndarray":
    return _np.maximum.reduce(matrix, axis=0)


def _product_kernel(matrix: "np.ndarray") -> "np.ndarray":
    return _np.multiply.reduce(matrix, axis=0)


def _lukasiewicz_tnorm_kernel(matrix: "np.ndarray") -> "np.ndarray":
    # Same fold as BoundedDifference.pair iterated: (acc - 1) + row,
    # clamped at 0 per step (the Sterbenz-safe order of tnorms.py).
    acc = matrix[0]
    for row in matrix[1:]:
        acc = _np.maximum(0.0, (acc - 1.0) + row)
    return acc


def _lukasiewicz_conorm_kernel(matrix: "np.ndarray") -> "np.ndarray":
    # BoundedSum.pair iterated: min(1, acc + row) per step.
    acc = matrix[0]
    for row in matrix[1:]:
        acc = _np.minimum(1.0, acc + row)
    return acc


def _arithmetic_mean_kernel(matrix: "np.ndarray") -> "np.ndarray":
    # add.reduce over axis 0 is a sequential row fold — identical to
    # Python's sum() order, so the quotient matches bit for bit.
    return _np.add.reduce(matrix, axis=0) / matrix.shape[0]


def _geometric_mean_kernel(matrix: "np.ndarray") -> "np.ndarray":
    # The product fold is exact; the final ** (1/m) is numpy's pow,
    # which may differ from libm by one ulp (documented tolerance).
    return _np.multiply.reduce(matrix, axis=0) ** (1.0 / matrix.shape[0])


def _harmonic_mean_kernel(matrix: "np.ndarray") -> "np.ndarray":
    # Scalar: 0 if any grade is 0, else m / sum(1/g). 1/0 -> inf makes
    # the sum inf and m/inf exactly 0.0, so one expression covers both
    # branches; errstate silences the intentional division by zero and
    # the overflow a subnormal grade's reciprocal triggers (the scalar
    # path overflows to inf silently; values agree either way).
    with _np.errstate(divide="ignore", over="ignore"):
        return matrix.shape[0] / _np.add.reduce(
            _np.divide(1.0, matrix), axis=0
        )


def _median_kernel_factory(aggregation: "AggregationFunction"):
    def kernel(matrix: "np.ndarray") -> "np.ndarray":
        # The *lower* median, as Median.aggregate takes it — not
        # np.median, which averages the middle pair for even m.
        return _np.sort(matrix, axis=0)[(matrix.shape[0] - 1) // 2]

    return kernel


def _weighted_arithmetic_factory(aggregation):
    weights = list(aggregation.weights)

    def kernel(matrix: "np.ndarray") -> "np.ndarray":
        # Fold w_i * row_i sequentially (same order as the scalar
        # sum()); a BLAS dot could reassociate and break parity.
        acc = weights[0] * matrix[0]
        for w, row in zip(weights[1:], matrix[1:]):
            acc = acc + w * row
        return acc

    return kernel


def _weighted_geometric_factory(aggregation):
    weights = list(aggregation.weights)

    def kernel(matrix: "np.ndarray") -> "np.ndarray":
        # Scalar skips w == 0 terms and returns 0 on a zero grade with
        # positive weight; row ** w reproduces both (0 ** w is exactly
        # 0.0 for w > 0), with the pow-ulp caveat of the geometric mean.
        acc = None
        for w, row in zip(weights, matrix):
            if w == 0.0:
                continue
            term = row**w
            acc = term if acc is None else acc * term
        if acc is None:  # pragma: no cover - all-zero weights are rejected
            return _np.ones(matrix.shape[1])
        return acc

    return kernel


def _simple(kernel: Kernel):
    """Factory for kernels that ignore the aggregation instance."""

    def factory(aggregation) -> Kernel:
        return kernel

    return factory


def _register_standard_kernels() -> None:
    from repro.core.means import (
        ArithmeticMean,
        GeometricMean,
        HarmonicMean,
        Median,
        WeightedArithmeticMean,
        WeightedGeometricMean,
    )
    from repro.core.tconorms import BoundedSum, MaximumTConorm
    from repro.core.tnorms import (
        AlgebraicProduct,
        BoundedDifference,
        MinimumTNorm,
    )

    register_kernel(MinimumTNorm, _simple(_min_kernel))
    register_kernel(MaximumTConorm, _simple(_max_kernel))
    register_kernel(AlgebraicProduct, _simple(_product_kernel))
    register_kernel(BoundedDifference, _simple(_lukasiewicz_tnorm_kernel))
    register_kernel(BoundedSum, _simple(_lukasiewicz_conorm_kernel))
    register_kernel(ArithmeticMean, _simple(_arithmetic_mean_kernel))
    register_kernel(GeometricMean, _simple(_geometric_mean_kernel))
    register_kernel(HarmonicMean, _simple(_harmonic_mean_kernel))
    register_kernel(Median, _median_kernel_factory)
    register_kernel(WeightedArithmeticMean, _weighted_arithmetic_factory)
    register_kernel(WeightedGeometricMean, _weighted_geometric_factory)


_register_standard_kernels()
