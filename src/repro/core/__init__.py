"""Core semantics: graded sets, aggregation functions, queries.

This subpackage implements Sections 2 and 3 of the paper — the
graded-set data model, the catalogue of aggregation functions
(triangular norms and co-norms, means, median), the property machinery
(monotonicity / strictness), the query AST and its fuzzy evaluation
rules, logical-equivalence checking (Theorem 3.1), and the [FW97]
weighted-conjunction formula.
"""

from repro.core.aggregation import (
    AggregationFunction,
    BinaryAggregation,
    ConstantAggregation,
    DualTConorm,
    DualTNorm,
    FunctionAggregation,
    TConorm,
    TNorm,
    VectorizedAggregation,
    iterated,
)
from repro.core.certify import (
    EXACT,
    EXACT_GUARANTEE,
    CertifiedResult,
    GradeBounds,
    Guarantee,
    QualityContract,
    StoppingRule,
    as_contract,
)
from repro.core.kernels import (
    HAVE_NUMPY,
    evaluate_columns,
    kernel_for,
    register_kernel,
)
from repro.core.equivalence import (
    CANONICAL_IDENTITIES,
    crisp_equivalent,
    fuzzy_equivalent,
    preserves_equivalence,
)
from repro.core.graded_set import GradedSet, ObjectId
from repro.core.grades import (
    FALSE_GRADE,
    TRUE_GRADE,
    crisp_grade,
    is_crisp,
    is_valid_grade,
    standard_negation,
    validate_grade,
)
from repro.core.means import (
    ARITHMETIC_MEAN,
    GEOMETRIC_MEAN,
    HARMONIC_MEAN,
    MEDIAN,
    ArithmeticMean,
    GeometricMean,
    GymnasticsTrimmedMean,
    HarmonicMean,
    Median,
    WeightedArithmeticMean,
    WeightedGeometricMean,
    median3,
)
from repro.core.parametric import (
    HamacherFamily,
    YagerFamily,
    hamacher_conorm,
    yager_conorm,
)
from repro.core.negations import (
    STANDARD_NEGATION,
    Negation,
    StandardNegation,
    SugenoNegation,
    YagerNegation,
)
from repro.core.properties import (
    PropertyReport,
    check_associative,
    check_commutative,
    check_conjunction_conservation,
    check_de_morgan,
    check_disjunction_conservation,
    check_monotone,
    check_strict,
    classify,
)
from repro.core.query import And, AtomicQuery, Ft, Not, Or, Query, Weighted, atom
from repro.core.semantics import STANDARD_FUZZY, FuzzySemantics, QueryClassification
from repro.core.tconorms import (
    ALGEBRAIC_SUM,
    BOUNDED_SUM,
    DRASTIC_SUM,
    DUAL_PAIRS,
    EINSTEIN_SUM,
    HAMACHER_SUM,
    MAXIMUM,
    TCONORMS,
    get_tconorm,
)
from repro.core.tnorms import (
    ALGEBRAIC_PRODUCT,
    BOUNDED_DIFFERENCE,
    DRASTIC_PRODUCT,
    EINSTEIN_PRODUCT,
    HAMACHER_PRODUCT,
    MINIMUM,
    TNORMS,
    get_tnorm,
)
from repro.core.weights import FaginWimmersWeighting

__all__ = [
    # grades
    "FALSE_GRADE",
    "TRUE_GRADE",
    "validate_grade",
    "is_valid_grade",
    "is_crisp",
    "crisp_grade",
    "standard_negation",
    # graded sets
    "GradedSet",
    "ObjectId",
    # aggregation machinery
    "AggregationFunction",
    "BinaryAggregation",
    "TNorm",
    "TConorm",
    "DualTNorm",
    "DualTConorm",
    "ConstantAggregation",
    "FunctionAggregation",
    "VectorizedAggregation",
    "iterated",
    # certified results & quality contracts
    "QualityContract",
    "StoppingRule",
    "Guarantee",
    "GradeBounds",
    "CertifiedResult",
    "EXACT",
    "EXACT_GUARANTEE",
    "as_contract",
    # vectorized kernels
    "HAVE_NUMPY",
    "kernel_for",
    "register_kernel",
    "evaluate_columns",
    # t-norms
    "MINIMUM",
    "DRASTIC_PRODUCT",
    "BOUNDED_DIFFERENCE",
    "EINSTEIN_PRODUCT",
    "ALGEBRAIC_PRODUCT",
    "HAMACHER_PRODUCT",
    "TNORMS",
    "get_tnorm",
    # t-conorms
    "MAXIMUM",
    "DRASTIC_SUM",
    "BOUNDED_SUM",
    "EINSTEIN_SUM",
    "ALGEBRAIC_SUM",
    "HAMACHER_SUM",
    "TCONORMS",
    "DUAL_PAIRS",
    "get_tconorm",
    # parametric families
    "HamacherFamily",
    "YagerFamily",
    "hamacher_conorm",
    "yager_conorm",
    # negations
    "Negation",
    "StandardNegation",
    "SugenoNegation",
    "YagerNegation",
    "STANDARD_NEGATION",
    # means
    "ArithmeticMean",
    "GeometricMean",
    "HarmonicMean",
    "WeightedArithmeticMean",
    "WeightedGeometricMean",
    "Median",
    "GymnasticsTrimmedMean",
    "ARITHMETIC_MEAN",
    "GEOMETRIC_MEAN",
    "HARMONIC_MEAN",
    "MEDIAN",
    "median3",
    # properties
    "PropertyReport",
    "check_monotone",
    "check_strict",
    "check_conjunction_conservation",
    "check_disjunction_conservation",
    "check_commutative",
    "check_associative",
    "check_de_morgan",
    "classify",
    # queries & semantics
    "Query",
    "AtomicQuery",
    "And",
    "Or",
    "Not",
    "Ft",
    "Weighted",
    "atom",
    "FuzzySemantics",
    "STANDARD_FUZZY",
    "QueryClassification",
    # equivalence
    "crisp_equivalent",
    "fuzzy_equivalent",
    "preserves_equivalence",
    "CANONICAL_IDENTITIES",
    # weights
    "FaginWimmersWeighting",
]
