"""Parametric t-norm families (the wider Section 3 literature).

Section 3 samples six fixed t-norms from the literature it cites
([SS63, DP80, BD86, Mi89]); that literature actually organises them
into *parametric families* that sweep continuously between the paper's
examples. Two classical families are provided:

* **Hamacher family** ``t_g(x, y) = x*y / (g + (1-g)*(x+y-x*y))``,
  g >= 0: g = 0 is the paper's Hamacher product, g = 1 the algebraic
  product, and g -> infinity approaches the drastic product.
* **Yager family** ``t_p(x, y) = max(0, 1 - ((1-x)^p + (1-y)^p)^(1/p))``,
  p > 0: p = 1 is the paper's bounded difference and p -> infinity
  approaches min.

Every member is a genuine t-norm (verified by the property checkers in
the tests), hence monotone and strict — so Theorem 6.5's matching
bounds apply across the whole family, which experiment E12 exercises
pointwise.
"""

from __future__ import annotations

from repro.core.aggregation import DualTConorm, TConorm, TNorm

__all__ = [
    "HamacherFamily",
    "YagerFamily",
    "hamacher_conorm",
    "yager_conorm",
]


class HamacherFamily(TNorm):
    """The Hamacher t-norm with parameter ``gamma`` >= 0.

    >>> HamacherFamily(1.0)(0.5, 0.4)   # gamma=1 is the algebraic product
    0.2
    """

    def __init__(self, gamma: float) -> None:
        if gamma < 0:
            raise ValueError(f"Hamacher parameter must be >= 0, got {gamma}")
        self.gamma = gamma
        self.name = f"hamacher[{gamma:g}]"

    def pair(self, x: float, y: float) -> float:
        denominator = self.gamma + (1.0 - self.gamma) * (x + y - x * y)
        if denominator == 0.0:
            # Only reachable at gamma = 0 with x = y = 0.
            return 0.0
        return (x * y) / denominator


class YagerFamily(TNorm):
    """The Yager t-norm with parameter ``p`` > 0.

    >>> round(YagerFamily(1.0)(0.7, 0.6), 9)   # p=1: bounded difference
    0.3
    """

    def __init__(self, p: float) -> None:
        if p <= 0:
            raise ValueError(f"Yager parameter must be > 0, got {p}")
        self.p = p
        self.name = f"yager-tnorm[{p:g}]"

    def pair(self, x: float, y: float) -> float:
        inner = ((1.0 - x) ** self.p + (1.0 - y) ** self.p) ** (1.0 / self.p)
        return max(0.0, 1.0 - inner)


def hamacher_conorm(gamma: float) -> TConorm:
    """The co-norm dual to :class:`HamacherFamily` under 1 - x."""
    return DualTConorm(HamacherFamily(gamma))


def yager_conorm(p: float) -> TConorm:
    """The co-norm dual to :class:`YagerFamily` under 1 - x."""
    return DualTConorm(YagerFamily(p))
