"""The grade domain: real numbers in the unit interval [0, 1].

Section 2 of the paper: "a grade is a real number in the interval
[0, 1] … a grade of 1 represents a perfect match", and for traditional
(crisp) database queries "the grade for each object is either 0 or 1".

This module centralises validation and the handful of numeric helpers
the rest of the library needs, so every other module can assume grades
are already well-formed floats.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.exceptions import GradeRangeError

#: The grade meaning "the query is false about the object".
FALSE_GRADE: float = 0.0

#: The grade meaning "a perfect match".
TRUE_GRADE: float = 1.0

#: Default tolerance for grade comparisons where floating-point rounding
#: may occur (e.g. after aggregation-function arithmetic).
GRADE_TOLERANCE: float = 1e-12


def validate_grade(value: object, context: str = "") -> float:
    """Return ``value`` as a float grade, or raise :class:`GradeRangeError`.

    Accepts ints, floats and numpy floating scalars (``np.float64`` and
    friends convert cleanly through ``float()``, so grades read back
    from the columnar backend's numpy columns validate unchanged).
    Bools are also accepted — they are ints 0/1, the crisp grades of
    Section 2. NaN, infinities and out-of-range reals are rejected.
    """
    try:
        grade = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise GradeRangeError(value, context) from None
    if math.isnan(grade) or not (FALSE_GRADE <= grade <= TRUE_GRADE):
        raise GradeRangeError(value, context)
    return grade


def validate_grades(values: Iterable[object], context: str = "") -> list[float]:
    """Validate every grade in ``values``; return them as a list of floats."""
    return [validate_grade(v, context) for v in values]


def is_valid_grade(value: object) -> bool:
    """Return True iff ``value`` is a real number in [0, 1]."""
    try:
        validate_grade(value)
    except GradeRangeError:
        return False
    return True


def is_crisp(grade: float, tolerance: float = 0.0) -> bool:
    """Return True iff ``grade`` is (within ``tolerance`` of) 0 or 1.

    Crisp grades are what traditional database queries produce
    (Section 2): 0 for "false about the object", 1 for "true".
    """
    return (
        abs(grade - FALSE_GRADE) <= tolerance or abs(grade - TRUE_GRADE) <= tolerance
    )


def crisp_grade(truth: bool) -> float:
    """Map a Boolean truth value to its crisp grade (True -> 1.0)."""
    return TRUE_GRADE if truth else FALSE_GRADE


def clamp_grade(value: float) -> float:
    """Clamp a real number into [0, 1].

    Used only to absorb floating-point overshoot from aggregation
    arithmetic (e.g. Einstein/Hamacher products can land a hair outside
    the interval); genuinely out-of-range data should be rejected with
    :func:`validate_grade` instead.
    """
    if value < FALSE_GRADE:
        return FALSE_GRADE
    if value > TRUE_GRADE:
        return TRUE_GRADE
    return value


def grades_close(a: float, b: float, tolerance: float = GRADE_TOLERANCE) -> bool:
    """Return True iff two grades are equal up to ``tolerance``."""
    return abs(a - b) <= tolerance


def standard_negation(grade: float) -> float:
    """The standard fuzzy negation rule of Section 3: 1 - grade."""
    return TRUE_GRADE - grade
