"""Negation functions for the fuzzy semantics.

Section 3 gives the standard rule ("Negation rule:
mu_notA(x) = 1 - mu_A(x)") and notes that [BD86] established De Morgan
duality "for suitable negation aggregation functions n (such as the
standard n(x) = 1 - x)". Besides the standard negation we provide the
two classical parametric families (Sugeno and Yager), which are useful
when modelling a subsystem whose internal semantics differs from
Garlic's (Section 8).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.grades import clamp_grade, validate_grade

__all__ = [
    "Negation",
    "StandardNegation",
    "SugenoNegation",
    "YagerNegation",
    "STANDARD_NEGATION",
]


class Negation(ABC):
    """A fuzzy negation: decreasing, with n(0) = 1 and n(1) = 0."""

    name: str = "negation"

    @abstractmethod
    def apply(self, grade: float) -> float:
        """Negate an already-validated grade."""

    def __call__(self, grade: float) -> float:
        return clamp_grade(self.apply(validate_grade(grade, context=self.name)))

    def is_involutive(self, samples: int = 101, tolerance: float = 1e-9) -> bool:
        """Check n(n(x)) = x on an even grid of ``samples`` points."""
        for i in range(samples):
            x = i / (samples - 1)
            if abs(self(self(x)) - x) > tolerance:
                return False
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StandardNegation(Negation):
    """n(x) = 1 - x — the paper's negation rule (Section 3)."""

    name = "standard"

    def apply(self, grade: float) -> float:
        return 1.0 - grade


class SugenoNegation(Negation):
    """Sugeno's family: n(x) = (1 - x) / (1 + lam * x), lam > -1.

    lam = 0 recovers the standard negation. Involutive for every lam.
    """

    def __init__(self, lam: float) -> None:
        if lam <= -1.0:
            raise ValueError(f"Sugeno parameter must be > -1, got {lam}")
        self.lam = lam
        self.name = f"sugeno({lam:g})"

    def apply(self, grade: float) -> float:
        return (1.0 - grade) / (1.0 + self.lam * grade)


class YagerNegation(Negation):
    """Yager's family: n(x) = (1 - x**w) ** (1/w), w > 0.

    w = 1 recovers the standard negation. Involutive for every w (as a
    real function; see the note on floats below).

    The w-th-root round trip is evaluated as
    ``exp(log1p(-x**w) / w)``, which keeps the full precision of
    ``x**w`` instead of rounding ``1 - x**w`` first — the naive form
    loses the entire tail for small grades. Involutiveness still
    cannot hold exactly in double precision near the corner where
    ``x**w`` drops below the machine epsilon: there ``n(x)`` is closer
    to 1 than 1's neighbouring float, so the representable value 1.0
    is returned and the round trip collapses to 0 — a representability
    limit, not an algorithmic error.
    """

    def __init__(self, w: float) -> None:
        if w <= 0.0:
            raise ValueError(f"Yager parameter must be > 0, got {w}")
        self.w = w
        self.name = f"yager({w:g})"

    def apply(self, grade: float) -> float:
        if grade <= 0.0:
            return 1.0
        if grade >= 1.0:
            return 0.0
        t = grade**self.w
        if t >= 1.0:
            return 0.0
        return math.exp(math.log1p(-t) / self.w)


#: Shared singleton for the standard rule.
STANDARD_NEGATION = StandardNegation()
