"""Empirical checkers for the properties Section 3 cares about.

The paper's theorems need exactly two properties of an aggregation
function: **monotonicity** (upper bound, Theorem 5.3 via Theorem 4.2)
and **strictness** (lower bound, Theorem 6.4). The t-norm/co-norm
definitions add ∧/∨-conservation, commutativity and associativity, and
[BD86] adds De Morgan duality.

These checkers evaluate a function on dense grids plus optional random
samples and report violations. They are used two ways:

* in the test-suite, to verify that every concrete aggregation's
  *declared* ``monotone`` / ``strict`` flags match its behaviour;
* by users, to classify a custom aggregation before trusting the
  algorithm selection in :mod:`repro.algorithms.selection`.

A grid checker cannot *prove* a property, but for the rational-free
closed forms in this library a (17-point)^m grid with boundary points
included catches every violation the paper's analysis hinges on; the
tests additionally run randomized checks via hypothesis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.grades import clamp_grade

__all__ = [
    "PropertyReport",
    "grid_points",
    "check_monotone",
    "check_strict",
    "check_conjunction_conservation",
    "check_disjunction_conservation",
    "check_commutative",
    "check_associative",
    "check_de_morgan",
    "classify",
]

Binary = Callable[[float, float], float]
MAry = Callable[..., float]

#: Default 1-D grid: includes both endpoints and near-boundary points,
#: where conservation and strictness violations live.
DEFAULT_GRID: tuple[float, ...] = (
    0.0,
    1e-9,
    0.05,
    0.1,
    0.2,
    0.25,
    1 / 3,
    0.4,
    0.5,
    0.6,
    2 / 3,
    0.75,
    0.8,
    0.9,
    0.95,
    1.0 - 1e-9,
    1.0,
)


@dataclass
class PropertyReport:
    """Outcome of a property check: holds, plus any counterexamples."""

    property_name: str
    holds: bool
    counterexamples: list[tuple] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:
        status = "holds" if self.holds else f"fails ({len(self.counterexamples)} cx)"
        return f"<PropertyReport {self.property_name}: {status}>"


def grid_points(
    arity: int, grid: Sequence[float] = DEFAULT_GRID
) -> Iterable[tuple[float, ...]]:
    """All points of the ``arity``-dimensional grid (cartesian product)."""
    return itertools.product(grid, repeat=arity)


def _record(report: PropertyReport, example: tuple, max_examples: int = 5) -> None:
    report.holds = False
    if len(report.counterexamples) < max_examples:
        report.counterexamples.append(example)


def check_monotone(
    func: MAry,
    arity: int,
    grid: Sequence[float] = DEFAULT_GRID,
    tolerance: float = 1e-12,
) -> PropertyReport:
    """Check t(x) <= t(x') for every componentwise x <= x' pair on the grid.

    Rather than compare all grid-point pairs (quadratic blowup), we test
    single-coordinate increases along the sorted grid, which is
    equivalent for componentwise order on a product grid: any monotone
    violation between comparable grid points implies a violation along
    some single-coordinate step.
    """
    report = PropertyReport("monotone", True)
    ordered = sorted(set(grid))
    for point in itertools.product(ordered, repeat=arity):
        base = func(*point)
        for axis in range(arity):
            idx = ordered.index(point[axis])
            if idx + 1 >= len(ordered):
                continue
            bumped = list(point)
            bumped[axis] = ordered[idx + 1]
            if func(*bumped) < base - tolerance:
                _record(report, (tuple(point), tuple(bumped)))
    return report


def check_strict(
    func: MAry,
    arity: int,
    grid: Sequence[float] = DEFAULT_GRID,
    tolerance: float = 1e-12,
) -> PropertyReport:
    """Check t(x1..xm) = 1 iff every xi = 1 (Section 3's strictness)."""
    report = PropertyReport("strict", True)
    ones = (1.0,) * arity
    if abs(func(*ones) - 1.0) > tolerance:
        _record(report, (ones, func(*ones)))
    for point in grid_points(arity, grid):
        if all(x == 1.0 for x in point):
            continue
        value = func(*point)
        if value >= 1.0 - tolerance:
            _record(report, (point, value))
    return report


def check_conjunction_conservation(
    pair: Binary, tolerance: float = 1e-12, grid: Sequence[float] = DEFAULT_GRID
) -> PropertyReport:
    """∧-conservation: t(0, 0) = 0 and t(x, 1) = t(1, x) = x (Section 3)."""
    report = PropertyReport("conjunction-conservation", True)
    if abs(pair(0.0, 0.0)) > tolerance:
        _record(report, ((0.0, 0.0), pair(0.0, 0.0)))
    for x in grid:
        if abs(pair(x, 1.0) - x) > tolerance:
            _record(report, ((x, 1.0), pair(x, 1.0)))
        if abs(pair(1.0, x) - x) > tolerance:
            _record(report, ((1.0, x), pair(1.0, x)))
    return report


def check_disjunction_conservation(
    pair: Binary, tolerance: float = 1e-12, grid: Sequence[float] = DEFAULT_GRID
) -> PropertyReport:
    """∨-conservation: s(1, 1) = 1 and s(x, 0) = s(0, x) = x (Section 3)."""
    report = PropertyReport("disjunction-conservation", True)
    if abs(pair(1.0, 1.0) - 1.0) > tolerance:
        _record(report, ((1.0, 1.0), pair(1.0, 1.0)))
    for x in grid:
        if abs(pair(x, 0.0) - x) > tolerance:
            _record(report, ((x, 0.0), pair(x, 0.0)))
        if abs(pair(0.0, x) - x) > tolerance:
            _record(report, ((0.0, x), pair(0.0, x)))
    return report


def check_commutative(
    pair: Binary, tolerance: float = 1e-12, grid: Sequence[float] = DEFAULT_GRID
) -> PropertyReport:
    """Commutativity: t(x, y) = t(y, x) on the grid."""
    report = PropertyReport("commutative", True)
    for x, y in itertools.combinations(grid, 2):
        if abs(pair(x, y) - pair(y, x)) > tolerance:
            _record(report, ((x, y), pair(x, y), pair(y, x)))
    return report


def check_associative(
    pair: Binary, tolerance: float = 1e-9, grid: Sequence[float] = DEFAULT_GRID
) -> PropertyReport:
    """Associativity: t(t(x, y), z) = t(x, t(y, z)) on the grid.

    The tolerance is looser than elsewhere because nested rational
    forms (Einstein, Hamacher) accumulate floating-point error.
    """
    report = PropertyReport("associative", True)
    for x, y, z in itertools.product(grid, repeat=3):
        left = pair(clamp_grade(pair(x, y)), z)
        right = pair(x, clamp_grade(pair(y, z)))
        if abs(left - right) > tolerance:
            _record(report, ((x, y, z), left, right))
    return report


def check_de_morgan(
    tnorm: Binary,
    conorm: Binary,
    negation: Callable[[float], float],
    tolerance: float = 1e-9,
    grid: Sequence[float] = DEFAULT_GRID,
) -> PropertyReport:
    """The generalised De Morgan laws of [BD86]:

        s(x, y) = n(t(n(x), n(y)))   and   t(x, y) = n(s(n(x), n(y))).
    """
    report = PropertyReport("de-morgan", True)
    for x, y in itertools.product(grid, repeat=2):
        via_t = negation(tnorm(negation(x), negation(y)))
        if abs(conorm(x, y) - via_t) > tolerance:
            _record(report, ("s", (x, y), conorm(x, y), via_t))
        via_s = negation(conorm(negation(x), negation(y)))
        if abs(tnorm(x, y) - via_s) > tolerance:
            _record(report, ("t", (x, y), tnorm(x, y), via_s))
    return report


def classify(func: MAry, arity: int) -> dict[str, bool]:
    """Classify an m-ary aggregation on the two properties the paper needs.

    Returns ``{"monotone": ..., "strict": ...}`` — enough to decide
    which theorems apply: monotone => A0 is correct (Theorem 4.2);
    monotone and strict => A0 is also optimal (Theorem 6.5).
    """
    return {
        "monotone": bool(check_monotone(func, arity)),
        "strict": bool(check_strict(func, arity)),
    }
