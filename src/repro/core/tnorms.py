"""The triangular norms catalogued in Section 3 of the paper.

    "Below are some examples of triangular norms and their corresponding
    co-norms [BD86, Mi89]: Minimum … Drastic product … Bounded
    difference … Einstein product … Algebraic product … Hamacher
    product."

Every t-norm here is monotone and strict (Section 3: strictness
"follows from the fact [DP80] that every triangular norm is bounded
below by the drastic product and above by the min"), so the paper's
matching upper and lower bounds — and hence algorithm A0's optimality —
apply to each of them (Theorem 6.5).

All formulas are written exactly as printed in the paper; degenerate
0/0 cases (Hamacher at (0, 0)) follow the standard convention t(0,0)=0.
"""

from __future__ import annotations

from repro.core.aggregation import TNorm

__all__ = [
    "MinimumTNorm",
    "DrasticProduct",
    "BoundedDifference",
    "EinsteinProduct",
    "AlgebraicProduct",
    "HamacherProduct",
    "MINIMUM",
    "DRASTIC_PRODUCT",
    "BOUNDED_DIFFERENCE",
    "EINSTEIN_PRODUCT",
    "ALGEBRAIC_PRODUCT",
    "HAMACHER_PRODUCT",
    "TNORMS",
    "get_tnorm",
]


class MinimumTNorm(TNorm):
    """The standard fuzzy conjunction rule of Zadeh [Za65]: min.

    By Theorem 3.1 (Yager / Dubois-Prade, after Bellman-Giertz), min is
    the *unique* monotone conjunction that preserves logical equivalence
    of ∧/∨-queries. It is the largest t-norm.
    """

    name = "min"

    def pair(self, x: float, y: float) -> float:
        return x if x <= y else y

    def aggregate(self, grades) -> float:
        # min of validated grades never leaves [0, 1]; skip the
        # pairwise clamp-fold of BinaryAggregation on the hot path.
        return min(grades)

    def evaluate_trusted(self, grades) -> float:
        return min(grades)


class DrasticProduct(TNorm):
    """t(x, y) = min(x, y) if max(x, y) = 1, else 0 — the smallest t-norm."""

    name = "drastic-product"

    def pair(self, x: float, y: float) -> float:
        if x == 1.0 or y == 1.0:
            return x if x <= y else y
        return 0.0


class BoundedDifference(TNorm):
    """t(x, y) = max(0, x + y - 1) (the Lukasiewicz t-norm)."""

    name = "bounded-difference"

    def pair(self, x: float, y: float) -> float:
        # (x - 1.0) + y, not x + y - 1.0: x - 1 is exact for x in
        # [0.5, 1] (Sterbenz), so t(x, y) < 1 whenever x < 1 or y < 1 —
        # the naive order rounds e.g. 1 + (1 - eps/2) up to 2 and
        # reports a strict-boundary grade of exactly 1.
        return max(0.0, (x - 1.0) + y)


class EinsteinProduct(TNorm):
    """t(x, y) = x*y / (2 - (x + y - x*y))."""

    name = "einstein-product"

    def pair(self, x: float, y: float) -> float:
        return (x * y) / (2.0 - (x + y - x * y))


class AlgebraicProduct(TNorm):
    """t(x, y) = x*y (the probabilistic product)."""

    name = "algebraic-product"

    def pair(self, x: float, y: float) -> float:
        return x * y


class HamacherProduct(TNorm):
    """t(x, y) = x*y / (x + y - x*y), with t(0, 0) = 0."""

    name = "hamacher-product"

    def pair(self, x: float, y: float) -> float:
        if x == 0.0 and y == 0.0:
            return 0.0
        return (x * y) / (x + y - x * y)


#: Shared singleton instances (t-norms are stateless).
MINIMUM = MinimumTNorm()
DRASTIC_PRODUCT = DrasticProduct()
BOUNDED_DIFFERENCE = BoundedDifference()
EINSTEIN_PRODUCT = EinsteinProduct()
ALGEBRAIC_PRODUCT = AlgebraicProduct()
HAMACHER_PRODUCT = HamacherProduct()

#: Registry of all t-norms from the paper, by name.
TNORMS: dict[str, TNorm] = {
    tn.name: tn
    for tn in (
        MINIMUM,
        DRASTIC_PRODUCT,
        BOUNDED_DIFFERENCE,
        EINSTEIN_PRODUCT,
        ALGEBRAIC_PRODUCT,
        HAMACHER_PRODUCT,
    )
}


def get_tnorm(name: str) -> TNorm:
    """Look up a t-norm by its registry name.

    >>> get_tnorm("min").pair(0.3, 0.8)
    0.3
    """
    try:
        return TNORMS[name]
    except KeyError:
        known = ", ".join(sorted(TNORMS))
        raise KeyError(f"unknown t-norm {name!r}; known: {known}") from None
