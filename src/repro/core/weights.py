"""Weighted conjunctions: the Fagin-Wimmers formula of [FW97].

Section 4 of the paper notes that algorithm A0 "applies also when the
user can weight the relative importance of the conjuncts … since such
'weighted conjunctions' are also monotone", citing the companion paper
[FW97] ("A Formula for Incorporating Weights into Scoring Rules").

That formula: given an unweighted (symmetric, m-ary) aggregation t and
weights theta_1 >= theta_2 >= ... >= theta_m >= 0 summing to 1 (sort and
normalise first), define

    f_Theta(x_1, ..., x_m) =
        sum_{i=1..m}  i * (theta_i - theta_{i+1}) * t(x_1, ..., x_i)

with theta_{m+1} = 0, where the x's are listed in the weight order.
The coefficients i*(theta_i - theta_{i+1}) are non-negative and sum to
sum_i theta_i = 1, so f is a convex combination of t on weight-prefixes.
Consequences used here:

* equal weights recover t exactly;
* a weight-0 conjunct is ignored entirely;
* f is monotone whenever t is (so A0 applies — Theorem 5.4);
* f is strict iff t is strict and every weight is positive.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.aggregation import AggregationFunction

__all__ = ["FaginWimmersWeighting"]


class FaginWimmersWeighting(AggregationFunction):
    """The [FW97] weighted version of a base aggregation function.

    Parameters
    ----------
    base:
        The unweighted aggregation (typically a t-norm). Must accept
        any arity from 1 to ``len(weights)`` — every
        :class:`~repro.core.aggregation.BinaryAggregation` does.
    weights:
        Relative importances, non-negative, not all zero. They are
        normalised to sum to 1; order corresponds to argument order.

    Examples
    --------
    >>> from repro.core.tnorms import MINIMUM
    >>> w = FaginWimmersWeighting(MINIMUM, [2, 1])   # colour twice shape
    >>> round(w(0.5, 0.9), 6)                         # (1/3)*0.5 + (2/3)*min
    0.5
    >>> w(0.9, 0.5) == (1/3) * 0.9 + (2/3) * 0.5
    True
    """

    def __init__(
        self, base: AggregationFunction, weights: Sequence[float]
    ) -> None:
        if base.arity is not None:
            # The formula evaluates t on every weight-prefix of sizes
            # 1..m, so the base must accept any arity.
            raise ValueError(
                f"base aggregation {base.name!r} has fixed arity "
                f"{base.arity}, incompatible with prefix evaluation"
            )
        self.base = base
        self.weights = self.normalise(weights)
        self.arity = len(self.weights)
        self.monotone = base.monotone
        self.strict = base.strict and all(w > 0 for w in self.weights)
        self.name = f"fw97({base.name}; {', '.join(f'{w:g}' for w in self.weights)})"

    @staticmethod
    def normalise(weights: Sequence[float]) -> tuple[float, ...]:
        """Validate and normalise weights to sum to 1.

        Idempotent: weights already summing to 1 within floating-point
        tolerance are returned unchanged, so serialising and re-parsing
        a weighted query yields bit-identical weights.
        """
        if not weights:
            raise ValueError("weights must be non-empty")
        ws = [float(w) for w in weights]
        if any(w < 0 for w in ws):
            raise ValueError(f"weights must be non-negative, got {ws}")
        total = sum(ws)
        if total <= 0:
            raise ValueError("weights must not all be zero")
        if abs(total - 1.0) <= 1e-12:
            return tuple(ws)
        return tuple(w / total for w in ws)

    def aggregate(self, grades: Sequence[float]) -> float:
        # Order (weight, grade) pairs by weight, descending. The formula
        # is stated for theta_1 >= ... >= theta_m; ties contribute a
        # zero coefficient so their relative order is immaterial for
        # any commutative base.
        ordered = sorted(zip(self.weights, grades), key=lambda wg: -wg[0])
        thetas = [w for w, _ in ordered] + [0.0]
        xs = [g for _, g in ordered]
        total = 0.0
        for i in range(1, len(xs) + 1):
            coeff = i * (thetas[i - 1] - thetas[i])
            if coeff == 0.0:
                continue
            total += coeff * self.base(*xs[:i])
        return total
