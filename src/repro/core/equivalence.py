"""Logical equivalence of queries: the substance of Theorem 3.1.

    "The standard conjunction and disjunction rules of fuzzy logic have
    the nice property that if Q1 and Q2 are logically equivalent
    queries involving only conjunction and disjunction (not negation),
    then mu_Q1(x) = mu_Q2(x) for every object x. … This is desirable,
    since then an optimizer can replace a query by a logically
    equivalent query and be guaranteed of getting the same answer."

Theorem 3.1 (Yager; Dubois-Prade): **min and max are the unique
monotone aggregation functions that preserve logical equivalence** of
∧/∨-queries. This module provides:

* :func:`crisp_equivalent` — decide propositional equivalence of two
  negation-free queries by exhaustive 0/1 valuation (the ground truth);
* :func:`fuzzy_equivalent` — check whether a semantics gives two
  queries identical grades over a sampled set of fuzzy valuations;
* :func:`preserves_equivalence` — test a semantics against the
  canonical ∧/∨ identities (idempotence, absorption, distributivity);
  min/max pass, every other t-norm/co-norm pair fails (the registry of
  witnesses is what the planner uses to know when rewrites are safe).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Mapping

from repro.core.query import And, AtomicQuery, Not, Or, Query, atom
from repro.core.semantics import FuzzySemantics

__all__ = [
    "crisp_equivalent",
    "fuzzy_equivalent",
    "CANONICAL_IDENTITIES",
    "preserves_equivalence",
]


def _check_connectives_only(query: Query) -> None:
    for node in query.walk():
        if isinstance(node, Not):
            raise ValueError(
                "equivalence preservation is defined for queries "
                "'involving only conjunction and disjunction (not negation)'"
            )
        if not isinstance(node, (And, Or, AtomicQuery)):
            raise ValueError(
                f"equivalence checking supports And/Or/atomic nodes only, "
                f"found {type(node).__name__}"
            )


def crisp_equivalent(q1: Query, q2: Query) -> bool:
    """Propositional equivalence by exhaustive Boolean valuation.

    Exponential in the number of distinct atoms; intended for the small
    hand-written queries an optimizer rewrites, not arbitrary formulas.
    """
    _check_connectives_only(q1)
    _check_connectives_only(q2)
    atoms = tuple(dict.fromkeys(q1.atoms() + q2.atoms()))
    crisp = FuzzySemantics()  # min/max agree with Boolean logic on {0,1}
    for bits in itertools.product((0.0, 1.0), repeat=len(atoms)):
        valuation = dict(zip(atoms, bits))
        if crisp.evaluate(q1, valuation) != crisp.evaluate(q2, valuation):
            return False
    return True


def fuzzy_equivalent(
    q1: Query,
    q2: Query,
    semantics: FuzzySemantics,
    *,
    samples: int = 200,
    seed: int = 17,
    tolerance: float = 1e-9,
) -> bool:
    """Do ``q1`` and ``q2`` receive identical grades under ``semantics``?

    Checks ``samples`` random fuzzy valuations plus all crisp
    valuations. Random sampling is sound for refutation (one
    counterexample suffices) and, for the piecewise-rational connectives
    in this library, reliable for confirmation at the default sample
    count (violations are open sets — see the tests, which confirm the
    checker separates min/max from all other pairs).
    """
    _check_connectives_only(q1)
    _check_connectives_only(q2)
    atoms = tuple(dict.fromkeys(q1.atoms() + q2.atoms()))
    rng = random.Random(seed)

    def agree(valuation: Mapping[AtomicQuery, float]) -> bool:
        return (
            abs(semantics.evaluate(q1, valuation) - semantics.evaluate(q2, valuation))
            <= tolerance
        )

    for bits in itertools.product((0.0, 1.0), repeat=len(atoms)):
        if not agree(dict(zip(atoms, bits))):
            return False
    for _ in range(samples):
        valuation = {a: rng.random() for a in atoms}
        if not agree(valuation):
            return False
    return True


def _canonical_identities() -> tuple[tuple[str, Query, Query], ...]:
    a, b, c = atom("A"), atom("B"), atom("C")
    return (
        ("and-idempotence: A∧A ≡ A", And((a, a)), a),
        ("or-idempotence: A∨A ≡ A", Or((a, a)), a),
        ("absorption: A∧(A∨B) ≡ A", And((a, Or((a, b)))), a),
        ("absorption: A∨(A∧B) ≡ A", Or((a, And((a, b)))), a),
        (
            "distributivity: A∧(B∨C) ≡ (A∧B)∨(A∧C)",
            And((a, Or((b, c)))),
            Or((And((a, b)), And((a, c)))),
        ),
        (
            "distributivity: A∨(B∧C) ≡ (A∨B)∧(A∨C)",
            Or((a, And((b, c)))),
            And((Or((a, b)), Or((a, c)))),
        ),
    )


#: The equivalences the paper cites ("For example, mu_{A∧A}(x) = mu_A(x).
#: As another example, mu_{A∧(B∨C)}(x) = mu_{(A∧B)∨(A∧C)}(x).") plus the
#: standard absorption laws. Each pair is crisp-equivalent by
#: construction (verified in tests).
CANONICAL_IDENTITIES: tuple[tuple[str, Query, Query], ...] = _canonical_identities()


def preserves_equivalence(
    semantics: FuzzySemantics,
    identities: Iterable[tuple[str, Query, Query]] = CANONICAL_IDENTITIES,
    *,
    samples: int = 200,
    seed: int = 17,
) -> tuple[bool, list[str]]:
    """Does ``semantics`` preserve the given logical equivalences?

    Returns ``(all_preserved, failed_identity_names)``. Per Theorem 3.1
    only min/max preserve all of them; the failures list is a compact
    witness of *why* a non-standard semantics blocks optimizer rewrites.
    """
    failures: list[str] = []
    for name, q1, q2 in identities:
        if not fuzzy_equivalent(q1, q2, semantics, samples=samples, seed=seed):
            failures.append(name)
    return (not failures, failures)
