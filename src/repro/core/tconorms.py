"""The triangular co-norms catalogued in Section 3 of the paper.

Each co-norm here is the dual of the t-norm of the same family under
the standard negation n(x) = 1 - x ([Al85]; De Morgan laws per [BD86]):
``s(x, y) = 1 - t(1 - x, 1 - y)``. The formulas below are the closed
forms printed in the paper; the duality itself is property-tested in
``tests/core/test_duality.py``.

Co-norms model disjunction. They are monotone but *not* strict (max is
1 whenever any argument is 1), which is why the paper's lower bound
does not apply to them and algorithm B0 evaluates the standard fuzzy
disjunction with only m*k accesses (Theorem 4.5, Remark 6.1).
"""

from __future__ import annotations

from repro.core.aggregation import TConorm

__all__ = [
    "MaximumTConorm",
    "DrasticSum",
    "BoundedSum",
    "EinsteinSum",
    "AlgebraicSum",
    "HamacherSum",
    "MAXIMUM",
    "DRASTIC_SUM",
    "BOUNDED_SUM",
    "EINSTEIN_SUM",
    "ALGEBRAIC_SUM",
    "HAMACHER_SUM",
    "TCONORMS",
    "get_tconorm",
]


class MaximumTConorm(TConorm):
    """The standard fuzzy disjunction rule of Zadeh [Za65]: max."""

    name = "max"

    def pair(self, x: float, y: float) -> float:
        return x if x >= y else y

    def aggregate(self, grades) -> float:
        # max of validated grades never leaves [0, 1]; skip the
        # pairwise clamp-fold of BinaryAggregation on the hot path.
        return max(grades)

    def evaluate_trusted(self, grades) -> float:
        return max(grades)


class DrasticSum(TConorm):
    """s(x, y) = max(x, y) if min(x, y) = 0, else 1 — the largest co-norm."""

    name = "drastic-sum"

    def pair(self, x: float, y: float) -> float:
        if x == 0.0 or y == 0.0:
            return x if x >= y else y
        return 1.0


class BoundedSum(TConorm):
    """s(x, y) = min(1, x + y) (the Lukasiewicz co-norm)."""

    name = "bounded-sum"

    def pair(self, x: float, y: float) -> float:
        return min(1.0, x + y)


class EinsteinSum(TConorm):
    """s(x, y) = (x + y) / (1 + x*y)."""

    name = "einstein-sum"

    def pair(self, x: float, y: float) -> float:
        return (x + y) / (1.0 + x * y)


class AlgebraicSum(TConorm):
    """s(x, y) = x + y - x*y (the probabilistic sum)."""

    name = "algebraic-sum"

    def pair(self, x: float, y: float) -> float:
        return x + y - x * y


class HamacherSum(TConorm):
    """s(x, y) = (x + y - 2*x*y) / (1 - x*y), with s(1, 1) = 1.

    Evaluated via the algebraically equivalent form
    1 - (1-x)*(1-y)/(1-x*y), which avoids the catastrophic
    cancellation of the textbook numerator when x*y approaches 1
    (the naive form loses ~7 digits at x = y = 1 - 1e-9, enough to
    break monotonicity in floating point).
    """

    name = "hamacher-sum"

    def pair(self, x: float, y: float) -> float:
        if x == 1.0 or y == 1.0:
            return 1.0
        return 1.0 - ((1.0 - x) * (1.0 - y)) / (1.0 - x * y)


#: Shared singleton instances (co-norms are stateless).
MAXIMUM = MaximumTConorm()
DRASTIC_SUM = DrasticSum()
BOUNDED_SUM = BoundedSum()
EINSTEIN_SUM = EinsteinSum()
ALGEBRAIC_SUM = AlgebraicSum()
HAMACHER_SUM = HamacherSum()

#: Registry of all co-norms from the paper, by name.
TCONORMS: dict[str, TConorm] = {
    sc.name: sc
    for sc in (
        MAXIMUM,
        DRASTIC_SUM,
        BOUNDED_SUM,
        EINSTEIN_SUM,
        ALGEBRAIC_SUM,
        HAMACHER_SUM,
    )
}

#: The duality pairing used by the De Morgan tests: t-norm name -> co-norm name.
DUAL_PAIRS: dict[str, str] = {
    "min": "max",
    "drastic-product": "drastic-sum",
    "bounded-difference": "bounded-sum",
    "einstein-product": "einstein-sum",
    "algebraic-product": "algebraic-sum",
    "hamacher-product": "hamacher-sum",
}


def get_tconorm(name: str) -> TConorm:
    """Look up a co-norm by its registry name."""
    try:
        return TCONORMS[name]
    except KeyError:
        known = ", ".join(sorted(TCONORMS))
        raise KeyError(f"unknown t-conorm {name!r}; known: {known}") from None
