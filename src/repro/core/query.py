"""The query model of Sections 2-3.

    "We take atomic queries to be of the form X = t, where X is the name
    of an attribute and t is a target. Queries are Boolean combinations
    of atomic queries."

The AST distinguishes crisp equality atoms (``Artist = "Beatles"``,
grades in {0, 1}) from graded match atoms (``AlbumColor ~ "red"``,
grades anywhere in [0, 1]) — the mismatch the paper's semantics
resolves. On top of the Boolean connectives we support the general
combination ``Ft(A1, ..., Am)`` for an arbitrary m-ary aggregation
function t, and weighted conjunctions per [FW97].

All nodes are immutable and structurally hashable, so queries can be
used as dictionary keys (the planner does this) and compared in tests.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.aggregation import AggregationFunction
from repro.core.weights import FaginWimmersWeighting

__all__ = [
    "Query",
    "AtomicQuery",
    "And",
    "Or",
    "Not",
    "Ft",
    "Weighted",
    "atom",
]


class Query:
    """Base class for query AST nodes."""

    def atoms(self) -> tuple["AtomicQuery", ...]:
        """All distinct atomic subqueries, in first-appearance order."""
        seen: dict[AtomicQuery, None] = {}
        for node in self.walk():
            if isinstance(node, AtomicQuery):
                seen.setdefault(node)
        return tuple(seen)

    def walk(self) -> Iterator["Query"]:
        """Depth-first pre-order traversal of the AST."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Query", ...]:
        return ()

    def uses_negation(self) -> bool:
        """True iff any ``Not`` occurs — negation breaks monotonicity,
        so A0's correctness guarantee (Theorem 4.2) no longer applies."""
        return any(isinstance(node, Not) for node in self.walk())

    # Connective sugar -------------------------------------------------

    def __and__(self, other: "Query") -> "And":
        return And((self, other))

    def __or__(self, other: "Query") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    # Structural equality ----------------------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))


class AtomicQuery(Query):
    """An atomic query ``attribute op target``.

    ``op`` is ``"="`` for crisp equality (traditional database
    predicate; grades 0 or 1) or ``"~"`` for a graded match (QBIC-style
    similarity; grades in [0, 1]). ``target`` may be ``None`` for the
    abstract atoms A1, ..., Am of the formal model, where only the
    identity of the atom matters.
    """

    def __init__(self, attribute: str, target: object = None, op: str = "~") -> None:
        if op not in ("=", "~"):
            raise ValueError(f"atomic query op must be '=' or '~', got {op!r}")
        if not attribute:
            raise ValueError("atomic query needs a non-empty attribute name")
        self.attribute = attribute
        self.target = target
        self.op = op

    @property
    def crisp(self) -> bool:
        """True iff this is a traditional (0/1-graded) predicate."""
        return self.op == "="

    def _key(self) -> tuple:
        return (self.attribute, self.op, self.target)

    def __repr__(self) -> str:
        if self.target is None:
            return f"Atom({self.attribute})"
        return f"({self.attribute} {self.op} {self.target!r})"


def atom(name: str) -> AtomicQuery:
    """An abstract atom for the formal model (A1, A2, ... of Section 4).

    >>> a1, a2 = atom("A1"), atom("A2")
    >>> (a1 & a2).atoms()
    (Atom(A1), Atom(A2))
    """
    return AtomicQuery(name, target=None, op="~")


class _NAry(Query):
    """Shared implementation for the n-ary connectives And / Or."""

    symbol = "?"

    def __init__(self, operands: Sequence[Query]) -> None:
        flattened: list[Query] = []
        for op in operands:
            # Flatten nested same-type connectives: And(And(a,b),c) ->
            # And(a,b,c). Sound because every conjunction rule in the
            # paper is associative (t-norm axiom), likewise disjunction.
            if type(op) is type(self):
                flattened.extend(op.children())
            else:
                flattened.append(op)
        if len(flattened) < 2:
            raise ValueError(
                f"{type(self).__name__} needs at least 2 operands, "
                f"got {len(flattened)}"
            )
        self.operands = tuple(flattened)

    def children(self) -> tuple[Query, ...]:
        return self.operands

    def _key(self) -> tuple:
        return self.operands

    def __repr__(self) -> str:
        inner = f" {self.symbol} ".join(map(repr, self.operands))
        return f"({inner})"


class And(_NAry):
    """Fuzzy conjunction — evaluated by the semantics' t-norm."""

    symbol = "AND"


class Or(_NAry):
    """Fuzzy disjunction — evaluated by the semantics' co-norm."""

    symbol = "OR"


class Not(Query):
    """Fuzzy negation — evaluated by the semantics' negation rule."""

    def __init__(self, operand: Query) -> None:
        self.operand = operand

    def children(self) -> tuple[Query, ...]:
        return (self.operand,)

    def _key(self) -> tuple:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


class Ft(Query):
    """The general m-ary combination ``Ft(A1, ..., Am)`` of Section 3.

        "We define the m-ary query Ft(A1, ..., Am) by taking
        mu_Ft(A1,...,Am)(x) = t(mu_A1(x), ..., mu_Am(x))."

    The aggregation function carries the monotone/strict flags that
    decide which theorems (and which algorithms) apply.
    """

    def __init__(
        self, aggregation: AggregationFunction, operands: Sequence[Query]
    ) -> None:
        if not operands:
            raise ValueError("Ft needs at least one operand")
        if aggregation.arity is not None and aggregation.arity != len(operands):
            raise ValueError(
                f"aggregation {aggregation.name!r} has arity "
                f"{aggregation.arity}, got {len(operands)} operands"
            )
        self.aggregation = aggregation
        self.operands = tuple(operands)

    def children(self) -> tuple[Query, ...]:
        return self.operands

    @property
    def monotone(self) -> bool:
        return self.aggregation.monotone

    @property
    def strict(self) -> bool:
        return self.aggregation.strict

    def _key(self) -> tuple:
        return (self.aggregation.name, self.operands)

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.operands))
        return f"F[{self.aggregation.name}]({inner})"


class Weighted(Query):
    """A weighted conjunction per [FW97].

        "this algorithm applies also when the user can weight the
        relative importance of the conjuncts (for example, where the
        user decides that color is twice as important to him as shape),
        since such 'weighted conjunctions' are also monotone."

    The grade is computed by the Fagin-Wimmers formula
    (:class:`repro.core.weights.FaginWimmersWeighting`) over the base
    aggregation (default: the standard min rule is supplied by the
    semantics at evaluation time).
    """

    def __init__(self, operands: Sequence[Query], weights: Sequence[float]) -> None:
        if len(operands) != len(weights):
            raise ValueError(
                f"{len(operands)} operands but {len(weights)} weights"
            )
        if len(operands) < 1:
            raise ValueError("Weighted needs at least one operand")
        # Normalisation/validation lives in the weighting formula class.
        self.weighting_spec = tuple(FaginWimmersWeighting.normalise(weights))
        self.operands = tuple(operands)

    @property
    def weights(self) -> tuple[float, ...]:
        return self.weighting_spec

    def children(self) -> tuple[Query, ...]:
        return self.operands

    def _key(self) -> tuple:
        return (self.weighting_spec, self.operands)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:g}*{q!r}" for w, q in zip(self.weighting_spec, self.operands)
        )
        return f"Weighted({parts})"
