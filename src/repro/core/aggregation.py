"""Aggregation functions: the machinery of Section 3.

    "Let us define an m-ary aggregation function to be a function from
    [0, 1]^m to [0, 1]."

The paper cares about exactly two properties of an aggregation function:

* **Monotonicity** — ``t(x1..xm) <= t(x1'..xm')`` whenever ``xi <= xi'``
  for every i. Needed for the *upper bound* (correctness of algorithm A0,
  Theorem 4.2, and the cost analysis of Theorem 5.3).
* **Strictness** — ``t(x1..xm) = 1`` iff every ``xi = 1``. Needed for the
  *lower bound* (Theorem 6.4).

Concrete families live in :mod:`repro.core.tnorms`,
:mod:`repro.core.tconorms` and :mod:`repro.core.means`; this module
provides the base classes, the iteration of 2-ary functions to m-ary
ones ("an m-ary conjunction is almost always evaluated by using an
associative 2-ary function that is iterated"), and the t-norm/t-conorm
duality transform of [Al85]/[BD86].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.core.grades import clamp_grade, standard_negation, validate_grade
from repro.exceptions import AggregationArityError


class AggregationFunction(ABC):
    """An m-ary aggregation function from [0, 1]^m to [0, 1].

    Subclasses implement :meth:`aggregate` on pre-validated grades and
    declare the paper's two key properties via :attr:`monotone` and
    :attr:`strict`. The declarations are *verified empirically* by the
    checkers in :mod:`repro.core.properties` (exercised in the tests),
    so a mis-declared subclass will fail its property tests.
    """

    #: Human-readable name used in error messages and benchmark tables.
    name: str = "aggregation"

    #: Fixed arity, or ``None`` when the function accepts any m >= 1.
    arity: int | None = None

    #: Declared monotonicity (Section 3).
    monotone: bool = True

    #: Declared strictness (Section 3).
    strict: bool = False

    @abstractmethod
    def aggregate(self, grades: Sequence[float]) -> float:
        """Combine already-validated grades; may return slight overshoot."""

    def __call__(self, *grades: float) -> float:
        validated = [validate_grade(g, context=self.name) for g in grades]
        m = len(validated)
        if m == 0:
            raise AggregationArityError(self.name, "at least 1", 0)
        if self.arity is not None and m != self.arity:
            raise AggregationArityError(self.name, self.arity, m)
        return clamp_grade(self.aggregate(validated))

    def evaluate_trusted(self, grades: Sequence[float]) -> float:
        """Combine grades the access layer has already validated.

        The top-k hot loops score thousands of objects whose grades all
        came through :class:`~repro.access.source.SortedRandomSource`
        (validated at the boundary), so the per-argument re-validation
        of :meth:`__call__` is pure overhead there. The arity check is
        kept — a fixed-arity aggregation fed the wrong number of lists
        must raise, not silently drop grades. Still clamps, because
        :meth:`aggregate` may overshoot by a rounding error. Same value
        as ``self(*grades)`` for in-range inputs.
        """
        if self.arity is not None and len(grades) != self.arity:
            raise AggregationArityError(self.name, self.arity, len(grades))
        return clamp_grade(self.aggregate(grades))

    def on_sequence(self, grades: Sequence[float]) -> float:
        """Apply to a sequence (convenience mirror of ``__call__``)."""
        return self(*grades)

    def bulk_kernel(self):
        """The vectorized kernel for this aggregation, or ``None``.

        Resolution order (see :mod:`repro.core.kernels`): an
        ``aggregate_columns`` method supplied by the
        :class:`VectorizedAggregation` capability wins; otherwise the
        exact-type kernel registry; otherwise ``None`` — callers then
        use the scalar :meth:`evaluate_trusted` fold, so vectorization
        is always an accelerator and never a behavioural requirement.
        """
        from repro.core.kernels import kernel_for

        return kernel_for(self)

    def evaluate_columns(self, rows: Sequence[Sequence[float]]) -> list[float]:
        """Bulk-evaluate m per-list grade rows into per-object scores.

        ``rows[i][j]`` is object j's (already validated) grade in list
        i; the result is one score per object, as plain Python floats.
        Vectorized through :meth:`bulk_kernel` when possible, with the
        pure-Python ``evaluate_trusted`` fold as the fallback.
        """
        from repro.core.kernels import evaluate_columns

        if self.arity is not None and len(rows) != self.arity:
            raise AggregationArityError(self.name, self.arity, len(rows))
        return evaluate_columns(self, rows, len(rows[0]) if rows else 0)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class VectorizedAggregation:
    """Capability mix-in: an aggregation that ships its own bulk kernel.

    The standard families (min/max, the product and Łukasiewicz norms,
    the mean family and its weighted variants) get kernels from the
    registry in :mod:`repro.core.kernels`; a *user-defined* aggregation
    opts into the bulk path by also inheriting this class and
    implementing :meth:`aggregate_columns`. The contract mirrors
    :meth:`AggregationFunction.aggregate` lifted to matrices:

    * the input is an (m, n) float64 matrix of validated grades (numpy
      is guaranteed importable when this is called — the capability is
      only consulted when :data:`~repro.core.kernels.HAVE_NUMPY` holds);
    * the output is a length-n vector; callers clip it into [0, 1]
      exactly as ``clamp_grade`` would;
    * column j's score must equal ``self.aggregate(matrix[:, j])`` (up
      to documented floating-point reassociation, which the property
      suite bounds at 1e-12).
    """

    def aggregate_columns(self, matrix):
        """Score every column of an (m, n) grade matrix at once."""
        raise NotImplementedError(
            f"{type(self).__name__} declares VectorizedAggregation but "
            "does not implement aggregate_columns"
        )


class BinaryAggregation(AggregationFunction):
    """A 2-ary aggregation function extended to m arguments by iteration.

    Section 3: "if 2-ary conjunction is defined by the 2-ary aggregation
    function t, then 3-ary conjunction can be defined by
    t(t(x1, x2), x3)" — i.e. a left fold. For associative functions
    (every t-norm / t-conorm) the fold order is immaterial.
    """

    @abstractmethod
    def pair(self, x: float, y: float) -> float:
        """Combine exactly two grades."""

    def aggregate(self, grades: Sequence[float]) -> float:
        result = grades[0]
        for g in grades[1:]:
            result = clamp_grade(self.pair(result, g))
        return result


class TNorm(BinaryAggregation):
    """A triangular norm [SS63, DP80] — the conjunction family of Section 3.

    Satisfies ∧-conservation (t(0,0)=0, t(x,1)=t(1,x)=x), monotonicity,
    commutativity and associativity. Every t-norm is bounded between the
    drastic product and min [DP80], which makes every iterated t-norm
    both monotone and strict — hence the paper's matching upper and
    lower bounds apply to all of them (Theorem 6.5).
    """

    monotone = True
    strict = True


class TConorm(BinaryAggregation):
    """A triangular co-norm [DP85] — the disjunction family of Section 3.

    Satisfies ∨-conservation (s(1,1)=1, s(x,0)=s(0,x)=x), monotonicity,
    commutativity and associativity. Co-norms are monotone but *not*
    strict in the paper's sense (e.g. max(1, 0) = 1 with an argument
    below 1), which is exactly why the lower bound fails for max and
    algorithm B0 can be so cheap (Remark 6.1).
    """

    monotone = True
    strict = False


class DualTConorm(TConorm):
    """The co-norm dual to a t-norm: ``s(x, y) = n(t(n(x), n(y)))``.

    With the standard negation this is the duality of [Al85]; [BD86]
    show the generalised De Morgan laws hold for suitable negations.
    """

    def __init__(
        self,
        tnorm: TNorm,
        negation: Callable[[float], float] = standard_negation,
    ) -> None:
        self._tnorm = tnorm
        self._negation = negation
        self.name = f"dual({tnorm.name})"

    def pair(self, x: float, y: float) -> float:
        n = self._negation
        return n(self._tnorm.pair(n(x), n(y)))


class DualTNorm(TNorm):
    """The t-norm dual to a co-norm: ``t(x, y) = n(s(n(x), n(y)))``."""

    def __init__(
        self,
        conorm: TConorm,
        negation: Callable[[float], float] = standard_negation,
    ) -> None:
        self._conorm = conorm
        self._negation = negation
        self.name = f"dual({conorm.name})"

    def pair(self, x: float, y: float) -> float:
        n = self._negation
        return n(self._conorm.pair(n(x), n(y)))


class ConstantAggregation(AggregationFunction):
    """The degenerate monotone aggregation of Section 4.

        "As an obvious example, let t be a constant function: then an
        arbitrary set of k objects (with their grades) can be taken to
        be the top k answers."

    Monotone (weakly) but not strict unless the constant is 1 — and even
    the constant-1 function is not strict, since it is 1 on arguments
    below 1. Useful as a worked counterexample in tests and docs.
    """

    strict = False

    def __init__(self, value: float) -> None:
        self._value = validate_grade(value, context="constant aggregation")
        self.name = f"const({self._value:g})"

    def aggregate(self, grades: Sequence[float]) -> float:
        return self._value


class FunctionAggregation(AggregationFunction):
    """Adapter wrapping a plain callable as an aggregation function.

    Lets users plug ad-hoc scoring rules into the algorithms without
    subclassing; the declared properties must be supplied explicitly
    (and can be validated with :mod:`repro.core.properties`).
    """

    def __init__(
        self,
        func: Callable[..., float],
        name: str,
        *,
        arity: int | None = None,
        monotone: bool = True,
        strict: bool = False,
    ) -> None:
        self._func = func
        self.name = name
        self.arity = arity
        self.monotone = monotone
        self.strict = strict

    def aggregate(self, grades: Sequence[float]) -> float:
        return self._func(*grades)


def iterated(binary: Callable[[float, float], float], name: str) -> FunctionAggregation:
    """Iterate a plain 2-ary callable into an m-ary aggregation."""

    def fold(*grades: float) -> float:
        result = grades[0]
        for g in grades[1:]:
            result = binary(result, g)
        return result

    return FunctionAggregation(fold, name)
