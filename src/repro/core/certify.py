"""Quality contracts, stopping rules, and certified results.

Every algorithm in this repository used to run to exact completion.
The paper's guarantee machinery supports strictly more: TA's threshold
value :math:`\\tau` and NRA's (lower, upper) bookkeeping are *live
certificates*, and relaxing the termination test against them yields
early stops whose answers still carry a provable quality statement.

This module is the contract layer those relaxations share:

``QualityContract``
    What the caller asked for — ``exact``, ``approximate`` (the
    :math:`\\theta`-approximation of Fagin–Lotem–Naor: stop once the
    k-th best certified grade :math:`g_k` satisfies
    :math:`(1+\\varepsilon)\\,g_k \\ge \\tau`), or ``anytime`` (run
    until a deadline, return the certified prefix plus bounds).

``StoppingRule``
    The pluggable termination test minted from a contract. The
    hard-coded ``kth_best >= tau`` checks in ``algorithms/threshold``
    and ``algorithms/nra`` route through it; at :math:`\\varepsilon=0`
    the comparisons are *literally* the exact ones (an explicit
    branch, not a ``1.0 * x`` multiplication), so exact runs stay
    bit-identical in both answers and access ledgers.

``Guarantee``
    What was actually delivered. An algorithm may deliver a *stronger*
    guarantee than asked (FA's match-count stop observes no grades, so
    it can never certify an early :math:`\\varepsilon`-stop — it runs
    to exact completion under any contract and says so).

``GradeBounds`` / ``CertifiedResult``
    The anytime surface: per-item (lower, upper) intervals plus an
    upper bound on everything not returned, as produced by
    ``ResultCursor.stop()``.

The certified-approximation statement, for the returned set :math:`Y`
and any object :math:`z \\notin Y`:

.. math::

    (1+\\varepsilon)\\,\\mu(y) \\ge \\mu(z) \\quad \\forall y \\in Y

because every returned grade is at least :math:`g_k`, and every
unreturned object's grade is at most the bound the rule stopped
against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "CertifiedResult",
    "EXACT",
    "EXACT_GUARANTEE",
    "GradeBounds",
    "Guarantee",
    "QualityContract",
    "StoppingRule",
    "as_contract",
    "validate_epsilon",
]


def validate_epsilon(epsilon: float) -> float:
    """Validate an approximation slack: a finite float >= 0."""
    try:
        value = float(epsilon)
    except (TypeError, ValueError):
        raise ValueError(
            f"epsilon must be a non-negative real number, got {epsilon!r}"
        ) from None
    if math.isnan(value) or math.isinf(value) or value < 0.0:
        raise ValueError(
            f"epsilon must be a non-negative real number, got {epsilon!r}"
        )
    return value


@dataclass(frozen=True, slots=True)
class QualityContract:
    """What quality the caller asked for.

    ``kind`` is ``"exact"``, ``"approximate"`` or ``"anytime"``;
    ``epsilon`` is the relative slack (0 for exact). An approximate
    contract with ``epsilon == 0`` *is* the exact contract — the
    constructors normalise it so downstream code can branch on
    ``kind`` alone.
    """

    kind: str = "exact"
    epsilon: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("exact", "approximate", "anytime"):
            raise ValueError(
                "contract kind must be 'exact', 'approximate' or "
                f"'anytime', got {self.kind!r}"
            )
        object.__setattr__(self, "epsilon", validate_epsilon(self.epsilon))
        if self.kind == "exact" and self.epsilon != 0.0:
            raise ValueError("an exact contract cannot carry epsilon > 0")

    # -- constructors ---------------------------------------------------

    @classmethod
    def exact(cls) -> "QualityContract":
        return EXACT

    @classmethod
    def approximate(cls, epsilon: float) -> "QualityContract":
        """The θ-approximate contract; ``epsilon == 0`` is exact."""
        epsilon = validate_epsilon(epsilon)
        if epsilon == 0.0:
            return EXACT
        return cls("approximate", epsilon)

    @classmethod
    def anytime(cls, epsilon: float = 0.0) -> "QualityContract":
        return cls("anytime", validate_epsilon(epsilon))

    # -- derived --------------------------------------------------------

    @property
    def relaxation(self) -> float:
        """The multiplicative slack ``1 + epsilon``."""
        return 1.0 + self.epsilon

    def stopping_rule(self) -> "StoppingRule":
        return StoppingRule(self.epsilon)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "epsilon": self.epsilon}

    def __str__(self) -> str:
        if self.kind == "exact":
            return "exact"
        return f"{self.kind}(ε={self.epsilon:g})"


#: The default contract: run to exact completion.
EXACT = QualityContract()


def as_contract(value: Any) -> QualityContract:
    """Coerce ``None`` / a float ε / a contract into a contract."""
    if value is None:
        return EXACT
    if isinstance(value, QualityContract):
        return value
    if isinstance(value, bool):
        raise ValueError(f"cannot interpret {value!r} as a quality contract")
    if isinstance(value, (int, float)):
        return QualityContract.approximate(value)
    raise ValueError(f"cannot interpret {value!r} as a quality contract")


class StoppingRule:
    """The θ/(1+ε) termination test, pluggable into any algorithm.

    The exact rules this replaces:

    * TA stops when ``kth_best >= tau`` → :meth:`met`.
    * NRA keeps a candidate alive while ``upper > kth_best`` →
      :meth:`still_viable` (the logical dual of :meth:`met`).
    * FA's sorted phase stops when ``matched >= k`` →
      :meth:`sorted_phase_done`. This one observes *match counts*,
      never grades, so there is no sound grade-relaxation of it: any
      certificate about the k-th grade needs k certified grades, which
      FA only has once it has already stopped. The rule therefore
      returns the exact test under every ε (and FA's delivered
      guarantee stays ``exact``).

    At ``epsilon == 0`` each method takes an explicit exact branch so
    the float comparisons are bit-identical to the historical checks
    (no ``1.0 * x`` round-trip in the hot loop).
    """

    __slots__ = ("epsilon", "_relaxation")

    def __init__(self, epsilon: float = 0.0) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self._relaxation = 1.0 + self.epsilon

    @property
    def exact(self) -> bool:
        return self.epsilon == 0.0

    def met(self, kth_best: float, upper: float) -> bool:
        """Stop? — the k-th certified grade is within ε of ``upper``."""
        if self.epsilon == 0.0:
            return kth_best >= upper
        return self._relaxation * kth_best >= upper

    def still_viable(self, upper: float, kth_best: float) -> bool:
        """Can an object bounded by ``upper`` still beat the relaxed
        bar? NRA keeps candidates alive on this (the dual of
        :meth:`met`)."""
        if self.epsilon == 0.0:
            return upper > kth_best
        return upper > self._relaxation * kth_best

    def limit(self, kth_best: float) -> float:
        """The relaxed bar ``(1+ε) * kth_best`` — what vectorised
        candidate sweeps compare uppers against (``kth_best`` itself at
        ε=0, preserving bit-identity)."""
        if self.epsilon == 0.0:
            return kth_best
        return self._relaxation * kth_best

    def sorted_phase_done(self, matched: int, k: int) -> bool:
        """FA's match-count stop — exact under every ε (see class
        docstring)."""
        return matched >= k

    def guarantee(self, threshold: float | None = None) -> "Guarantee":
        """The guarantee a run stopping under this rule delivers."""
        if self.epsilon == 0.0:
            return EXACT_GUARANTEE if threshold is None else Guarantee(
                "exact", 0.0, threshold
            )
        return Guarantee("approximate", self.epsilon, threshold)

    def __repr__(self) -> str:
        return f"StoppingRule(epsilon={self.epsilon:g})"


@dataclass(frozen=True, slots=True)
class Guarantee:
    """The quality statement a finished (or stopped) run certifies.

    ``kind``
        ``"exact"``: the items are the true top k (up to grade ties).
        ``"approximate"``: for every returned y and unreturned z,
        ``(1 + epsilon) * grade(y) >= grade(z)``.
        ``"anytime"``: the items are the *exact* top r for the r
        answers returned, and ``threshold`` bounds the grade of every
        object not returned.
    ``epsilon``
        The certified relative slack (0 for exact and for anytime —
        an anytime prefix is exact for its own length).
    ``threshold``
        The bound the run stopped against: TA's τ, NRA's best live
        upper, or a cursor's remaining-grade upper bound. ``None``
        when the run drained the population and no bound was in play.
    """

    kind: str
    epsilon: float = 0.0
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("exact", "approximate", "anytime"):
            raise ValueError(
                "guarantee kind must be 'exact', 'approximate' or "
                f"'anytime', got {self.kind!r}"
            )

    @property
    def is_exact(self) -> bool:
        return self.kind == "exact"

    def as_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "epsilon": self.epsilon}
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        return payload

    def __str__(self) -> str:
        if self.kind == "exact":
            return "exact"
        return f"{self.kind}(ε={self.epsilon:g})"


#: The guarantee every historical run delivered.
EXACT_GUARANTEE = Guarantee("exact")


@dataclass(frozen=True, slots=True)
class GradeBounds:
    """A certified (lower, upper) interval for one object's grade."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(
                f"lower bound {self.lower} exceeds upper {self.upper}"
            )

    @property
    def exact(self) -> bool:
        return self.lower == self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, grade: float) -> bool:
        return self.lower <= grade <= self.upper

    def as_tuple(self) -> tuple[float, float]:
        return (self.lower, self.upper)


@dataclass(frozen=True, slots=True)
class CertifiedResult:
    """A (possibly partial) answer plus the certificate it carries.

    Returned by ``ResultCursor.stop()``: ``items`` is the certified
    prefix in rank order, ``bounds`` maps each returned object to its
    interval (exact ``[g, g]`` for an A0-incremental cursor), and
    ``guarantee.threshold`` bounds every object *not* in ``items``.
    """

    items: tuple
    guarantee: Guarantee
    bounds: Mapping[Any, GradeBounds] = field(default_factory=dict)
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def answers(self) -> int:
        return len(self.items)

    def as_dict(self) -> dict:
        return {
            "answers": self.answers,
            "items": [
                {"obj": item.obj, "grade": item.grade} for item in self.items
            ],
            "guarantee": self.guarantee.as_dict(),
            "bounds": {
                obj: bounds.as_tuple() for obj, bounds in self.bounds.items()
            },
            "details": dict(self.details),
        }
