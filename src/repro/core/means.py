"""Mean-type aggregation functions (Section 3 and Remark 6.1).

The paper points out that aggregation functions outside the t-norm
family matter in practice:

    "Thole et al. [TZZ79] found various weighted and unweighted
    arithmetic and geometric means to perform empirically quite well.
    Such aggregation functions are not triangular norms … These
    functions do satisfy monotonicity and strictness, and so our upper
    and lower bounds hold even in this case."

and Remark 6.1 discusses two *non-strict* monotone aggregations for
which the lower bound fails — the **median** and the **gymnastics
trimmed mean** ("the top and bottom scores are eliminated, and the
remaining scores are averaged") — both implemented here with their
property classifications.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.aggregation import AggregationFunction
from repro.core.grades import validate_grade

__all__ = [
    "ArithmeticMean",
    "GeometricMean",
    "HarmonicMean",
    "WeightedArithmeticMean",
    "WeightedGeometricMean",
    "Median",
    "GymnasticsTrimmedMean",
    "ARITHMETIC_MEAN",
    "GEOMETRIC_MEAN",
    "MEDIAN",
    "median3",
]


class ArithmeticMean(AggregationFunction):
    """The unweighted arithmetic mean.

    Monotone and strict, but not a t-norm: "the arithmetic mean does
    not conserve the standard propositional semantics, since with
    arguments 0 and 1 it takes the value 1/2, rather than 0"
    (Section 3). A0's upper bound and the lower bound both apply.
    """

    name = "arithmetic-mean"
    strict = True

    def aggregate(self, grades: Sequence[float]) -> float:
        return sum(grades) / len(grades)


class GeometricMean(AggregationFunction):
    """The unweighted geometric mean — monotone and strict ([TZZ79])."""

    name = "geometric-mean"
    strict = True

    def aggregate(self, grades: Sequence[float]) -> float:
        product = 1.0
        for g in grades:
            product *= g
        return product ** (1.0 / len(grades))


class HarmonicMean(AggregationFunction):
    """The harmonic mean, with the continuous extension h(...,0,...) = 0.

    Monotone and strict; included because it is the most pessimistic of
    the classical Pythagorean means and a common text-retrieval fusion
    rule (it is the F-measure for two arguments).
    """

    name = "harmonic-mean"
    strict = True

    def aggregate(self, grades: Sequence[float]) -> float:
        if any(g == 0.0 for g in grades):
            return 0.0
        return len(grades) / sum(1.0 / g for g in grades)


class WeightedArithmeticMean(AggregationFunction):
    """A weighted arithmetic mean with fixed non-negative weights.

    Weights are normalised to sum to 1. Monotone always; strict iff
    every weight is positive (a zero-weight argument can be below 1
    while the mean is 1).
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w < 0 for w in weights):
            raise ValueError(f"weights must be non-negative, got {list(weights)}")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.weights = [w / total for w in weights]
        self.arity = len(self.weights)
        self.strict = all(w > 0 for w in self.weights)
        self.name = f"weighted-arithmetic-mean({self.arity})"

    def aggregate(self, grades: Sequence[float]) -> float:
        return sum(w * g for w, g in zip(self.weights, grades))


class WeightedGeometricMean(AggregationFunction):
    """A weighted geometric mean: prod(g_i ** w_i) with weights summing to 1."""

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w < 0 for w in weights):
            raise ValueError(f"weights must be non-negative, got {list(weights)}")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.weights = [w / total for w in weights]
        self.arity = len(self.weights)
        self.strict = all(w > 0 for w in self.weights)
        self.name = f"weighted-geometric-mean({self.arity})"

    def aggregate(self, grades: Sequence[float]) -> float:
        result = 1.0
        for w, g in zip(self.weights, grades):
            if w == 0.0:
                continue
            if g == 0.0:
                return 0.0
            result *= g**w
        return result


class Median(AggregationFunction):
    """The median — monotone but **not strict** (Remark 6.1).

    For an even number of arguments we take the lower median, which
    keeps the function monotone and idempotent. Remark 6.1 shows the
    paper's lower bound fails for the 3-ary median: it is solvable in
    O(sqrt(N*k)) via the identity

        median(a1, a2, a3)
            = max(min(a1, a2), min(a1, a3), min(a2, a3)),      (13)

    implemented by :mod:`repro.algorithms.median`.
    """

    name = "median"
    strict = False

    def aggregate(self, grades: Sequence[float]) -> float:
        ordered = sorted(grades)
        return ordered[(len(ordered) - 1) // 2]


class GymnasticsTrimmedMean(AggregationFunction):
    """Remark 6.1's "real life" non-strict aggregation.

        "There are a number of judges, each of whom assigns a score;
        the top and bottom scores are eliminated, and the remaining
        scores are averaged. The corresponding aggregation function is
        not strict. If there are three judges, then this aggregation
        function is simply the median."

    Requires at least 3 arguments (otherwise nothing remains after
    trimming). Monotone, not strict.
    """

    name = "gymnastics-trimmed-mean"
    strict = False

    def __init__(self, judges: int = 3) -> None:
        if judges < 3:
            raise ValueError(f"need at least 3 judges, got {judges}")
        self.arity = judges
        self.name = f"gymnastics-trimmed-mean({judges})"

    def aggregate(self, grades: Sequence[float]) -> float:
        ordered = sorted(grades)
        trimmed = ordered[1:-1]
        return sum(trimmed) / len(trimmed)


def median3(a1: float, a2: float, a3: float) -> float:
    """The 3-ary median via the paper's identity (13).

    >>> median3(0.2, 0.9, 0.5)
    0.5

    Kept as a standalone function because identity (13) is what makes
    the Remark 6.1 algorithm work; tests check it against
    :class:`Median` on random triples.
    """
    for g in (a1, a2, a3):
        validate_grade(g, context="median3")
    return max(min(a1, a2), min(a1, a3), min(a2, a3))


def quasi_arithmetic_mean(
    grades: Sequence[float],
    transform,
    inverse,
) -> float:
    """A generalised (Kolmogorov) mean: inverse(mean(transform(g))).

    The arithmetic, geometric and harmonic means are all instances;
    exposed for users exploring custom monotone aggregations with the
    property checkers.
    """
    if not grades:
        raise ValueError("quasi_arithmetic_mean needs at least one grade")
    transformed = [transform(validate_grade(g)) for g in grades]
    value = inverse(sum(transformed) / len(transformed))
    if math.isnan(value):
        raise ValueError("transform/inverse pair produced NaN")
    return value


#: Shared singletons for the unparameterised means.
ARITHMETIC_MEAN = ArithmeticMean()
GEOMETRIC_MEAN = GeometricMean()
HARMONIC_MEAN = HarmonicMean()
MEDIAN = Median()
