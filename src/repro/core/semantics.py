"""Evaluation of Boolean combinations of atomic queries (Sections 2-3).

A :class:`FuzzySemantics` bundles the three evaluation rules:

    Conjunction rule:  mu_{A AND B}(x) = t(mu_A(x), mu_B(x))
    Disjunction rule:  mu_{A OR B}(x)  = s(mu_A(x), mu_B(x))
    Negation rule:     mu_{NOT A}(x)   = n(mu_A(x))

The default :data:`STANDARD_FUZZY` semantics uses Zadeh's rules
(t = min, s = max, n(x) = 1 - x), which Section 3 singles out: they
conservatively extend propositional logic and, by Theorem 3.1, min/max
are the unique monotone equivalence-preserving choice.

Evaluation comes in two forms:

* :meth:`FuzzySemantics.evaluate` — the grade of a *single object*,
  given that object's grades under each atomic query (the per-object
  view used by the algorithms);
* :meth:`FuzzySemantics.evaluate_sets` — a whole :class:`GradedSet`
  answer, given the graded-set answer of each atomic query (the
  set-level view used by the middleware executor and the naive
  algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.aggregation import TConorm, TNorm
from repro.core.graded_set import GradedSet, ObjectId
from repro.core.negations import STANDARD_NEGATION, Negation
from repro.core.query import And, AtomicQuery, Ft, Not, Or, Query, Weighted
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.core.weights import FaginWimmersWeighting

__all__ = ["FuzzySemantics", "STANDARD_FUZZY", "QueryClassification"]


@dataclass(frozen=True)
class QueryClassification:
    """Whether the paper's two key properties hold for a whole query.

    ``monotone`` gates A0's correctness (Theorem 4.2); ``strict`` gates
    the lower bound (Theorem 6.4). Classification is *conservative*:
    it returns True only when the structure guarantees the property.
    """

    monotone: bool
    strict: bool


@dataclass(frozen=True)
class FuzzySemantics:
    """A choice of conjunction / disjunction / negation rules.

    Immutable so a semantics can be shared freely across the
    middleware, the planner and the algorithms.
    """

    tnorm: TNorm = field(default_factory=lambda: MINIMUM)
    conorm: TConorm = field(default_factory=lambda: MAXIMUM)
    negation: Negation = field(default_factory=lambda: STANDARD_NEGATION)

    # ------------------------------------------------------------------
    # Per-object evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, query: Query, atom_grades: Mapping[AtomicQuery, float]
    ) -> float:
        """mu_Q(x) for one object, from its grades under each atom.

        ``atom_grades`` maps every atomic subquery of ``query`` to the
        object's grade under that atom; a missing atom is an error (not
        silently graded 0), because per-object evaluation is exactly
        where the algorithms must never fabricate grades.
        """
        if isinstance(query, AtomicQuery):
            try:
                return atom_grades[query]
            except KeyError:
                raise KeyError(
                    f"no grade supplied for atomic query {query!r}"
                ) from None
        if isinstance(query, And):
            return self.tnorm(
                *(self.evaluate(q, atom_grades) for q in query.operands)
            )
        if isinstance(query, Or):
            return self.conorm(
                *(self.evaluate(q, atom_grades) for q in query.operands)
            )
        if isinstance(query, Not):
            return self.negation(self.evaluate(query.operand, atom_grades))
        if isinstance(query, Ft):
            return query.aggregation(
                *(self.evaluate(q, atom_grades) for q in query.operands)
            )
        if isinstance(query, Weighted):
            weighting = FaginWimmersWeighting(self.tnorm, query.weights)
            return weighting(
                *(self.evaluate(q, atom_grades) for q in query.operands)
            )
        raise TypeError(f"unknown query node type {type(query).__name__}")

    # ------------------------------------------------------------------
    # Set-level evaluation
    # ------------------------------------------------------------------

    def evaluate_sets(
        self,
        query: Query,
        atom_sets: Mapping[AtomicQuery, GradedSet],
        universe: Iterable[ObjectId],
    ) -> GradedSet:
        """The full graded-set answer to ``query``.

        ``atom_sets`` maps each atomic subquery to its graded-set
        result; objects absent from an atom's graded set have grade 0
        there (the crisp-embedding convention of Section 2). The
        ``universe`` fixes the object population — required because
        negation can give positive grades to objects no atom mentions.
        """
        universe_list = list(universe)
        grades: dict[ObjectId, float] = {}
        for obj in universe_list:
            per_atom = {a: s.grade(obj) for a, s in atom_sets.items()}
            grades[obj] = self.evaluate(query, per_atom)
        return GradedSet(grades)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(self, query: Query) -> QueryClassification:
        """Conservative monotone/strict classification of a query.

        * Atoms are monotone and strict (identity aggregation).
        * And is monotone always; strict iff the t-norm is strict
          (every t-norm is) and all operands are strict.
        * Or is monotone; never classified strict (co-norms reach 1
          with arguments below 1 — Remark 6.1's point about max).
        * Not destroys monotonicity (Section 7's hard query shows the
          consequences) and strictness.
        * Ft / Weighted inherit their aggregation's declared flags,
          combined with the operands' classification.
        """
        if isinstance(query, AtomicQuery):
            return QueryClassification(monotone=True, strict=True)
        if isinstance(query, Not):
            return QueryClassification(monotone=False, strict=False)
        child_class = [self.classify(q) for q in query.children()]
        children_monotone = all(c.monotone for c in child_class)
        children_strict = all(c.strict for c in child_class)
        if isinstance(query, And):
            return QueryClassification(
                monotone=children_monotone,
                strict=self.tnorm.strict and children_strict,
            )
        if isinstance(query, Or):
            return QueryClassification(
                monotone=children_monotone,
                strict=self.conorm.strict and children_strict,
            )
        if isinstance(query, Ft):
            return QueryClassification(
                monotone=query.aggregation.monotone and children_monotone,
                strict=query.aggregation.strict and children_strict,
            )
        if isinstance(query, Weighted):
            weighting = FaginWimmersWeighting(self.tnorm, query.weights)
            return QueryClassification(
                monotone=weighting.monotone and children_monotone,
                strict=weighting.strict and children_strict,
            )
        raise TypeError(f"unknown query node type {type(query).__name__}")


#: Zadeh's standard rules: min / max / (1 - x). The paper's default.
STANDARD_FUZZY = FuzzySemantics()
