"""Grade distributions for workload generation.

The paper's analyses reference several grade regimes:

* **uniform** grades in [0, 1] — the Section 9 model for both the
  Landau Theta(sqrt(N)) result and the uniform second list in Ullman's
  constant-cost regime;
* **capped** grades ("the maximum value of the grades of the objects
  under the query A1 is, say, 0.9") — the regime where Ullman's
  algorithm stops after an expected <= 10 objects;
* **crisp** grades in {0, 1} with a selectivity p — traditional
  database predicates like Artist = "Beatles" (Section 2), used by the
  filtered-conjunct strategy of Section 4's first example.

Each distribution is a small seeded-sampling object so workloads can
mix regimes per list.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.grades import validate_grade

__all__ = ["GradeDistribution", "Uniform", "Capped", "Crisp", "Beta", "PowerLaw"]


class GradeDistribution(ABC):
    """A sampler of grades in [0, 1]."""

    name: str = "distribution"

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one grade."""

    def sample_many(self, rng: random.Random, n: int) -> list[float]:
        """Draw ``n`` grades."""
        return [self.sample(rng) for _ in range(n)]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class Uniform(GradeDistribution):
    """Uniform grades on [low, high] (default the full unit interval)."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        low = validate_grade(low, context="Uniform.low")
        high = validate_grade(high, context="Uniform.high")
        if low >= high:
            raise ValueError(f"need low < high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self.name = f"uniform[{low:g},{high:g}]"

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class Capped(GradeDistribution):
    """Uniform grades on [0, cap] — the bounded-away-from-1 regime of §9.

    "the assumption that the grades of the objects under the query A1
    are bounded above by a constant (such as 0.9) less than 1"
    """

    def __init__(self, cap: float = 0.9) -> None:
        cap = validate_grade(cap, context="Capped.cap")
        if cap <= 0:
            raise ValueError(f"cap must be positive, got {cap}")
        self.cap = cap
        self.name = f"capped[{cap:g}]"

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(0.0, self.cap)


class Crisp(GradeDistribution):
    """Crisp {0, 1} grades with selectivity ``p`` (fraction graded 1).

    Models a traditional database predicate: "For traditional database
    queries, such as Artist = 'Beatles', the grade for each object is
    either 0 or 1" (Section 2).
    """

    def __init__(self, selectivity: float) -> None:
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(
                f"selectivity must be in [0, 1], got {selectivity}"
            )
        self.selectivity = selectivity
        self.name = f"crisp[p={selectivity:g}]"

    def sample(self, rng: random.Random) -> float:
        return 1.0 if rng.random() < self.selectivity else 0.0


class Beta(GradeDistribution):
    """Beta(a, b) grades — smooth unimodal scores (e.g. similarity engines)."""

    def __init__(self, a: float, b: float) -> None:
        if a <= 0 or b <= 0:
            raise ValueError(f"Beta parameters must be positive, got ({a}, {b})")
        self.a = a
        self.b = b
        self.name = f"beta[{a:g},{b:g}]"

    def sample(self, rng: random.Random) -> float:
        return rng.betavariate(self.a, self.b)


class PowerLaw(GradeDistribution):
    """Grades u**alpha for uniform u — skewed towards 0 for alpha > 1.

    Models retrieval engines where only a few objects score well (a
    long tail of near-zero relevance).
    """

    def __init__(self, alpha: float) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.name = f"powerlaw[{alpha:g}]"

    def sample(self, rng: random.Random) -> float:
        return rng.random() ** self.alpha
