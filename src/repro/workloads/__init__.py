"""Workload generation: the paper's probabilistic model plus datasets.

Independent random skeletons (Section 5), grade distributions for the
Section 9 regimes, correlated lists for the Section 7 questions, and
the CD-store running example of Section 2.
"""

from repro.workloads.correlated import (
    correlated_database,
    correlated_skeleton,
    hard_query_database,
    min_equicorrelation,
    spearman_rho,
)
from repro.workloads.datasets import NAMED_COLORS, Album, cd_store
from repro.workloads.distributions import (
    Beta,
    Capped,
    Crisp,
    GradeDistribution,
    PowerLaw,
    Uniform,
)
from repro.workloads.skeletons import (
    grades_for_skeleton,
    independent_database,
    random_skeleton,
)

__all__ = [
    "random_skeleton",
    "independent_database",
    "grades_for_skeleton",
    "GradeDistribution",
    "Uniform",
    "Capped",
    "Crisp",
    "Beta",
    "PowerLaw",
    "correlated_skeleton",
    "correlated_database",
    "hard_query_database",
    "min_equicorrelation",
    "spearman_rho",
    "Album",
    "cd_store",
    "NAMED_COLORS",
]
