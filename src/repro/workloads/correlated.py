"""Correlated workloads (Section 7's motivating question).

    "What if the conjuncts are not independent? … If the conjuncts are
    positively correlated, this can only help the efficiency. What if
    the conjuncts are negatively correlated? In this section, we
    consider the extreme case of negative correlation between queries,
    by considering queries Q AND NOT Q."

This module generates scoring databases whose lists have a tunable
rank correlation via a Gaussian copula (equicorrelated latent
normals), spanning the whole spectrum from perfectly anti-correlated
(rho -> -1, for two lists: the reversed-permutation hard-query regime)
through independent (rho = 0, recovering the Section 5 model) to
perfectly aligned (rho -> 1, where A0's match depth collapses to k).
Experiment E10 sweeps rho; the hard-query database of Section 7 is the
deterministic endpoint, built by :func:`hard_query_database`.
"""

from __future__ import annotations

import random

try:
    # Copula sampling is linear algebra; there is no sensible pure-
    # Python fallback at benchmark scale. The import is soft so that
    # merely importing the package (or the independent workloads) does
    # not require numpy — generating a *correlated* database does, and
    # says so.
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into CI images
    np = None  # type: ignore[assignment]

from repro.access.scoring_database import ScoringDatabase, Skeleton
from repro.algorithms.hard_query import self_negated_lists
from repro.workloads.distributions import GradeDistribution, Uniform
from repro.workloads.skeletons import grades_for_skeleton

__all__ = [
    "min_equicorrelation",
    "correlated_skeleton",
    "correlated_database",
    "hard_query_database",
    "spearman_rho",
]


def min_equicorrelation(num_lists: int) -> float:
    """The smallest valid equicorrelation for m lists: -1/(m-1).

    An m x m correlation matrix with constant off-diagonal rho is
    positive semidefinite iff rho >= -1/(m-1); for m = 2 the full range
    down to -1 is available.
    """
    if num_lists < 2:
        raise ValueError(f"correlation needs at least 2 lists, got {num_lists}")
    return -1.0 / (num_lists - 1)


def correlated_skeleton(
    num_lists: int,
    num_objects: int,
    rho: float,
    seed: int | random.Random,
) -> Skeleton:
    """A skeleton whose lists have (Gaussian-copula) rank correlation rho.

    Each object gets an m-vector of equicorrelated standard normals;
    list i's permutation sorts objects by their i-th coordinate,
    descending. rho = 0 gives independent uniform permutations (the
    Section 5 model); rho -> 1 gives identical permutations; for m = 2,
    rho -> -1 gives exactly reversed permutations.
    """
    lo = min_equicorrelation(num_lists)
    if not lo <= rho <= 1.0:
        raise ValueError(
            f"rho={rho} outside the valid range [{lo:.4f}, 1] for "
            f"{num_lists} lists"
        )
    if np is None:
        raise ImportError(
            "correlated workloads require numpy (Gaussian-copula "
            "sampling); install numpy or use independent_database"
        )
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    np_rng = np.random.default_rng(rng.getrandbits(64))
    cov = np.full((num_lists, num_lists), rho)
    np.fill_diagonal(cov, 1.0)
    # Degenerate endpoints make the covariance singular; multivariate
    # sampling handles PSD matrices via eigen decomposition.
    latent = np_rng.multivariate_normal(
        mean=np.zeros(num_lists), cov=cov, size=num_objects, method="eigh"
    )
    # Deterministic jitter-free ordering: break exact ties (possible at
    # rho = ±1) by object id for reproducibility.
    objects = np.arange(1, num_objects + 1)
    perms = []
    for i in range(num_lists):
        order = np.lexsort((objects, -latent[:, i]))
        perms.append(tuple(int(objects[j]) for j in order))
    return Skeleton(tuple(perms))


def correlated_database(
    num_lists: int,
    num_objects: int,
    rho: float,
    seed: int | random.Random,
    distribution: GradeDistribution | None = None,
) -> ScoringDatabase:
    """A scoring database with rank-correlated lists and iid grade marginals."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    skeleton = correlated_skeleton(num_lists, num_objects, rho, rng)
    rows = grades_for_skeleton(skeleton, rng, distribution or Uniform())
    return ScoringDatabase.from_skeleton(skeleton, rows)


def hard_query_database(
    num_objects: int, seed: int | random.Random
) -> ScoringDatabase:
    """The Section 7 database: list 1 = Q (fully fuzzy), list 2 = NOT Q.

    The second list's sorted order is exactly the reverse of the
    first's — the deterministic extreme the copula approaches as
    rho -> -1 for two lists.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    q, not_q = self_negated_lists(num_objects, rng)
    return ScoringDatabase([q, not_q])


def spearman_rho(skeleton: Skeleton, i: int = 0, j: int = 1) -> float:
    """The realised Spearman rank correlation between two lists.

    Used by tests and by experiment E10's tables to report the
    *achieved* correlation next to the requested copula parameter.
    """
    if np is None:
        raise ImportError(
            "spearman_rho requires numpy; install numpy to report "
            "realised correlations"
        )
    rank_i = {obj: r for r, obj in enumerate(skeleton.permutations[i])}
    rank_j = {obj: r for r, obj in enumerate(skeleton.permutations[j])}
    objects = list(skeleton.objects)
    xs = np.array([rank_i[o] for o in objects], dtype=float)
    ys = np.array([rank_j[o] for o in objects], dtype=float)
    xs -= xs.mean()
    ys -= ys.mean()
    denom = float(np.sqrt((xs**2).sum() * (ys**2).sum()))
    if denom == 0.0:
        return 0.0
    return float((xs * ys).sum() / denom)
