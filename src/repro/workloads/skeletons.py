"""Workload generation under the paper's independence model (Section 5).

    "When we say that the atomic queries are independent … we mean that
    we are taking each such skeleton to have equal probability. This is
    equivalent to the assumption that each of the m sorted lists
    contains the objects in random order (in other words, each
    permutation of 1, ..., N has equal probability), independent of the
    other lists."

Generators here produce :class:`~repro.access.scoring_database.Skeleton`
and :class:`~repro.access.scoring_database.ScoringDatabase` instances
under that model, with grades drawn from pluggable distributions
(:mod:`repro.workloads.distributions`). All generation is seeded.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.access.scoring_database import ScoringDatabase, Skeleton
from repro.workloads.distributions import GradeDistribution, Uniform

__all__ = [
    "random_skeleton",
    "independent_database",
    "grades_for_skeleton",
]


def random_skeleton(
    num_lists: int, num_objects: int, seed: int | random.Random
) -> Skeleton:
    """A uniformly random skeleton over objects 1..N (independence model)."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    return Skeleton.random(num_lists, num_objects, rng)


def grades_for_skeleton(
    skeleton: Skeleton,
    rng: random.Random,
    distribution: GradeDistribution | None = None,
    distributions: Sequence[GradeDistribution] | None = None,
) -> list[list[float]]:
    """Draw iid grades per list and sort them to fit the skeleton.

    For each list, N grades are drawn iid from the list's distribution
    and assigned in descending order along the skeleton's permutation —
    so the marginal grade distribution is exactly the requested one
    while the *order* statistics realise the given skeleton. One
    distribution for all lists, or one per list.
    """
    if distributions is None:
        distributions = [distribution or Uniform()] * skeleton.num_lists
    if len(distributions) != skeleton.num_lists:
        raise ValueError(
            f"{skeleton.num_lists} lists but {len(distributions)} distributions"
        )
    rows: list[list[float]] = []
    for dist in distributions:
        row = sorted(
            (dist.sample(rng) for _ in range(skeleton.num_objects)),
            reverse=True,
        )
        rows.append(row)
    return rows


def independent_database(
    num_lists: int,
    num_objects: int,
    seed: int | random.Random,
    distribution: GradeDistribution | None = None,
    distributions: Sequence[GradeDistribution] | None = None,
) -> ScoringDatabase:
    """A scoring database drawn from the Section 5 independence model.

    Orders are independent uniform permutations; grades have the given
    marginal distribution(s) (uniform by default, matching the
    Section 9 analyses).

    >>> db = independent_database(2, 100, seed=42)
    >>> db.num_lists, db.num_objects
    (2, 100)
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    skeleton = Skeleton.random(num_lists, num_objects, rng)
    rows = grades_for_skeleton(
        skeleton, rng, distribution=distribution, distributions=distributions
    )
    return ScoringDatabase.from_skeleton(skeleton, rows)
