"""The compact-disk store: the paper's running example (Section 2).

    "let us consider an application of a store that sells compact
    disks. A typical traditional database query might ask for the names
    of all albums where the artist is the Beatles. The result is a set
    of names of albums. A multimedia query might ask for all album
    covers with a particular shade of red. Here the result is a sorted
    list of album covers."

:func:`cd_store` synthesises a catalogue of albums with both crisp
attributes (artist, year, genre — handled by the relational subsystem)
and multimedia features (cover colour, cover texture, shape roundness —
handled by the QBIC stand-in; a blurb handled by the text subsystem).
The examples and middleware integration tests run the paper's queries

    (Artist = "Beatles") AND (AlbumColor ~ "red")
    (Color = "red") AND (Shape = "round")

against this dataset end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["Album", "cd_store", "NAMED_COLORS"]

#: Reference colours for colour-target queries, as RGB in [0, 1]^3.
NAMED_COLORS: dict[str, tuple[float, float, float]] = {
    "red": (0.90, 0.10, 0.10),
    "green": (0.10, 0.75, 0.20),
    "blue": (0.15, 0.20, 0.85),
    "yellow": (0.95, 0.90, 0.15),
    "pink": (0.95, 0.60, 0.70),
    "white": (0.97, 0.97, 0.97),
    "black": (0.05, 0.05, 0.05),
    "orange": (0.95, 0.55, 0.10),
}

_ARTISTS = (
    "Beatles",
    "Miles Davis",
    "Aretha Franklin",
    "Glenn Gould",
    "Nina Simone",
    "Kraftwerk",
    "Fela Kuti",
    "Bjork",
    "Johnny Cash",
    "Mercedes Sosa",
)

_GENRES = ("rock", "jazz", "soul", "classical", "electronic", "folk", "afrobeat")

_TITLE_HEADS = (
    "Midnight",
    "Electric",
    "Blue",
    "Golden",
    "Silent",
    "Crimson",
    "Velvet",
    "Distant",
    "Broken",
    "Endless",
)

_TITLE_TAILS = (
    "Sessions",
    "Horizon",
    "Letters",
    "Mirrors",
    "Garden",
    "Parade",
    "Echoes",
    "Standards",
    "Travelogue",
    "Variations",
)

#: A few canonical Beatles records pinned into every catalogue so the
#: running example always has crisp matches, two of them red-covered.
_BEATLES_SEED_ALBUMS: tuple[tuple[str, int, tuple[float, float, float]], ...] = (
    ("Please Please Me", 1963, (0.75, 0.15, 0.20)),   # reddish cover
    ("A Hard Day's Night", 1964, (0.25, 0.30, 0.55)),
    ("Rubber Soul", 1965, (0.45, 0.35, 0.20)),
    ("Revolver", 1966, (0.92, 0.92, 0.92)),
    ("Sgt. Pepper", 1967, (0.85, 0.20, 0.15)),        # reddish cover
    ("Abbey Road", 1969, (0.40, 0.55, 0.75)),
)


@dataclass(frozen=True)
class Album:
    """One catalogue entry with crisp attributes and multimedia features."""

    album_id: str
    title: str
    artist: str
    year: int
    genre: str
    #: Mean cover colour as RGB in [0, 1]^3 (queried via the QBIC stand-in).
    cover_rgb: tuple[float, float, float]
    #: Cover texture descriptor (coarseness, contrast, directionality).
    cover_texture: tuple[float, float, float]
    #: How round the dominant cover shape is, in [0, 1].
    shape_roundness: float
    #: Free-text blurb for the text-retrieval subsystem.
    blurb: str = field(default="")

    def __post_init__(self) -> None:
        for channel in self.cover_rgb:
            if not 0.0 <= channel <= 1.0:
                raise ValueError(f"RGB channel {channel} outside [0, 1]")
        if not 0.0 <= self.shape_roundness <= 1.0:
            raise ValueError(
                f"shape roundness {self.shape_roundness} outside [0, 1]"
            )


def _blurb(rng: random.Random, artist: str, genre: str, title: str) -> str:
    moods = ("wistful", "driving", "luminous", "raw", "meticulous", "playful")
    verbs = ("revisits", "reinvents", "distils", "celebrates", "dismantles")
    return (
        f"{artist} {rng.choice(verbs)} {genre} on {title}, "
        f"a {rng.choice(moods)} record with {rng.choice(moods)} arrangements."
    )


def cd_store(num_albums: int = 200, seed: int = 7) -> list[Album]:
    """Synthesise a CD-store catalogue of ``num_albums`` records.

    Deterministic for a given seed. Always contains the pinned Beatles
    records (so the running example's crisp conjunct has matches), then
    fills up with generated albums across the artist pool.

    >>> albums = cd_store(50, seed=1)
    >>> sum(a.artist == "Beatles" for a in albums) >= 6
    True
    """
    if num_albums < len(_BEATLES_SEED_ALBUMS):
        raise ValueError(
            f"catalogue needs at least {len(_BEATLES_SEED_ALBUMS)} albums "
            f"to hold the running example, got {num_albums}"
        )
    rng = random.Random(seed)
    albums: list[Album] = []
    for idx, (title, year, rgb) in enumerate(_BEATLES_SEED_ALBUMS):
        albums.append(
            Album(
                album_id=f"cd-{idx:04d}",
                title=title,
                artist="Beatles",
                year=year,
                genre="rock",
                cover_rgb=rgb,
                cover_texture=(
                    rng.uniform(0.2, 0.8),
                    rng.uniform(0.2, 0.8),
                    rng.uniform(0.2, 0.8),
                ),
                shape_roundness=rng.uniform(0.1, 0.9),
                blurb=_blurb(rng, "Beatles", "rock", title),
            )
        )
    for idx in range(len(_BEATLES_SEED_ALBUMS), num_albums):
        artist = rng.choice(_ARTISTS)
        genre = rng.choice(_GENRES)
        title = f"{rng.choice(_TITLE_HEADS)} {rng.choice(_TITLE_TAILS)}"
        albums.append(
            Album(
                album_id=f"cd-{idx:04d}",
                title=title,
                artist=artist,
                year=rng.randint(1955, 2005),
                genre=genre,
                cover_rgb=(rng.random(), rng.random(), rng.random()),
                cover_texture=(rng.random(), rng.random(), rng.random()),
                shape_roundness=rng.random(),
                blurb=_blurb(rng, artist, genre, title),
            )
        )
    return albums
