"""repro — a reproduction of Fagin's *Combining Fuzzy Information from
Multiple Systems* (PODS 1996 / JCSS 58:83-99, 1999).

The library implements the paper's graded-set semantics, the full
catalogue of fuzzy aggregation functions, the sorted/random access
middleware cost model, and the evaluation algorithms — most notably
**Fagin's Algorithm (A0)** for top-k retrieval over multiple ranked
sources — together with a Garlic-style federated middleware, simulated
subsystems (relational / QBIC-like image search / text retrieval), the
Section 5 probabilistic workload model, and a benchmark harness that
regenerates every quantitative claim in the paper.

Quick start — the unified :class:`Engine` is the one entry point::

    from repro import Engine, MINIMUM
    from repro.workloads import independent_database

    db = independent_database(num_lists=2, num_objects=10_000, seed=0)
    engine = Engine.over(db)

    result = engine.query(MINIMUM).top(10)       # auto-selects A0'
    print(result.items, result.stats)            # ~2*sqrt(N*k), not 2N

    result = engine.query(MINIMUM).strategy("fagin").top(10)  # force A0

    cursor = engine.query(MINIMUM).cursor()      # Section 4 paging:
    page1 = cursor.next_k(10)                    # "continue where
    page2 = cursor.next_k(10)                    #  we left off"

    batch = engine.run_many([MINIMUM], k=10)     # shared session/ledger

Federated string queries run through the same engine::

    engine = Engine().register(relational).register(qbic)
    answer = engine.query('(Artist = "Beatles") AND (Color ~ "red")').top(3)
    print(answer.plan.explain(), answer.items)

The historical surfaces — ``Garlic.query`` and ``choose_algorithm`` —
remain as thin deprecation shims over the engine.

See DESIGN.md for the paper-to-module map and the old-to-new API
table, and EXPERIMENTS.md for the reproduced results.
"""

from repro.access import (
    AccessStats,
    ColumnarScoringDatabase,
    CostModel,
    CostTracker,
    GradedItem,
    MaterializedSource,
    MiddlewareSession,
    ScoringDatabase,
    Skeleton,
    SortedRandomSource,
)
from repro.algorithms import (
    DisjunctionB0,
    FaginA0,
    FaginA0Min,
    IncrementalFagin,
    MedianTopK,
    NaiveAlgorithm,
    ThresholdAlgorithm,
    TopKAlgorithm,
    TopKResult,
    UllmanAlgorithm,
    choose_algorithm,
    is_valid_top_k,
)
from repro.core import (
    ALGEBRAIC_PRODUCT,
    ARITHMETIC_MEAN,
    GEOMETRIC_MEAN,
    MAXIMUM,
    MEDIAN,
    MINIMUM,
    STANDARD_FUZZY,
    AggregationFunction,
    And,
    AtomicQuery,
    FuzzySemantics,
    GradedSet,
    Not,
    Or,
    Query,
    TConorm,
    TNorm,
    Weighted,
    atom,
)
from repro.engine import (
    AsyncEngine,
    AsyncResultCursor,
    BatchResult,
    Engine,
    ExecutionContext,
    QueryBuilder,
    ResultCursor,
    available_strategies,
    capable_strategies,
    register_strategy,
    select_strategy,
)
from repro.middleware import Garlic, parse_query, render_query
from repro.sharding import ShardedEngine
from repro.subsystems import (
    QbicSubsystem,
    RelationalSubsystem,
    Subsystem,
    SyntheticSubsystem,
    TextSubsystem,
)

__version__ = "2.8.0"

__all__ = [
    "__version__",
    # core
    "GradedSet",
    "AggregationFunction",
    "TNorm",
    "TConorm",
    "MINIMUM",
    "MAXIMUM",
    "ALGEBRAIC_PRODUCT",
    "ARITHMETIC_MEAN",
    "GEOMETRIC_MEAN",
    "MEDIAN",
    "FuzzySemantics",
    "STANDARD_FUZZY",
    "Query",
    "AtomicQuery",
    "And",
    "Or",
    "Not",
    "Weighted",
    "atom",
    # access
    "GradedItem",
    "AccessStats",
    "CostModel",
    "CostTracker",
    "SortedRandomSource",
    "MaterializedSource",
    "MiddlewareSession",
    "ColumnarScoringDatabase",
    "ScoringDatabase",
    "Skeleton",
    # algorithms
    "TopKAlgorithm",
    "TopKResult",
    "FaginA0",
    "FaginA0Min",
    "IncrementalFagin",
    "DisjunctionB0",
    "MedianTopK",
    "UllmanAlgorithm",
    "NaiveAlgorithm",
    "ThresholdAlgorithm",
    "choose_algorithm",
    "is_valid_top_k",
    # engine (the unified API)
    "Engine",
    "AsyncEngine",
    "AsyncResultCursor",
    "QueryBuilder",
    "ExecutionContext",
    "ResultCursor",
    "BatchResult",
    "register_strategy",
    "select_strategy",
    "available_strategies",
    "capable_strategies",
    # sharding (multi-process execution)
    "ShardedEngine",
    # middleware & subsystems
    "Garlic",
    "parse_query",
    "render_query",
    "Subsystem",
    "RelationalSubsystem",
    "QbicSubsystem",
    "TextSubsystem",
    "SyntheticSubsystem",
]
