"""Algorithm B0 — top-k for the standard fuzzy disjunction (Section 4).

    "We now give an algorithm (called algorithm B0) that returns the
    top k answers for the standard fuzzy disjunction A1 OR ... OR Am of
    atomic queries A1, ..., Am. Algorithm B0 has only two phases: a
    sorted access phase and a computation phase.

    Sorted access phase: For each i, use sorted access to subsystem i
    to find the set X^i_k containing the top k answers to the query Ai.

    Computation phase: For each x in U_i X^i_k, let
    h(x) = max_{i | x in X^i_k} mu_Ai(x). Let Y be a set containing the
    k members x of U_i X^i_k with the highest values of h(x) …"

Cost: exactly m*k sorted accesses and **zero** random accesses —
independent of the database size N. This is Remark 6.1's point: max is
monotone but *not strict*, so the Omega(N^((m-1)/m) k^(1/m)) lower
bound does not apply, "and in fact, in the case of max, the lower
bound fails. Algorithm B0 … has middleware cost only mk, independent
of the size N of the database!" Experiment E5 verifies both the
correctness and the flat cost curve.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.core.tconorms import MaximumTConorm
from repro.exceptions import ExhaustedSourceError

__all__ = ["DisjunctionB0"]


class DisjunctionB0(TopKAlgorithm):
    """Algorithm B0 of Section 4 — requires the max aggregation.

    Why the computed h(x) equals the true grade mu_Q(x) for every
    *returned* object (so the output grades are exact even though h can
    under-estimate for non-returned objects): if some returned y had
    mu_Q(y) > h(y) coming from a list j where y is outside X^j_k, then
    all k members of X^j_k would have h at least mu_Aj(y) > h(y),
    contradicting y's membership in the top k by h.
    """

    name = "B0"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not isinstance(aggregation, MaximumTConorm):
            raise ValueError(
                "B0 is only correct for the standard fuzzy disjunction "
                f"(max, Theorem 4.5); got {aggregation.name!r}"
            )
        best_seen: dict[object, float] = {}
        for source in session.sources:
            for _ in range(k):
                try:
                    item = source.next_sorted()
                except ExhaustedSourceError:
                    break
                current = best_seen.get(item.obj)
                if current is None or item.grade > current:
                    best_seen[item.obj] = item.grade
        return TopKResult(
            items=top_k_of(best_seen, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"union_size": len(best_seen)},
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy


def _select_b0(aggregation, num_lists, random_access, cost_model):
    if isinstance(aggregation, MaximumTConorm):
        return (
            "standard fuzzy disjunction: B0 costs m*k with sorted access "
            "only, independent of N (Theorem 4.5, Remark 6.1)"
        )
    return None


register_strategy(
    "b0",
    DisjunctionB0,
    StrategyCapabilities(
        monotone_only=True,
        needs_random_access=False,
        aggregation_guard=lambda agg, m: isinstance(agg, MaximumTConorm),
    ),
    priority=10,
    selector=_select_b0,
    aliases=("B0", "disjunction"),
    summary="Theorem 4.5: max-disjunctions in m*k sorted accesses",
    # Theorem 4.5 exactly: k sorted accesses per list, nothing else.
    cost_estimate=lambda n, m, k: (float(m * k), 0.0),
)
