"""Top-k evaluation algorithms from Sections 4, 6, 7 and 9.

* :class:`~repro.algorithms.fa.FaginA0` — algorithm A0 (the paper's
  main contribution), correct for every monotone query and optimal for
  monotone-and-strict ones;
* :class:`~repro.algorithms.fa_min.FaginA0Min` — algorithm A0' for the
  standard min conjunction;
* :class:`~repro.algorithms.fa_variants.EarlyStopFagin` /
  :class:`~repro.algorithms.fa_variants.ShrunkenFagin` — Section 4's
  "minor improvements";
* :class:`~repro.algorithms.disjunction.DisjunctionB0` — algorithm B0
  for the standard max disjunction;
* :class:`~repro.algorithms.median.MedianTopK` — the Remark 6.1 median
  construction;
* :class:`~repro.algorithms.ullman.UllmanAlgorithm` — Section 9;
* :class:`~repro.algorithms.naive.NaiveAlgorithm` — the linear
  baseline (and the only fully-general algorithm);
* :class:`~repro.algorithms.threshold.ThresholdAlgorithm` — the TA
  extension from the paper's successor line (ablation E15);
* :mod:`~repro.algorithms.hard_query` — the Section 7 constructions.
"""

from repro.algorithms.base import TopKAlgorithm, TopKResult, is_valid_top_k
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0, IncrementalFagin, run_sorted_phase
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.fa_variants import EarlyStopFagin, ShrunkenFagin
from repro.algorithms.hard_query import (
    SelfNegatedScan,
    hard_query_depth,
    self_negated_lists,
)
from repro.algorithms.median import MedianTopK, median_subset_size
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.algorithms.selection import AlgorithmChoice, choose_algorithm
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.algorithms.ullman import UllmanAlgorithm

__all__ = [
    "TopKAlgorithm",
    "TopKResult",
    "is_valid_top_k",
    "FaginA0",
    "IncrementalFagin",
    "run_sorted_phase",
    "FaginA0Min",
    "EarlyStopFagin",
    "ShrunkenFagin",
    "DisjunctionB0",
    "MedianTopK",
    "median_subset_size",
    "UllmanAlgorithm",
    "NaiveAlgorithm",
    "NoRandomAccessAlgorithm",
    "ThresholdAlgorithm",
    "SelfNegatedScan",
    "hard_query_depth",
    "self_negated_lists",
    "AlgorithmChoice",
    "choose_algorithm",
]
