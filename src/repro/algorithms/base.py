"""Common contract for top-k algorithms (Section 4).

    "Assume that we are interested in obtaining the top k answers …
    This means that we want to obtain k objects with the highest grades
    on this query, along with their grades. If there are ties, then we
    want to arbitrarily obtain k objects and their grades such that for
    each y among these k objects and each z not among these k objects,
    mu_Q(y) >= mu_Q(z)."

Every algorithm consumes a :class:`~repro.access.session.MiddlewareSession`
(its only route to grades — so its access cost is measured by
construction) plus an aggregation function and k, and produces a
:class:`TopKResult`.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.access.cost import AccessStats
from repro.access.session import MiddlewareSession
from repro.access.source import tie_break_key
from repro.access.types import GradedItem, ObjectId
from repro.core.aggregation import AggregationFunction
from repro.core.certify import (
    EXACT_GUARANTEE,
    Guarantee,
    QualityContract,
    as_contract,
)
from repro.core.graded_set import GradedSet
from repro.exceptions import InsufficientObjectsError

__all__ = ["TopKResult", "TopKAlgorithm", "is_valid_top_k"]


@dataclass(frozen=True, slots=True)
class TopKResult:
    """The graded answer of a top-k run, plus its measured access cost.

    Attributes
    ----------
    items:
        The k answers in descending grade order.
    stats:
        Access counts for the whole run (this run only — the session's
        tracker is snapshotted before and after).
    algorithm:
        Name of the algorithm that produced the result.
    details:
        Algorithm-specific diagnostics, e.g. A0's stopping depth ``T``
        or A0-prime's candidate-set size. Keys are documented by each
        algorithm.
    guarantee:
        The quality statement this run certifies. ``None`` from an
        algorithm body means "exact" (every pre-contract algorithm
        runs to exact completion); the template normalises it to
        :data:`~repro.core.certify.EXACT_GUARANTEE` so consumers can
        rely on the field.
    """

    items: tuple[GradedItem, ...]
    stats: AccessStats
    algorithm: str
    details: Mapping[str, object] = field(default_factory=dict)
    guarantee: Guarantee | None = None

    @property
    def k(self) -> int:
        return len(self.items)

    def as_graded_set(self) -> GradedSet:
        """The answers as a :class:`GradedSet` (the paper's output form)."""
        return GradedSet({item.obj: item.grade for item in self.items})

    def objects(self) -> tuple[ObjectId, ...]:
        return tuple(item.obj for item in self.items)

    def grades(self) -> tuple[float, ...]:
        return tuple(item.grade for item in self.items)

    def __repr__(self) -> str:
        return (
            f"TopKResult({self.algorithm}, k={self.k}, "
            f"S={self.stats.sorted_cost}, R={self.stats.random_cost})"
        )


class TopKAlgorithm(ABC):
    """Base class: argument validation + the run template."""

    name: str = "top-k-algorithm"

    #: Whether this algorithm honours non-exact quality contracts by
    #: implementing :meth:`_run_certified`. Algorithms that don't are
    #: still valid under any contract — they run to exact completion,
    #: and exact trivially satisfies every ε (the strongest guarantee
    #: wins); the delivered guarantee says so honestly.
    supports_contracts: bool = False

    def top_k(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
        contract: "QualityContract | float | None" = None,
    ) -> TopKResult:
        """Find the top k answers to ``Ft(A1, ..., Am)`` over the session.

        ``session.sources[i]`` is the graded result of atomic query
        ``A_{i+1}``; ``aggregation`` is the function t. Subclasses
        state their own correctness preconditions (e.g. A0 requires a
        monotone t — Theorem 4.2). ``contract`` optionally relaxes the
        termination test (a :class:`~repro.core.certify.QualityContract`
        or a bare ε); the returned result's ``guarantee`` states what
        was actually certified.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if k > session.num_objects:
            raise InsufficientObjectsError(k, session.num_objects)
        contract = as_contract(contract)
        before = session.tracker.snapshot()
        if contract.kind != "exact" and self.supports_contracts:
            result = self._run_certified(session, aggregation, k, contract)
        else:
            result = self._run(session, aggregation, k)
        after = session.tracker.snapshot()
        # Re-derive this run's stats from the tracker delta so that
        # algorithms cannot under-report by snapshotting early.
        delta = AccessStats(
            tuple(
                a - b
                for a, b in zip(after.sorted_by_list, before.sorted_by_list)
            ),
            tuple(
                a - b
                for a, b in zip(after.random_by_list, before.random_by_list)
            ),
        )
        return TopKResult(
            result.items,
            delta,
            result.algorithm,
            result.details,
            result.guarantee or EXACT_GUARANTEE,
        )

    @abstractmethod
    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        """Algorithm body; k and session are already validated."""

    def _run_certified(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
        contract: QualityContract,
    ) -> TopKResult:
        """Contract-aware body; only called when
        :attr:`supports_contracts` is True. The default refuses loudly
        so a subclass cannot claim support without implementing it."""
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_contracts but does not "
            "implement _run_certified"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def top_k_of(
    scored: Mapping[ObjectId, float] | Sequence[tuple[ObjectId, float]], k: int
) -> tuple[GradedItem, ...]:
    """The k highest-graded items with the deterministic tie-break.

    Selection, not sorting: ``heapq.nlargest`` over the bare grades
    finds the k-th grade at C speed, then only the candidates at or
    above it (k objects plus any ties on the boundary) get the full
    ``(-grade, tie_break_key)`` ordering. Identical to the full
    descending sort truncated to k — same order, same ties — in
    O(n log k) and without minting :class:`GradedItem` objects for the
    losers.
    """
    if k <= 0:
        return ()
    pairs = scored.items() if isinstance(scored, Mapping) else scored
    candidates = list(pairs)
    if len(candidates) > k:
        kth = heapq.nlargest(k, (grade for _, grade in candidates))[-1]
        candidates = [(obj, grade) for obj, grade in candidates if grade >= kth]
    candidates.sort(key=lambda og: (-og[1], tie_break_key(og[0])))
    return tuple(GradedItem(obj, grade) for obj, grade in candidates[:k])


def is_valid_top_k(
    items: Sequence[GradedItem],
    overall: GradedSet,
    k: int,
    tolerance: float = 1e-9,
) -> bool:
    """Check a result against ground truth, honouring tie freedom.

    Valid iff (a) exactly k distinct objects are returned, (b) each
    returned grade equals the object's true overall grade, and (c) for
    every returned y and non-returned z, mu(y) >= mu(z) — Section 4's
    specification verbatim. Used by tests and by the adversarial
    lower-bound harness.
    """
    if len(items) != k:
        return False
    returned = {item.obj for item in items}
    if len(returned) != k:
        return False
    for item in items:
        if item.obj not in overall:
            return False
        if abs(item.grade - overall.grade(item.obj)) > tolerance:
            return False
    worst_returned = min(item.grade for item in items)
    best_excluded = max(
        (g for obj, g in overall.as_dict().items() if obj not in returned),
        default=0.0,
    )
    return worst_returned >= best_excluded - tolerance
