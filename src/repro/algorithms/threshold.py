"""The Threshold Algorithm (TA) — extension beyond the paper.

The paper's related-work line ([Fa98], and later Fagin-Lotem-Naor,
"Optimal aggregation algorithms for middleware", PODS 2001) replaced A0
with the Threshold Algorithm, which interleaves random access into the
sorted phase and stops by comparing against an aggregation of the last
grades seen under sorted access. We implement it as the natural
"future work" extension and use it for the E15 ablation (FA vs TA):
TA's stopping rule adapts to the data instead of waiting for k full
matches, so its access cost is never more than a constant factor worse
and often far better — while A0 remains the algorithm the paper's
probabilistic guarantees are stated for.

Algorithm (for a monotone aggregation t):

1. Do sorted access in parallel to each of the m lists. As an object x
   is seen under sorted access in some list, do random access to the
   other lists to find all its grades and compute t(x). Remember the k
   highest-graded objects seen so far.
2. After each round at depth d, let b_i be the grade of the d-th object
   in list i and define the threshold tau = t(b_1, ..., b_m). By
   monotonicity no unseen object can have grade above tau.
3. Halt when k seen objects have grades >= tau, or when every list is
   exhausted (then all objects have been seen).
"""

from __future__ import annotations

import heapq

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.core.certify import EXACT, QualityContract
from repro.core.kernels import kernel_for

__all__ = ["ThresholdAlgorithm"]

#: Pending batches smaller than this are scored by the scalar fold even
#: when a kernel exists: a (m, n) numpy round-trip costs more than n
#: scalar evaluations for tiny n, and post-warm-up TA rounds surface at
#: most m new objects each. Warm-up chunks (k not yet reached) are the
#: batches the kernel sweep is for.
_KERNEL_MIN_PENDING = 16


def _seed_grades(m: int, first_list: int, grade: float) -> list[float]:
    """A grade vector with only the first-sighting list filled in."""
    grades = [0.0] * m
    grades[first_list] = grade
    return grades


class ThresholdAlgorithm(TopKAlgorithm):
    """TA over the same session interface as A0.

    Result ``details``: ``rounds`` (sorted depth reached),
    ``threshold`` (final tau), ``seen`` (distinct objects graded).

    TA honours quality contracts: under an ε-approximate contract the
    stop check relaxes to the FLN θ-approximation — halt once
    ``(1 + ε) * kth_best >= tau``. The certificate is immediate from
    monotonicity: every unreturned object z (seen or unseen) has
    ``mu(z) <= tau <= (1 + ε) * kth_best <= (1 + ε) * mu(y)`` for
    every returned y. At ε=0 the rule takes the historical exact
    comparison verbatim, so answers and access ledgers stay
    bit-identical.
    """

    name = "TA"
    supports_contracts = True

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        return self._run_certified(session, aggregation, k, EXACT)

    def _run_certified(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
        contract: QualityContract,
    ) -> TopKResult:
        if not aggregation.monotone:
            raise ValueError(
                "TA requires a monotone aggregation; "
                f"{aggregation.name!r} is declared non-monotone"
            )
        m = session.num_lists
        sources = session.sources
        rule = contract.stopping_rule()
        scored: dict[object, float] = {}
        # Min-heap of the k best grades seen so far: an object's grade
        # never changes once scored, so the k-th best is maintained
        # incrementally instead of re-selected from all grades per round.
        best: list[float] = []
        bottoms = [1.0] * m
        rounds = 0
        tau = 1.0
        vectorized = kernel_for(aggregation) is not None
        while True:
            # The stop check needs k scored objects first, and a round of
            # m sorted accesses surfaces at most m new objects — so while
            # |scored| < k, ceil((k - |scored|)/m) lockstep rounds can be
            # fetched as one batch per list without moving the stopping
            # point. Afterwards the check runs after every single round.
            if len(scored) < k:
                chunk = -(-(k - len(scored)) // m)
            else:
                chunk = 1
            batches = [sources[i].sorted_access_batch(chunk) for i in range(m)]
            delivered = max(len(b) for b in batches)
            if delivered == 0:
                # Every list exhausted: all objects seen and graded. The
                # exhaustion probe performed no sorted accesses, so it is
                # not a round — ``rounds`` reports only depths actually
                # reached (== the per-list maximum sorted depth).
                break
            rounds += delivered
            # Replay the chunk round-major so "which list saw the object
            # first" — and with it the per-list random-access counts —
            # matches the unit-step interleaving exactly.
            pending: dict[object, tuple[int, float]] = {}
            for r in range(delivered):
                for i in range(m):
                    batch = batches[i]
                    if r >= len(batch):
                        continue
                    item = batch[r]
                    bottoms[i] = item.grade
                    obj = item.obj
                    if obj not in scored and obj not in pending:
                        pending[obj] = (i, item.grade)
            if pending:
                # Bulk random access, grouped per target list: every new
                # object is looked up in each list other than the one
                # that first delivered it, exactly as the unit loop does.
                grades_by_obj = {
                    obj: _seed_grades(m, i, grade)
                    for obj, (i, grade) in pending.items()
                }
                for j in range(m):
                    objs = [o for o, (i, _) in pending.items() if i != j]
                    if not objs:
                        continue
                    looked_up = sources[j].random_access_many(objs)
                    for obj, grade in zip(objs, looked_up):
                        grades_by_obj[obj][j] = grade
                if vectorized and len(pending) >= _KERNEL_MIN_PENDING:
                    # Kernel sweep: transpose the per-object grade
                    # vectors into (m, n) rows — column idx is the
                    # idx-th pending object in first-seen order — and
                    # score the whole batch in one matrix evaluation
                    # (warm-up chunks are the large batches this is
                    # for; the zip transpose is C-speed).
                    rows = list(zip(*grades_by_obj.values()))
                    scores = aggregation.evaluate_columns(rows)
                else:
                    # Scalar fallback: no kernel, or a batch too small
                    # to amortise the numpy round-trip.
                    evaluate = aggregation.evaluate_trusted
                    scores = [
                        evaluate(grades)
                        for grades in grades_by_obj.values()
                    ]
                for obj, grade in zip(grades_by_obj, scores):
                    scored[obj] = grade
                    if len(best) < k:
                        heapq.heappush(best, grade)
                    elif grade > best[0]:
                        heapq.heapreplace(best, grade)
            tau = aggregation.evaluate_trusted(bottoms)
            if len(scored) >= k:
                kth_best = best[0]
                if rule.met(kth_best, tau):
                    break

        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"rounds": rounds, "threshold": tau, "seen": len(scored)},
            guarantee=rule.guarantee(tau),
        )


# ----------------------------------------------------------------------
# Registry self-registration (manual-only: TA postdates the paper, so
# auto-selection keeps reproducing the paper's table; force it with
# ``.strategy("threshold")`` or benchmark E15.)
# ----------------------------------------------------------------------

from repro.engine.registry import (
    StrategyCapabilities,
    envelope_depth,
    register_strategy,
)

register_strategy(
    "threshold",
    ThresholdAlgorithm,
    StrategyCapabilities(
        monotone_only=True, needs_random_access=True, batch_aware=True
    ),
    aliases=("TA",),
    summary="Threshold Algorithm (FLN 2001 successor); adaptive stopping",
    # TA stops no later than A0 (instance optimality); on independent
    # lists its depth tracks the same envelope, with every seen object
    # random-probed in the other lists as it surfaces.
    cost_estimate=lambda n, m, k: (
        min(m * envelope_depth(n, m, k), m * n),
        min((m - 1) * 0.87 * m * envelope_depth(n, m, k), (m - 1) * n),
    ),
)
