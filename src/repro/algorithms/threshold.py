"""The Threshold Algorithm (TA) — extension beyond the paper.

The paper's related-work line ([Fa98], and later Fagin-Lotem-Naor,
"Optimal aggregation algorithms for middleware", PODS 2001) replaced A0
with the Threshold Algorithm, which interleaves random access into the
sorted phase and stops by comparing against an aggregation of the last
grades seen under sorted access. We implement it as the natural
"future work" extension and use it for the E15 ablation (FA vs TA):
TA's stopping rule adapts to the data instead of waiting for k full
matches, so its access cost is never more than a constant factor worse
and often far better — while A0 remains the algorithm the paper's
probabilistic guarantees are stated for.

Algorithm (for a monotone aggregation t):

1. Do sorted access in parallel to each of the m lists. As an object x
   is seen under sorted access in some list, do random access to the
   other lists to find all its grades and compute t(x). Remember the k
   highest-graded objects seen so far.
2. After each round at depth d, let b_i be the grade of the d-th object
   in list i and define the threshold tau = t(b_1, ..., b_m). By
   monotonicity no unseen object can have grade above tau.
3. Halt when k seen objects have grades >= tau, or when every list is
   exhausted (then all objects have been seen).
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.exceptions import ExhaustedSourceError

__all__ = ["ThresholdAlgorithm"]


class ThresholdAlgorithm(TopKAlgorithm):
    """TA over the same session interface as A0.

    Result ``details``: ``rounds`` (sorted depth reached),
    ``threshold`` (final tau), ``seen`` (distinct objects graded).
    """

    name = "TA"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not aggregation.monotone:
            raise ValueError(
                "TA requires a monotone aggregation; "
                f"{aggregation.name!r} is declared non-monotone"
            )
        m = session.num_lists
        scored: dict[object, float] = {}
        bottoms = [1.0] * m
        rounds = 0
        tau = 1.0
        while True:
            any_progress = False
            for i, source in enumerate(session.sources):
                if source.exhausted:
                    continue
                try:
                    item = source.next_sorted()
                except ExhaustedSourceError:  # pragma: no cover
                    continue
                any_progress = True
                bottoms[i] = item.grade
                if item.obj not in scored:
                    grades = [0.0] * m
                    grades[i] = item.grade
                    for j in range(m):
                        if j != i:
                            grades[j] = session.sources[j].random_access(item.obj)
                    scored[item.obj] = aggregation(*grades)
            rounds += 1
            if not any_progress:
                # Every list exhausted: all objects seen and graded.
                break
            tau = aggregation(*bottoms)
            if len(scored) >= k:
                kth_best = sorted(scored.values(), reverse=True)[k - 1]
                if kth_best >= tau:
                    break

        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"rounds": rounds, "threshold": tau, "seen": len(scored)},
        )


# ----------------------------------------------------------------------
# Registry self-registration (manual-only: TA postdates the paper, so
# auto-selection keeps reproducing the paper's table; force it with
# ``.strategy("threshold")`` or benchmark E15.)
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy

register_strategy(
    "threshold",
    ThresholdAlgorithm,
    StrategyCapabilities(monotone_only=True, needs_random_access=True),
    aliases=("TA",),
    summary="Threshold Algorithm (FLN 2001 successor); adaptive stopping",
)
