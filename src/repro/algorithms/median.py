"""The median algorithm of Remark 6.1.

    "Another aggregation function that is not strict is the median.
    Again, our lower bound fails in this case. For example, assume that
    m = 3 … We now give an algorithm that finds the top k answers to
    this query. The algorithm is based on the fact that

        median(a1, a2, a3)
            = max(min(a1, a2), min(a1, a3), min(a2, a3)).    (13)

    1. Find the top k answers for the query that evaluates
       min(mu_A1(x), mu_A2(x)) … by using algorithm A0. …
    2. [same for (A1, A3)] 3. [same for (A2, A3)]
    4. Output the k objects in X_{1,2} ∪ X_{1,3} ∪ X_{2,3} with the
       highest median scores, along with these scores.

    … This algorithm has middleware cost O(sqrt(N k)), with arbitrarily
    high probability, and so the lower bound (12) with m = 3 fails."

Identity (13) generalises to any arity: the r-th largest of m values
equals the max over all r-subsets of the min of the subset. The (lower)
median of m values is the r-th largest for r = floor(m/2) + 1, so the
same construction — run A0-with-min on every r-subset of the lists,
union the answer sets, complete grades by random access, rank by
median — works for every m >= 3 (at C(m, r) pairwise-A0 runs; the
m = 3 case of the paper does 3 runs over pairs).
"""

from __future__ import annotations

import itertools

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.algorithms.fa import FaginA0
from repro.core.aggregation import AggregationFunction
from repro.core.means import Median
from repro.core.tnorms import MINIMUM

__all__ = ["MedianTopK", "median_subset_size"]


def median_subset_size(m: int) -> int:
    """r such that the (lower) median of m values is the r-th largest.

    >>> median_subset_size(3)
    2
    >>> median_subset_size(5)
    3
    """
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")
    return m // 2 + 1


class MedianTopK(TopKAlgorithm):
    """Remark 6.1's algorithm: median via pairwise (r-subset) min runs.

    Correctness: suppose x is among the true top k by median but x is
    outside the A0 answer set of *every* r-subset. median(x) equals
    min over some r-subset S of x's grades (identity 13 achieves its
    max at some subset). Since x is not in the top k for subset S,
    there are k objects y with min_S(y) >= min_S(x) = median(x); each
    such y has median(y) >= min_S(y) >= median(x). So at least k
    objects weakly dominate x, and the union of the answer sets always
    contains a valid top-k — ranking the union by true median (grades
    completed by random access) returns one.

    Result ``details``: ``subset_runs`` (number of A0 sub-runs),
    ``candidates`` (size of the union).
    """

    name = "median-topk"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not isinstance(aggregation, Median):
            raise ValueError(
                "MedianTopK evaluates the median aggregation "
                f"(Remark 6.1); got {aggregation.name!r}"
            )
        m = session.num_lists
        if m < 3:
            raise ValueError(
                f"the median construction needs at least 3 lists, got {m}"
            )
        r = median_subset_size(m)
        inner = FaginA0()
        candidates: set[object] = set()
        runs = 0
        for subset in itertools.combinations(range(m), r):
            sub = session.subsession(subset, restart=True)
            result = inner.top_k(sub, MINIMUM, k)
            candidates.update(result.objects())
            runs += 1

        # Complete every candidate's grades by random access, then rank
        # by the true median. (Random accesses here are charged like
        # any other; the paper's O(sqrt(Nk)) bound absorbs the O(k)
        # completions.)
        grades: dict[object, list[float]] = {}
        for obj in candidates:
            grades[obj] = [
                session.sources[j].random_access(obj) for j in range(m)
            ]
        scored = {obj: aggregation(*gs) for obj, gs in grades.items()}
        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"subset_runs": runs, "candidates": len(candidates)},
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy


def _select_median(aggregation, num_lists, random_access, cost_model):
    if random_access and isinstance(aggregation, Median) and num_lists >= 3:
        return (
            "median aggregation: the Remark 6.1 subset-min construction "
            "beats the strict-query lower bound"
        )
    return None


register_strategy(
    "median",
    MedianTopK,
    StrategyCapabilities(
        monotone_only=True,
        needs_random_access=True,
        min_lists=3,
        aggregation_guard=lambda agg, m: isinstance(agg, Median),
    ),
    priority=30,
    selector=_select_median,
    aliases=("median-topk",),
    summary="Remark 6.1: median via pairwise subset-min A0 runs",
)
