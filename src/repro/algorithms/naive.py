"""The naive linear algorithm (Section 4).

    "There is an obvious naive algorithm:
     1. Have the subsystem dealing with color … output explicitly the
        graded set consisting of all pairs (x, mu_A1(x)) for every
        object x.
     2. Have the subsystem dealing with shape … output … all pairs
        (x, mu_A2(x)) …
     3. Use this information to compute mu_{A1 AND A2}(x) =
        min(mu_A1(x), mu_A2(x)) for every object x. For the k objects x
        with the top grades, output the object along with its grade."

Cost: exactly m*N sorted accesses, 0 random accesses — "the naive
algorithm must retrieve a number of elements that is linear in the
database size" (Abstract). It is, however, correct for *every*
aggregation function (monotone or not), which makes it both the
baseline of experiment E9 and the ground-truth oracle in tests, and —
by Theorem 7.1 — essentially optimal for the hard query of Section 7.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.core.kernels import HAVE_NUMPY, evaluate_matrix

if HAVE_NUMPY:
    import numpy as _np

__all__ = ["NaiveAlgorithm"]


class NaiveAlgorithm(TopKAlgorithm):
    """Full scan of every list; correct for any aggregation function."""

    name = "naive"

    #: Sorted accesses fetched per batch while draining a list. The scan
    #: is unconditional (every list is read to the end), so any chunk
    #: size yields the same m*N access count; this one keeps batches
    #: comfortably cache-sized.
    SCAN_BATCH = 4096

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        # Drain every list, keeping each list's delivery as parallel
        # (object, grade) columns — the cheapest possible shape to
        # re-align by object afterwards.
        deliveries: list[tuple[list, list]] = []
        for source in session.sources:
            objs: list = []
            grades: list[float] = []
            while True:
                batch = source.sorted_access_batch(self.SCAN_BATCH)
                if not batch:
                    break
                for item in batch:
                    objs.append(item.obj)
                    grades.append(item.grade)
            deliveries.append((objs, grades))

        m = session.num_lists
        # Intern objects in first-seen order (list 0's delivery order,
        # then anything later lists add) — the same iteration order the
        # dict-of-dicts implementation produced.
        index: dict[object, int] = {}
        for objs, _ in deliveries:
            for obj in objs:
                if obj not in index:
                    index[obj] = len(index)
        n = len(index)

        if any(len(objs) != n for objs, _ in deliveries):
            self._raise_missing(deliveries, index, m)

        scored = self._score(aggregation, deliveries, index, n, m)

        # top_k_of selects with heapq.nlargest semantics — no full sort
        # of all N aggregate grades, no GradedItem minting for losers.
        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"objects_scanned": n},
        )

    def _score(self, aggregation, deliveries, index, n, m):
        """Aggregate the aligned grade matrix into (object, score) pairs."""
        objects = list(index)
        if HAVE_NUMPY:
            matrix = _np.empty((m, n), dtype=_np.float64)
            for i, (objs, grades) in enumerate(deliveries):
                positions = _np.fromiter(
                    map(index.__getitem__, objs), dtype=_np.intp, count=n
                )
                covered = _np.zeros(n, dtype=bool)
                covered[positions] = True
                if not covered.all():
                    # n items but not n distinct objects: a duplicate is
                    # hiding a missing (object, list) pair.
                    self._raise_missing(deliveries, index, m)
                matrix[i, positions] = grades
            scores = evaluate_matrix(aggregation, matrix)
            if scores is not None:
                return list(zip(objects, scores.tolist()))
            rows = matrix  # scalar fold below iterates matrix rows
        else:
            rows = []
            for objs, grades in deliveries:
                row = [None] * n
                for obj, grade in zip(objs, grades):
                    row[index[obj]] = grade
                if any(grade is None for grade in row):
                    self._raise_missing(deliveries, index, m)
                rows.append(row)
        evaluate = aggregation.evaluate_trusted
        return [
            (obj, evaluate([row[j] for row in rows]))
            for j, obj in enumerate(objects)
        ]

    @staticmethod
    def _raise_missing(deliveries, index, m):
        """Replicate the dict-based error for a short list.

        An object missing from some list violates the Section 5 model
        (every list grades all N objects); surface it — with the same
        message the pre-vectorization implementation raised — rather
        than silently grading 0.
        """
        by_object: dict[object, dict[int, float]] = {obj: {} for obj in index}
        for i, (objs, grades) in enumerate(deliveries):
            for obj, grade in zip(objs, grades):
                by_object[obj][i] = grade
        for obj, by_list in by_object.items():
            if len(by_list) != m:
                missing = [i for i in range(m) if i not in by_list]
                raise ValueError(
                    f"object {obj!r} missing from list(s) {missing}; "
                    "scoring databases must grade every object in every list"
                )
        raise AssertionError(  # pragma: no cover - lists disagreed in size
            "list lengths diverged without a missing (object, list) pair"
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy


def _select_naive(aggregation, num_lists, random_access, cost_model):
    # Monotone workloads are claimed upstream (B0/NRA/median/A0'/A0);
    # the naive scan is the guaranteed-correct fallback for the rest.
    if aggregation.monotone:
        return None
    if not random_access:
        return "non-monotone query without random access: full sorted scan"
    return (
        "non-monotone aggregation: only the naive full scan is guaranteed "
        "correct (cf. the Theta(N) hard query of Theorem 7.1)"
    )


register_strategy(
    "naive",
    NaiveAlgorithm,
    StrategyCapabilities(
        monotone_only=False, needs_random_access=False, batch_aware=True
    ),
    priority=100,
    selector=_select_naive,
    summary="full scan; the only fully-general strategy (Theorem 7.1)",
    # Exact, not an envelope: the scan reads every list end to end.
    cost_estimate=lambda n, m, k: (float(m * n), 0.0),
)
