"""The naive linear algorithm (Section 4).

    "There is an obvious naive algorithm:
     1. Have the subsystem dealing with color … output explicitly the
        graded set consisting of all pairs (x, mu_A1(x)) for every
        object x.
     2. Have the subsystem dealing with shape … output … all pairs
        (x, mu_A2(x)) …
     3. Use this information to compute mu_{A1 AND A2}(x) =
        min(mu_A1(x), mu_A2(x)) for every object x. For the k objects x
        with the top grades, output the object along with its grade."

Cost: exactly m*N sorted accesses, 0 random accesses — "the naive
algorithm must retrieve a number of elements that is linear in the
database size" (Abstract). It is, however, correct for *every*
aggregation function (monotone or not), which makes it both the
baseline of experiment E9 and the ground-truth oracle in tests, and —
by Theorem 7.1 — essentially optimal for the hard query of Section 7.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction

__all__ = ["NaiveAlgorithm"]


class NaiveAlgorithm(TopKAlgorithm):
    """Full scan of every list; correct for any aggregation function."""

    name = "naive"

    #: Sorted accesses fetched per batch while draining a list. The scan
    #: is unconditional (every list is read to the end), so any chunk
    #: size yields the same m*N access count; this one keeps batches
    #: comfortably cache-sized.
    SCAN_BATCH = 4096

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        grades: dict[object, dict[int, float]] = {}
        for i, source in enumerate(session.sources):
            while True:
                batch = source.sorted_access_batch(self.SCAN_BATCH)
                if not batch:
                    break
                for item in batch:
                    by_list = grades.get(item.obj)
                    if by_list is None:
                        by_list = grades[item.obj] = {}
                    by_list[i] = item.grade

        m = session.num_lists
        evaluate = aggregation.evaluate_trusted
        scored: dict[object, float] = {}
        for obj, by_list in grades.items():
            if len(by_list) != m:
                # An object missing from some list violates the Section 5
                # model (every list grades all N objects); surface it
                # rather than silently grading 0.
                missing = [i for i in range(m) if i not in by_list]
                raise ValueError(
                    f"object {obj!r} missing from list(s) {missing}; "
                    "scoring databases must grade every object in every list"
                )
            scored[obj] = evaluate([by_list[i] for i in range(m)])

        # top_k_of selects with heapq.nlargest semantics — no full sort
        # of all N aggregate grades, no GradedItem minting for losers.
        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"objects_scanned": len(scored)},
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy


def _select_naive(aggregation, num_lists, random_access, cost_model):
    # Monotone workloads are claimed upstream (B0/NRA/median/A0'/A0);
    # the naive scan is the guaranteed-correct fallback for the rest.
    if aggregation.monotone:
        return None
    if not random_access:
        return "non-monotone query without random access: full sorted scan"
    return (
        "non-monotone aggregation: only the naive full scan is guaranteed "
        "correct (cf. the Theta(N) hard query of Theorem 7.1)"
    )


register_strategy(
    "naive",
    NaiveAlgorithm,
    StrategyCapabilities(
        monotone_only=False, needs_random_access=False, batch_aware=True
    ),
    priority=100,
    selector=_select_naive,
    summary="full scan; the only fully-general strategy (Theorem 7.1)",
)
