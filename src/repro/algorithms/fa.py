"""Algorithm A0 — Fagin's Algorithm (Section 4).

    "The algorithm consists of three phases: sorted access, random
    access, and computation.

    Sorted access phase: For each i, give subsystem i the query Ai
    under sorted access. … Wait until there are at least k 'matches';
    that is, wait until there is a set L of at least k objects such
    that each subsystem has output all of the members of L.

    Random access phase: For each object x that has been seen, do
    random access to each subsystem j to find mu_Aj(x).

    Computation phase: Compute the grade mu_Q(x) = t(mu_A1(x), ...,
    mu_Am(x)) for each object x that has been seen. Let Y be a set
    containing the k objects that have been seen with highest grades
    (ties are broken arbitrarily). The output is then the graded set
    {(x, mu_Q(x)) | x in Y}."

Correct for every *monotone* query (Theorem 4.2, via the
upward-closure Proposition 4.1); middleware cost
O(N^((m-1)/m) * k^(1/m)) with arbitrarily high probability when the
atomic queries are independent (Theorem 5.3), which is optimal for
monotone-and-strict queries (Theorem 6.5).

This module also provides :class:`IncrementalFagin`, implementing the
paper's observation that "after finding the top k answers, in order to
find the next k best answers we can 'continue where we left off.'"
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.access.session import MiddlewareSession
from repro.access.types import ObjectId
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.exceptions import ExhaustedSourceError, InsufficientObjectsError

__all__ = ["SortedPhaseState", "run_sorted_phase", "FaginA0", "IncrementalFagin"]


@dataclass
class SortedPhaseState:
    """Everything the sorted-access phase of A0 discovers.

    Shared by A0 itself, A0-prime (:mod:`repro.algorithms.fa_min`) and
    the variants (:mod:`repro.algorithms.fa_variants`), which differ
    only in how they use this state afterwards.

    Attributes
    ----------
    seen:
        For each object seen under sorted access, the grades discovered
        so far, keyed by list index.
    order_by_list:
        X^i_T in delivery order — ``order_by_list[i][r]`` is the object
        at rank ``r + 1`` of list i.
    matched:
        L — the objects output by *every* list (at least k of them once
        the phase ends).
    depth:
        T — the uniform number of sorted accesses made to each list.
    """

    seen: dict[ObjectId, dict[int, float]] = field(default_factory=dict)
    order_by_list: list[list[ObjectId]] = field(default_factory=list)
    matched: set[ObjectId] = field(default_factory=set)
    depth: int = 0


def run_sorted_phase(
    session: MiddlewareSession,
    k: int,
    state: SortedPhaseState | None = None,
    stop_mid_round: bool = False,
) -> SortedPhaseState:
    """Run (or resume) A0's sorted access phase until |L| >= k.

    Lists are advanced in lockstep, one object per list per round, so
    all lists reach the same depth T — matching the algorithm as
    stated. With ``stop_mid_round`` the phase returns as soon as the
    k-th match appears, even mid-round (one of Section 4's "minor
    improvements"; saves at most m-1 accesses per round).

    Resuming with an existing ``state`` continues where the previous
    phase left off (sources keep their cursors), which is what
    :class:`IncrementalFagin` uses for next-k queries.
    """
    if state is None:
        state = SortedPhaseState()
    m = session.num_lists
    if not state.order_by_list:
        state.order_by_list = [[] for _ in range(m)]

    while len(state.matched) < k:
        progressed = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            try:
                item = source.next_sorted()
            except ExhaustedSourceError:  # pragma: no cover - guarded above
                continue
            progressed = True
            state.order_by_list[i].append(item.obj)
            by_list = state.seen.setdefault(item.obj, {})
            by_list[i] = item.grade
            if len(by_list) == m:
                state.matched.add(item.obj)
                if stop_mid_round and len(state.matched) >= k:
                    break
        state.depth = max(len(lst) for lst in state.order_by_list)
        if not progressed:
            # All lists exhausted: every object has been seen in every
            # list, so |matched| = N. If that is still below k the
            # caller asked for more answers than objects exist.
            if len(state.matched) < k:
                raise InsufficientObjectsError(k, len(state.matched))
            break
    return state


def complete_random_phase(
    session: MiddlewareSession, state: SortedPhaseState
) -> None:
    """A0's random access phase: fill in every missing grade.

    "For each object x that has been seen, do random access to each
    subsystem j to find mu_Aj(x)." Grades already known from sorted
    access are not re-fetched ("if x in X^j_T, then mu_Aj(x) has
    already been determined, so random access is not needed").
    """
    m = session.num_lists
    for obj, by_list in state.seen.items():
        for j in range(m):
            if j not in by_list:
                by_list[j] = session.sources[j].random_access(obj)


class FaginA0(TopKAlgorithm):
    """Algorithm A0, exactly as given in Section 4.

    Correctness requires the aggregation to be monotone
    (Theorem 4.2) — this is asserted against the aggregation's
    declared flag unless ``trust_caller`` is set (the cost experiments
    never need to disable it; the flag exists so users can run A0 on
    aggregations they have classified themselves).

    Result ``details``: ``T`` (sorted depth), ``matches`` (|L|),
    ``seen`` (number of distinct objects accessed).
    """

    name = "A0"

    def __init__(self, trust_caller: bool = False) -> None:
        self._trust_caller = trust_caller

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not aggregation.monotone and not self._trust_caller:
            raise ValueError(
                f"A0 is only guaranteed correct for monotone queries "
                f"(Theorem 4.2); {aggregation.name!r} is declared "
                "non-monotone. Pass trust_caller=True to override."
            )
        state = run_sorted_phase(session, k)
        complete_random_phase(session, state)
        m = session.num_lists
        scored = {
            obj: aggregation(*(by_list[j] for j in range(m)))
            for obj, by_list in state.seen.items()
        }
        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={
                "T": state.depth,
                "matches": len(state.matched),
                "seen": len(state.seen),
            },
        )


class IncrementalFagin:
    """Resumable A0: repeated next-k batches over one session.

    The paper: "the algorithm has the nice feature that after finding
    the top k answers, in order to find the next k best answers we can
    'continue where we left off.'"

    Each :meth:`next_batch` call extends the sorted phase until the
    match set is large enough to certify the next batch, reuses every
    grade discovered so far (no repeated accesses for known grades),
    and excludes the already-returned answers.

    >>> # doctest-style sketch; see examples/quickstart.py for a runnable one
    >>> # inc = IncrementalFagin(session, MINIMUM)
    >>> # first10 = inc.next_batch(10); next10 = inc.next_batch(10)
    """

    def __init__(
        self, session: MiddlewareSession, aggregation: AggregationFunction
    ) -> None:
        if not aggregation.monotone:
            raise ValueError(
                "IncrementalFagin requires a monotone aggregation "
                "(Theorem 4.2)"
            )
        self._session = session
        self._aggregation = aggregation
        self._state = SortedPhaseState()
        self._returned: list[ObjectId] = []

    @property
    def returned(self) -> tuple[ObjectId, ...]:
        """Objects already output, in output order."""
        return tuple(self._returned)

    def next_batch(self, k: int) -> TopKResult:
        """The next ``k`` best answers after those already returned.

        Correctness: once |L| >= r + k (r answers already returned),
        Proposition 4.1 puts the true top r + k objects inside the seen
        set; the previously returned objects are exactly a valid top-r,
        so ranking the remaining seen objects yields a valid next-k.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        total_needed = len(self._returned) + k
        if total_needed > self._session.num_objects:
            raise InsufficientObjectsError(
                total_needed, self._session.num_objects
            )
        before = self._session.tracker.snapshot()
        run_sorted_phase(self._session, total_needed, state=self._state)
        complete_random_phase(self._session, self._state)
        m = self._session.num_lists
        excluded = set(self._returned)
        scored = {
            obj: self._aggregation(*(by_list[j] for j in range(m)))
            for obj, by_list in self._state.seen.items()
            if obj not in excluded
        }
        items = top_k_of(scored, k)
        self._returned.extend(item.obj for item in items)
        after = self._session.tracker.snapshot()
        from repro.access.cost import AccessStats

        delta = AccessStats(
            tuple(a - b for a, b in zip(after.sorted_by_list, before.sorted_by_list)),
            tuple(a - b for a, b in zip(after.random_by_list, before.random_by_list)),
        )
        return TopKResult(
            items=items,
            stats=delta,
            algorithm="A0-incremental",
            details={"T": self._state.depth, "batch_start": len(excluded)},
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy


def _select_fagin(aggregation, num_lists, random_access, cost_model):
    if random_access and aggregation.monotone:
        return (
            "monotone query: A0 is correct (Theorem 4.2) and optimal when "
            "also strict (Theorem 6.5)"
        )
    return None


register_strategy(
    "fagin",
    FaginA0,
    StrategyCapabilities(monotone_only=True, needs_random_access=True),
    priority=50,
    selector=_select_fagin,
    aliases=("A0", "fa"),
    summary="Theorem 4.2: Fagin's Algorithm for any monotone query",
)
