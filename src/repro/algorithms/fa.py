"""Algorithm A0 — Fagin's Algorithm (Section 4).

    "The algorithm consists of three phases: sorted access, random
    access, and computation.

    Sorted access phase: For each i, give subsystem i the query Ai
    under sorted access. … Wait until there are at least k 'matches';
    that is, wait until there is a set L of at least k objects such
    that each subsystem has output all of the members of L.

    Random access phase: For each object x that has been seen, do
    random access to each subsystem j to find mu_Aj(x).

    Computation phase: Compute the grade mu_Q(x) = t(mu_A1(x), ...,
    mu_Am(x)) for each object x that has been seen. Let Y be a set
    containing the k objects that have been seen with highest grades
    (ties are broken arbitrarily). The output is then the graded set
    {(x, mu_Q(x)) | x in Y}."

Correct for every *monotone* query (Theorem 4.2, via the
upward-closure Proposition 4.1); middleware cost
O(N^((m-1)/m) * k^(1/m)) with arbitrarily high probability when the
atomic queries are independent (Theorem 5.3), which is optimal for
monotone-and-strict queries (Theorem 6.5).

This module also provides :class:`IncrementalFagin`, implementing the
paper's observation that "after finding the top k answers, in order to
find the next k best answers we can 'continue where we left off.'"
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.access.session import MiddlewareSession
from repro.access.types import ObjectId
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.core.certify import EXACT, QualityContract
from repro.exceptions import ExhaustedSourceError, InsufficientObjectsError

__all__ = ["SortedPhaseState", "run_sorted_phase", "FaginA0", "IncrementalFagin"]


@dataclass(slots=True)
class SortedPhaseState:
    """Everything the sorted-access phase of A0 discovers.

    Shared by A0 itself, A0-prime (:mod:`repro.algorithms.fa_min`) and
    the variants (:mod:`repro.algorithms.fa_variants`), which differ
    only in how they use this state afterwards.

    Attributes
    ----------
    seen:
        For each object seen under sorted access, the grades discovered
        so far, keyed by list index. A later random phase may fill in
        the missing grades in place (:func:`complete_random_phase`), so
        membership of list ``i`` in ``seen[obj]`` means the grade is
        *known*, not that list i's prefix delivered the object.
    order_by_list:
        X^i_T in delivery order — ``order_by_list[i][r]`` is the object
        at rank ``r + 1`` of list i.
    matched:
        L — the objects output by *every* list under sorted access (at
        least k of them once the phase ends).
    sorted_lists:
        How many distinct lists have delivered each object under
        *sorted* access. This is the match criterion — it must stay
        separate from ``seen`` because a matched object needs
        ``mu_i(x) >= b_i`` in every list (it was inside every prefix),
        which grades merely known from random access do not establish.
        Without it, a resumed phase would count an object random-filled
        by a previous batch as matched on its first sorted delivery and
        stop too early.
    depth:
        T — the uniform number of sorted accesses made to each list.
    """

    seen: dict[ObjectId, dict[int, float]] = field(default_factory=dict)
    order_by_list: list[list[ObjectId]] = field(default_factory=list)
    matched: set[ObjectId] = field(default_factory=set)
    sorted_lists: dict[ObjectId, int] = field(default_factory=dict)
    depth: int = 0


def run_sorted_phase(
    session: MiddlewareSession,
    k: int,
    state: SortedPhaseState | None = None,
    stop_mid_round: bool = False,
) -> SortedPhaseState:
    """Run (or resume) A0's sorted access phase until |L| >= k.

    Lists are advanced in lockstep, one object per list per round, so
    all lists reach the same depth T — matching the algorithm as
    stated. With ``stop_mid_round`` the phase returns as soon as the
    k-th match appears, even mid-round (one of Section 4's "minor
    improvements"; saves at most m-1 accesses per round).

    Resuming with an existing ``state`` continues where the previous
    phase left off (sources keep their cursors), which is what
    :class:`IncrementalFagin` uses for next-k queries.
    """
    if state is None:
        state = SortedPhaseState()
    m = session.num_lists
    if not state.order_by_list:
        state.order_by_list = [[] for _ in range(m)]
    sources = session.sources
    seen = state.seen
    matched = state.matched
    sorted_lists = state.sorted_lists

    while len(matched) < k:
        # Each sorted access completes at most one object, so a round of
        # m accesses adds at most m matches: with |L| matches so far, at
        # least ceil((k - |L|)/m) further *full* rounds must run before
        # the phase can stop. Those provably-consumed rounds are fetched
        # in one batch per list — identical access counts, a fraction of
        # the per-access overhead. With ``stop_mid_round`` the stop can
        # land inside the last such round, so one round is held back and
        # replayed access by access.
        rounds = -(-(k - len(matched)) // m)
        if stop_mid_round:
            rounds -= 1
        if rounds >= 1:
            progressed = False
            for i in range(m):
                batch = sources[i].sorted_access_batch(rounds)
                if not batch:
                    continue
                progressed = True
                order = state.order_by_list[i]
                for item in batch:
                    obj = item.obj
                    order.append(obj)
                    by_list = seen.get(obj)
                    if by_list is None:
                        by_list = seen[obj] = {}
                    by_list[i] = item.grade
                    delivered = sorted_lists.get(obj, 0) + 1
                    sorted_lists[obj] = delivered
                    if delivered == m:
                        matched.add(obj)
        else:
            # One unit-step round with the mid-round stop check.
            progressed = False
            for i, source in enumerate(sources):
                if source.exhausted:
                    continue
                try:
                    item = source.next_sorted()
                except ExhaustedSourceError:  # pragma: no cover - guarded above
                    continue
                progressed = True
                state.order_by_list[i].append(item.obj)
                by_list = seen.setdefault(item.obj, {})
                by_list[i] = item.grade
                delivered = sorted_lists.get(item.obj, 0) + 1
                sorted_lists[item.obj] = delivered
                if delivered == m:
                    matched.add(item.obj)
                    if stop_mid_round and len(matched) >= k:
                        break
        state.depth = max(len(lst) for lst in state.order_by_list)
        if not progressed:
            # All lists exhausted: every object has been seen in every
            # list, so |matched| = N. If that is still below k the
            # caller asked for more answers than objects exist.
            if len(matched) < k:
                raise InsufficientObjectsError(k, len(matched))
            break
    return state


def complete_random_phase(
    session: MiddlewareSession, state: SortedPhaseState
) -> None:
    """A0's random access phase: fill in every missing grade.

    "For each object x that has been seen, do random access to each
    subsystem j to find mu_Aj(x)." Grades already known from sorted
    access are not re-fetched ("if x in X^j_T, then mu_Aj(x) has
    already been determined, so random access is not needed").
    """
    fill_missing_grades(session, state.seen)


def fill_missing_grades(
    session: MiddlewareSession,
    by_object: dict[ObjectId, dict[int, float]],
    objs: "list[ObjectId] | None" = None,
    skip_list: int | None = None,
) -> None:
    """Bulk random access for every missing (object, list) pair.

    ``by_object`` maps each object to its known grades keyed by list
    index; missing pairs are grouped per list and fetched with one
    ``random_access_many`` call each — the same pairs a unit loop
    fetches, charged identically. ``objs`` restricts the scan (A0'
    completes only its candidates); ``skip_list`` is a list known to
    need no lookups (A0''s i0, which delivered every candidate).
    """
    m = session.num_lists
    missing_by_list: list[list[ObjectId]] = [[] for _ in range(m)]
    entries = (
        by_object.items()
        if objs is None
        else ((obj, by_object[obj]) for obj in objs)
    )
    for obj, by_list in entries:
        if len(by_list) == m:
            continue
        for j in range(m):
            if j != skip_list and j not in by_list:
                missing_by_list[j].append(obj)
    for j, missing in enumerate(missing_by_list):
        if not missing:
            continue
        grades = session.sources[j].random_access_many(missing)
        for obj, grade in zip(missing, grades):
            by_object[obj][j] = grade


class FaginA0(TopKAlgorithm):
    """Algorithm A0, exactly as given in Section 4.

    Correctness requires the aggregation to be monotone
    (Theorem 4.2) — this is asserted against the aggregation's
    declared flag unless ``trust_caller`` is set (the cost experiments
    never need to disable it; the flag exists so users can run A0 on
    aggregations they have classified themselves).

    Result ``details``: ``T`` (sorted depth), ``matches`` (|L|),
    ``seen`` (number of distinct objects accessed).

    A0 routes its termination through the contract's
    :class:`~repro.core.certify.StoppingRule` like TA and NRA do, but
    the rule cannot soundly relax it: A0's stop observes *match
    counts*, never grades, and any certificate about the k-th grade
    needs k certified grades — which A0 only has once it has matched k
    objects, i.e. once it has already stopped. Under every contract A0
    therefore runs to exact completion and honestly delivers the
    ``exact`` guarantee (stronger than asked). Callers who want real
    ε-savings get steered to TA by the engine's strategy selection.
    """

    name = "A0"
    supports_contracts = True

    def __init__(self, trust_caller: bool = False) -> None:
        self._trust_caller = trust_caller

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        return self._run_certified(session, aggregation, k, EXACT)

    def _run_certified(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
        contract: QualityContract,
    ) -> TopKResult:
        if not aggregation.monotone and not self._trust_caller:
            raise ValueError(
                f"A0 is only guaranteed correct for monotone queries "
                f"(Theorem 4.2); {aggregation.name!r} is declared "
                "non-monotone. Pass trust_caller=True to override."
            )
        # A fused, batch-consuming form of the three phases. Same
        # accesses in the same per-list quantities as the shared
        # run_sorted_phase/complete_random_phase pair (which A0', the
        # variants and IncrementalFagin still use — they need the full
        # SortedPhaseState), but with flat per-list grade maps and an
        # incrementally tracked match count instead of per-object dicts
        # and set rebuilds.
        m = session.num_lists
        sources = session.sources
        # The pluggable termination test. For A0 it is the exact
        # match-count stop under *every* ε (see the class docstring) —
        # the routing keeps the termination contract uniform across
        # algorithms without pretending a relaxation exists.
        rule = contract.stopping_rule()
        grades_by_list: list[dict[ObjectId, float]] = [{} for _ in range(m)]
        counts: dict[ObjectId, int] = {}
        matched = 0
        depth = 0

        # Sorted access phase, in provably-consumed chunks (see
        # run_sorted_phase for the bound).
        while not rule.sorted_phase_done(matched, k):
            rounds = -(-(k - matched) // m)
            progressed = 0
            for i in range(m):
                batch = sources[i].sorted_access_batch(rounds)
                if not batch:
                    continue
                if len(batch) > progressed:
                    progressed = len(batch)
                grades_i = grades_by_list[i]
                for item in batch:
                    obj = item.obj
                    grades_i[obj] = item.grade
                    seen_in = counts.get(obj, 0) + 1
                    counts[obj] = seen_in
                    if seen_in == m:
                        matched += 1
            depth += progressed
            if not progressed:
                if matched < k:
                    raise InsufficientObjectsError(k, matched)
                break

        # Random access phase: per-list bulk lookups of every seen
        # object the list's prefix did not deliver.
        for j in range(m):
            grades_j = grades_by_list[j]
            if len(grades_j) == len(counts):
                continue
            missing = [obj for obj in counts if obj not in grades_j]
            for obj, grade in zip(missing, sources[j].random_access_many(missing)):
                grades_j[obj] = grade

        # Computation phase: every grade came through the access layer,
        # so score all seen objects in bulk — the vectorized kernel
        # when the aggregation has one (one numpy reduction instead of
        # one Python call per object), the trusted scalar fold
        # otherwise. Either way no per-argument re-validation.
        objs = list(counts)
        rows = [[grades[obj] for obj in objs] for grades in grades_by_list]
        scores = aggregation.evaluate_columns(rows)
        return TopKResult(
            items=top_k_of(list(zip(objs, scores)), k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={
                "T": depth,
                "matches": matched,
                "seen": len(counts),
            },
            # Always exact: the match-count stop admits no sound
            # grade-relaxation, so A0 over-delivers on any contract.
            guarantee=None,
        )


class IncrementalFagin:
    """Resumable A0: repeated next-k batches over one session.

    The paper: "the algorithm has the nice feature that after finding
    the top k answers, in order to find the next k best answers we can
    'continue where we left off.'"

    Each :meth:`next_batch` call extends the sorted phase until the
    match set is large enough to certify the next batch, reuses every
    grade discovered so far (no repeated accesses for known grades),
    and excludes the already-returned answers.

    >>> # doctest-style sketch; see examples/quickstart.py for a runnable one
    >>> # inc = IncrementalFagin(session, MINIMUM)
    >>> # first10 = inc.next_batch(10); next10 = inc.next_batch(10)
    """

    def __init__(
        self, session: MiddlewareSession, aggregation: AggregationFunction
    ) -> None:
        if not aggregation.monotone:
            raise ValueError(
                "IncrementalFagin requires a monotone aggregation "
                "(Theorem 4.2)"
            )
        self._session = session
        self._aggregation = aggregation
        self._state = SortedPhaseState()
        self._returned: list[ObjectId] = []
        #: Memoised overall grades: an object's grades are complete
        #: after its first random phase, so its aggregate never changes
        #: and later batches must not re-evaluate the aggregation.
        self._scores: dict[ObjectId, float] = {}

    @property
    def returned(self) -> tuple[ObjectId, ...]:
        """Objects already output, in output order."""
        return tuple(self._returned)

    def frontier(self) -> list[float]:
        """Per-list bottom grades at the current sorted depth.

        ``frontier()[i]`` is the grade of the deepest object list i has
        delivered under sorted access (1.0 before any access — grades
        live in [0, 1], so the top of the range is the trivial bound).
        This is exactly NRA's ``b_i`` bookkeeping, mined from the A0
        sorted-phase state the cursor already keeps.
        """
        state = self._state
        m = self._session.num_lists
        if not state.order_by_list:
            return [1.0] * m
        seen = state.seen
        return [
            seen[order[-1]][i] if order else 1.0
            for i, order in enumerate(state.order_by_list)
        ]

    def unseen_upper(self) -> float:
        """A certified upper bound on every *unseen* object's grade:
        ``t(b_1, ..., b_m)`` by monotonicity (NRA's unseen bound)."""
        return self._aggregation.evaluate_trusted(self.frontier())

    def remaining_upper(self) -> float:
        """A certified upper bound on every not-yet-returned grade.

        Three facts compose. Every *seen* object's aggregate is exact
        after its random phase, so the best unreturned seen grade is
        known outright; every *unseen* object is bounded by
        ``t(b_1..b_m)`` (monotonicity); and the returned prefix is an
        exact top-r (Proposition 4.1), so nothing unreturned can
        exceed the last returned grade. The bound is the min of the
        third with the max of the first two — it tightens monotonically
        as paging deepens, which is what makes the cursor *anytime*.
        """
        excluded = set(self._returned)
        best_seen = max(
            (g for obj, g in self._scores.items() if obj not in excluded),
            default=0.0,
        )
        upper = max(best_seen, self.unseen_upper())
        if self._returned:
            upper = min(upper, self._scores[self._returned[-1]])
        return upper

    def next_batch(self, k: int) -> TopKResult:
        """The next ``k`` best answers after those already returned.

        Correctness: once |L| >= r + k (r answers already returned),
        Proposition 4.1 puts the true top r + k objects inside the seen
        set; the previously returned objects are exactly a valid top-r,
        so ranking the remaining seen objects yields a valid next-k.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        total_needed = len(self._returned) + k
        if total_needed > self._session.num_objects:
            raise InsufficientObjectsError(
                total_needed, self._session.num_objects
            )
        before = self._session.tracker.snapshot()
        run_sorted_phase(self._session, total_needed, state=self._state)
        complete_random_phase(self._session, self._state)
        m = self._session.num_lists
        scores = self._scores
        seen = self._state.seen
        fresh = [obj for obj in seen if obj not in scores]
        if fresh:
            # Bulk-score only the objects this batch completed; earlier
            # batches' aggregates are memoised and must not be re-derived.
            rows = [[seen[obj][j] for obj in fresh] for j in range(m)]
            scores.update(zip(fresh, self._aggregation.evaluate_columns(rows)))
        excluded = set(self._returned)
        items = top_k_of(
            [(obj, g) for obj, g in scores.items() if obj not in excluded], k
        )
        self._returned.extend(item.obj for item in items)
        after = self._session.tracker.snapshot()
        from repro.access.cost import AccessStats

        delta = AccessStats(
            tuple(a - b for a, b in zip(after.sorted_by_list, before.sorted_by_list)),
            tuple(a - b for a, b in zip(after.random_by_list, before.random_by_list)),
        )
        return TopKResult(
            items=items,
            stats=delta,
            algorithm="A0-incremental",
            details={"T": self._state.depth, "batch_start": len(excluded)},
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import (
    StrategyCapabilities,
    envelope_depth,
    register_strategy,
)


def _select_fagin(aggregation, num_lists, random_access, cost_model):
    if random_access and aggregation.monotone:
        return (
            "monotone query: A0 is correct (Theorem 4.2) and optimal when "
            "also strict (Theorem 6.5)"
        )
    return None


def _estimate_fagin(n: int, m: int, k: int) -> tuple[float, float]:
    # Sorted phase: m lists read to Theorem 5.3's expected depth; the
    # random phase then completes the grades of the distinct objects
    # seen (~87% of the sorted reads on independent lists, benchmark
    # E1) in each of the other m - 1 lists.
    depth = envelope_depth(n, m, k)
    est_sorted = m * depth
    est_random = (m - 1) * 0.87 * est_sorted
    return (min(est_sorted, m * n), min(est_random, (m - 1) * n))


register_strategy(
    "fagin",
    FaginA0,
    StrategyCapabilities(
        monotone_only=True, needs_random_access=True, batch_aware=True
    ),
    priority=50,
    selector=_select_fagin,
    aliases=("A0", "fa"),
    summary="Theorem 4.2: Fagin's Algorithm for any monotone query",
    cost_estimate=_estimate_fagin,
)
