"""The provably hard query Q AND NOT Q (Section 7).

    "In this section, we consider the extreme case of negative
    correlation between queries, by considering queries Q AND NOT Q,
    for Q an atomic query. In standard propositional logic, such a
    query is unsatisfiable. But the situation is different if Q is
    'fully fuzzy' …

    Then mu_{Q AND NOT Q}(x) = 1/2 when mu_Q(x) = 1/2. Furthermore, it
    is easy to see that 1/2 is the maximal possible value …

    [Theorem 7.1] The middleware cost for finding the top answer to
    the standard fuzzy conjunction Q AND NOT Q, where Q is fully fuzzy,
    is Theta(N)."

This module provides the constructions and algorithms around that
result:

* :func:`self_negated_lists` — the two-list scoring database (pi for Q,
  the reversed permutation with grades 1 - g for NOT Q), with all
  grades distinct as the section assumes;
* :func:`hard_query_depth` — the closed-form match depth, showing why
  A0 degrades to linear cost on this input;
* :class:`SelfNegatedScan` — the essentially-optimal linear algorithm:
  one full sorted scan of the Q list, deriving mu_{NOT Q} = 1 - mu_Q
  (N accesses instead of the generic naive's 2N; still Theta(N), as
  Theorem 7.1 proves unavoidable).
"""

from __future__ import annotations

import random

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.core.tnorms import MinimumTNorm
from repro.exceptions import ExhaustedSourceError

__all__ = ["self_negated_lists", "hard_query_depth", "SelfNegatedScan"]


def self_negated_lists(
    num_objects: int, rng: random.Random
) -> tuple[dict[int, float], dict[int, float]]:
    """Grade assignments for Q and NOT Q over objects 1..N.

    Q's grades are N distinct values in (0, 1) (distinctness is the
    Section 7 convention — "we restrict our attention … to scoring
    databases where mu_Q(x) != mu_Q(y) whenever x and y are distinct");
    NOT Q's grade of x is 1 - mu_Q(x), so the sorted order of the
    second list is exactly the reverse of the first — the paper's
    (pi_Q, pi_notQ) skeleton.
    """
    if num_objects < 1:
        raise ValueError(f"need at least one object, got {num_objects}")
    grades: set[float] = set()
    while len(grades) < num_objects:
        g = rng.random()
        if 0.0 < g < 1.0 and (1.0 - g) != g:
            grades.add(g)
    ordered = sorted(grades, reverse=True)
    q = {obj: g for obj, g in zip(range(1, num_objects + 1), ordered)}
    not_q = {obj: 1.0 - g for obj, g in q.items()}
    return q, not_q


def hard_query_depth(num_objects: int, k: int = 1) -> int:
    """The uniform depth T at which A0 finds k matches on the hard query.

    The prefixes are {pi(1..T)} and {pi(N-T+1..N)}; they intersect in
    max(0, 2T - N) objects, so k matches require T = ceil((N + k) / 2)
    — A0's sorted cost alone is 2T ~ N + k, i.e. linear, consistent
    with Theorem 7.1's lower bound.

    >>> hard_query_depth(100, 1)
    51
    """
    if k > num_objects:
        raise ValueError(f"k={k} exceeds N={num_objects}")
    return (num_objects + k + 1) // 2


class SelfNegatedScan(TopKAlgorithm):
    """Linear evaluation of Q AND NOT Q exploiting the known negation.

    Scans list 1 (the Q list) fully under sorted access and computes
    min(g, 1 - g) for every object — the second list is never touched
    because mu_{NOT Q} is determined by mu_Q. Cost: exactly N sorted
    accesses. Theorem 7.1 shows Omega(N) is required, so this is
    optimal up to the constant (the generic naive algorithm pays 2N).

    Only sound when list 2 really is the pointwise negation of list 1;
    the run verifies the contract on the returned answers via spot
    random accesses when ``verify`` is set.
    """

    name = "self-negated-scan"

    def __init__(self, verify: bool = False) -> None:
        self._verify = verify

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not isinstance(aggregation, MinimumTNorm):
            raise ValueError(
                "Section 7 evaluates the standard fuzzy semantics "
                f"(min); got {aggregation.name!r}"
            )
        if session.num_lists != 2:
            raise ValueError(
                f"the hard query has exactly two lists (Q, NOT Q); "
                f"got {session.num_lists}"
            )
        q_source = session.sources[0]
        scored: dict[object, float] = {}
        while True:
            try:
                item = q_source.next_sorted()
            except ExhaustedSourceError:
                break
            scored[item.obj] = min(item.grade, 1.0 - item.grade)
        items = top_k_of(scored, k)
        if self._verify:
            # Spot-check the negation contract on the returned answers:
            # with mu_notQ(x) = 1 - mu_Q(x), the returned grade
            # min(mu_Q, 1 - mu_Q) must equal min(mu_notQ, 1 - mu_notQ).
            for it in items:
                actual_not_q = session.sources[1].random_access(it.obj)
                if abs(min(actual_not_q, 1.0 - actual_not_q) - it.grade) > 1e-9:
                    raise ValueError(
                        f"list 2 is not the negation of list 1 at object "
                        f"{it.obj!r}: grade {it.grade} inconsistent with "
                        f"mu_notQ = {actual_not_q}"
                    )
        return TopKResult(
            items=items,
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"scanned": len(scored)},
        )
