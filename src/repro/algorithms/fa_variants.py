"""The "minor improvements" to A0 sketched in Section 4.

    "There are various minor improvements we can make to algorithm A0
    to improve its performance slightly. … For example, instead of
    using a uniform value of T, we might find Ti <= T for each i such
    that the intersection of the X^i_{Ti} contains k members. We could
    then replace all occurrences of [the union of prefixes] in
    algorithm A0 by [the union of the shorter prefixes], which could
    lead to fewer random accesses. Ait-Bouziad and Kassel [AK98] give
    another such improvement."

Two variants are implemented:

* :class:`EarlyStopFagin` — stop the sorted phase the instant the k-th
  match appears, even mid-round (saves up to m-1 sorted accesses).
* :class:`ShrunkenFagin` — after the sorted phase, shrink each list's
  effective prefix to per-list depths T_i (chosen so the prefix
  intersection still has k members) before the random access phase, so
  fewer seen objects need their grades completed.

Both inherit A0's correctness argument: the shrunken prefixes X^i_{Ti}
are still upwards closed with respect to A_i and their intersection
still has >= k members, which is all Proposition 4.1 / Theorem 4.2 use.
Experiment E11 quantifies the (constant-factor) savings.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.algorithms.fa import run_sorted_phase
from repro.core.aggregation import AggregationFunction

__all__ = ["EarlyStopFagin", "ShrunkenFagin"]


class EarlyStopFagin(TopKAlgorithm):
    """A0 with a mid-round stop in the sorted phase."""

    name = "A0-early-stop"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not aggregation.monotone:
            raise ValueError(
                "A0 variants require a monotone aggregation (Theorem 4.2); "
                f"{aggregation.name!r} is declared non-monotone"
            )
        state = run_sorted_phase(session, k, stop_mid_round=True)
        m = session.num_lists
        for obj, by_list in state.seen.items():
            for j in range(m):
                if j not in by_list:
                    by_list[j] = session.sources[j].random_access(obj)
        scored = {
            obj: aggregation(*(by_list[j] for j in range(m)))
            for obj, by_list in state.seen.items()
        }
        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"T": state.depth, "matches": len(state.matched)},
        )


class ShrunkenFagin(TopKAlgorithm):
    """A0 with per-list prefix depths T_i shrunk after the sorted phase.

    The shrink is computed as follows: rank the matched objects by the
    depth at which they completed their match (the max of their ranks
    across lists) and keep the k earliest-matching ones; then T_i is
    the deepest rank any kept object has in list i. The k kept objects
    are in every shrunken prefix by construction, so the intersection
    of the X^i_{Ti} has >= k members and the A0 correctness argument
    goes through unchanged.

    The sorted cost is already paid when the shrink happens, so the
    saving is entirely in random accesses (exactly the paper's claim).

    Result ``details``: ``T`` (uniform depth actually read), ``Ti``
    (the per-list shrunken depths), ``seen_after_shrink``.
    """

    name = "A0-shrunken"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not aggregation.monotone:
            raise ValueError(
                "A0 variants require a monotone aggregation (Theorem 4.2); "
                f"{aggregation.name!r} is declared non-monotone"
            )
        state = run_sorted_phase(session, k)
        m = session.num_lists

        rank_in_list: list[dict[object, int]] = [
            {obj: r + 1 for r, obj in enumerate(order)}
            for order in state.order_by_list
        ]

        def match_depth(obj) -> int:
            return max(rank_in_list[i][obj] for i in range(m))

        keep = sorted(state.matched, key=lambda obj: (match_depth(obj), repr(obj)))
        keep = keep[:k]
        depths = [
            max(rank_in_list[i][obj] for obj in keep) for i in range(m)
        ]

        surviving: set[object] = set()
        for i in range(m):
            surviving.update(state.order_by_list[i][: depths[i]])

        for obj in surviving:
            by_list = state.seen[obj]
            for j in range(m):
                if j not in by_list:
                    by_list[j] = session.sources[j].random_access(obj)
        scored = {
            obj: aggregation(*(state.seen[obj][j] for j in range(m)))
            for obj in surviving
        }
        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={
                "T": state.depth,
                "Ti": tuple(depths),
                "seen_after_shrink": len(surviving),
            },
        )


# ----------------------------------------------------------------------
# Registry self-registration (manual-only: Section 4's "minor
# improvements" on A0, benchmarked by E11.)
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy

register_strategy(
    "early-stop",
    EarlyStopFagin,
    StrategyCapabilities(monotone_only=True, needs_random_access=True),
    aliases=("A0-early-stop",),
    summary="A0 with a mid-round stop in the sorted phase",
)

register_strategy(
    "shrunken",
    ShrunkenFagin,
    StrategyCapabilities(monotone_only=True, needs_random_access=True),
    aliases=("A0-shrunken",),
    summary="A0 with per-list prefix depths shrunk before random access",
)
