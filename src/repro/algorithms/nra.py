"""NRA — top-k with **no random access** (extension).

Section 4 assumes the subsystems support random access, with a telling
footnote: "We are assuming that QBIC can do such 'random accesses'
(which, in fact, it can)." Subsystems that *cannot* — streaming
engines, remote ranked feeds — motivated the No-Random-Access
algorithm of the paper's successor line (Fagin-Lotem-Naor, PODS 2001).
We implement the **exact-grades** variant, which fits this library's
answer contract (Section 4 requires the output grades to be the true
grades):

1. Do sorted access in lockstep rounds over the m lists, maintaining
   for every seen object its known grades and, per list i, the bottom
   grade ``b_i`` seen so far.
2. For any object x, the true grade is bounded above by
   ``B(x) = t(g_1', ..., g_m')`` where ``g_i'`` is x's known grade in
   list i, or ``b_i`` if unknown (monotonicity); unseen objects are
   bounded by ``t(b_1, ..., b_m)``.
3. An object seen in *every* list has its exact grade. Stop as soon as
   k exactly-known objects have grades >= every other object's upper
   bound (including the unseen bound); output those k.

Compared with A0: zero random accesses, but the sorted phase runs past
A0's stopping depth (it must wait until upper bounds fall below the
k-th exact grade, not merely for k matches). The E16 benchmark
quantifies the trade under both cheap and expensive random access.
"""

from __future__ import annotations

import heapq

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.core.certify import EXACT, QualityContract
from repro.core.kernels import as_grade_matrix, evaluate_matrix, kernel_for

__all__ = ["NoRandomAccessAlgorithm"]


class NoRandomAccessAlgorithm(TopKAlgorithm):
    """Top-k via sorted access only, for monotone aggregations.

    Result ``details``: ``rounds`` (sorted depth), ``seen`` (distinct
    objects encountered), ``exact`` (objects whose grade was fully
    resolved when the run stopped).

    NRA honours quality contracts: under an ε-approximate contract
    both upper-bound comparisons (the unseen bound and the candidate
    sweep) run against the relaxed bar ``(1 + ε) * kth_best`` instead
    of ``kth_best``. The forever-certified pruning invariant survives
    the relaxation — the bar is monotone non-decreasing (the k-th best
    exact grade only rises) while upper bounds only fall, so an object
    certified under the bar stays certified. At ε=0 the bar *is*
    ``kth_best`` (no float round-trip), keeping exact runs
    bit-identical.
    """

    name = "NRA"
    supports_contracts = True

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        return self._run_certified(session, aggregation, k, EXACT)

    def _run_certified(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
        contract: QualityContract,
    ) -> TopKResult:
        if not aggregation.monotone:
            raise ValueError(
                "NRA requires a monotone aggregation; "
                f"{aggregation.name!r} is declared non-monotone"
            )
        m = session.num_lists
        sources = session.sources
        rule = contract.stopping_rule()
        seen: dict[object, dict[int, float]] = {}
        bottoms = [1.0] * m
        rounds = 0
        exact: dict[object, float] = {}
        # Min-heap of the k best exact grades: exact grades never
        # change, so the k-th best is maintained incrementally instead
        # of re-selected from all exact grades per certification round.
        best: list[float] = []
        # Partially-seen objects whose upper bound might still exceed
        # the k-th best exact grade, in first-seen order. Upper bounds
        # only ever *fall* (bottoms decrease; a discovered grade is at
        # most the bottom it replaced) and the k-th best only ever
        # rises, so an object that once certified (upper <= k-th best)
        # stays certified — the scan may skip it in every later round.
        # ``cand_start`` is the shared scan head: everything before it
        # is certified forever (or exact), so a certification round
        # that fails at its head costs O(1), not O(|seen|).
        candidates: list[object] = []
        cand_start = 0
        vectorized = kernel_for(aggregation) is not None

        while True:
            # Certification needs k exact grades first, and a round of m
            # sorted accesses completes at most m objects — so while
            # |exact| < k, ceil((k - |exact|)/m) lockstep rounds can be
            # fetched as one batch per list without moving the stopping
            # point (identical access counts). Once k grades are exact,
            # the stop check runs after every single round.
            if len(exact) < k:
                chunk = -(-(k - len(exact)) // m)
            else:
                chunk = 1
            progressed = 0
            for i in range(m):
                batch = sources[i].sorted_access_batch(chunk)
                if not batch:
                    continue
                progressed = max(progressed, len(batch))
                bottoms[i] = batch[-1].grade
                for item in batch:
                    by_list = seen.get(item.obj)
                    if by_list is None:
                        by_list = seen[item.obj] = {}
                        candidates.append(item.obj)
                    by_list[i] = item.grade
                    if len(by_list) == m and item.obj not in exact:
                        grade = aggregation.evaluate_trusted(
                            [by_list[j] for j in range(m)]
                        )
                        exact[item.obj] = grade
                        if len(best) < k:
                            heapq.heappush(best, grade)
                        elif grade > best[0]:
                            heapq.heapreplace(best, grade)
            rounds += progressed or 1

            if not progressed:
                # Every list exhausted: all grades exact; finish.
                break
            if len(exact) < k:
                continue

            kth_best = best[0]
            # The certification bar: ``kth_best`` exactly, or the
            # contract's relaxed ``(1 + ε) * kth_best``.
            limit = rule.limit(kth_best)
            # Upper bound for unseen objects.
            if aggregation.evaluate_trusted(bottoms) > limit:
                continue
            # Upper bounds for the surviving partially-seen objects.
            # (Exactly-known objects are covered by kth_best itself;
            # previously-certified objects stay certified — see the
            # monotonicity note at ``candidates``.) Advance the scan
            # head past resolved objects first: amortised O(1), since
            # the head only moves forward between sweeps.
            while cand_start < len(candidates) and candidates[cand_start] in exact:
                cand_start += 1
            if cand_start >= len(candidates):
                break  # no partially-seen object is left uncertified
            if vectorized:
                certified, candidates, cand_start = self._certify_vectorized(
                    aggregation, seen, exact, bottoms,
                    candidates, cand_start, limit,
                )
            else:
                certified, cand_start = self._certify_scalar(
                    aggregation, seen, exact, bottoms,
                    candidates, cand_start, limit,
                )
            if certified:
                break

        return TopKResult(
            items=top_k_of(exact, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={
                "rounds": rounds,
                "seen": len(seen),
                "exact": len(exact),
            },
            guarantee=rule.guarantee(
                rule.limit(best[0]) if len(best) >= k else None
            ),
        )

    @staticmethod
    def _certify_vectorized(
        aggregation, seen, exact, bottoms, candidates, start, limit
    ):
        """One kernel evaluation certifies (or prunes) every candidate.

        Returns ``(certified, candidates, start)``. Rounds that cannot
        certify are the common case deep in a run, and the scalar loop
        dismissed them at its *first* violator; the bulk path must not
        pay a full matrix build to learn the same thing.
        ``candidates[start]`` is last round's first violator, so one
        scalar probe of it restores the early exit — only when the
        probe passes is the vectorized sweep worth building: the
        candidates' upper-bound matrix (known grades where available,
        the current per-list bottom otherwise), scored in one call.
        The sweep's survivors — exactly the objects still above the
        certification bar (the k-th best exact grade, ε-relaxed under
        an approximate contract) — become the new candidate list;
        everything else is certified forever.
        """
        m = len(bottoms)
        head = seen[candidates[start]]
        if (
            aggregation.evaluate_trusted(
                [head.get(j, bottoms[j]) for j in range(m)]
            )
            > limit
        ):
            return False, candidates, start
        pending = [
            obj for obj in candidates[start:] if obj not in exact
        ]
        rows = [
            [seen[obj].get(j, bottom) for obj in pending]
            for j, bottom in enumerate(bottoms)
        ]
        uppers = evaluate_matrix(aggregation, as_grade_matrix(rows))
        assert uppers is not None  # kernel_for gated the vectorized path
        violations = uppers > limit
        if not violations.any():
            return True, [], 0
        survivors = [
            obj
            for obj, violating in zip(pending, violations.tolist())
            if violating
        ]
        return False, survivors, 0

    @staticmethod
    def _certify_scalar(
        aggregation, seen, exact, bottoms, candidates, start, limit
    ):
        """Scalar fallback: early-exit scan behind the shared head.

        Returns ``(certified, start)``. Candidates checked before the
        first violation are certified — the head advances past them
        forever; the violator and the unchecked tail survive in place
        (no per-round list rebuilds).
        """
        evaluate = aggregation.evaluate_trusted
        m = len(bottoms)
        for idx in range(start, len(candidates)):
            obj = candidates[idx]
            if obj in exact:
                continue
            by_list = seen[obj]
            upper = evaluate([by_list.get(j, bottoms[j]) for j in range(m)])
            if upper > limit:
                return False, idx
        return True, len(candidates)


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import (
    EXPENSIVE_RANDOM_ACCESS_RATIO,
    StrategyCapabilities,
    envelope_depth,
    register_strategy,
)


def _select_nra(aggregation, num_lists, random_access, cost_model):
    if not aggregation.monotone:
        return None
    if not random_access:
        return (
            "a subsystem lacks random access: NRA evaluates monotone "
            "queries from sorted streams alone (successor of "
            "Section 4's footnote-5 assumption)"
        )
    if (
        cost_model is not None
        and cost_model.random_weight
        >= EXPENSIVE_RANDOM_ACCESS_RATIO * cost_model.sorted_weight
    ):
        return (
            f"random access costs c2/c1 = "
            f"{cost_model.random_weight / cost_model.sorted_weight:.0f}x "
            "a sorted access: the sorted-only NRA avoids that spend "
            "(heuristic calibrated by benchmark E16)"
        )
    return None


register_strategy(
    "nra",
    NoRandomAccessAlgorithm,
    StrategyCapabilities(
        monotone_only=True, needs_random_access=False, batch_aware=True
    ),
    priority=20,
    selector=_select_nra,
    aliases=("NRA",),
    summary="sorted-access-only top-k for monotone queries (FLN successor)",
    # Sorted-only: runs a small constant factor deeper than A0's
    # sorted phase (benchmark E16) but pays zero random accesses.
    cost_estimate=lambda n, m, k: (
        min(1.05 * m * envelope_depth(n, m, k), m * n),
        0.0,
    ),
)
