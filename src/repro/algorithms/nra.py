"""NRA — top-k with **no random access** (extension).

Section 4 assumes the subsystems support random access, with a telling
footnote: "We are assuming that QBIC can do such 'random accesses'
(which, in fact, it can)." Subsystems that *cannot* — streaming
engines, remote ranked feeds — motivated the No-Random-Access
algorithm of the paper's successor line (Fagin-Lotem-Naor, PODS 2001).
We implement the **exact-grades** variant, which fits this library's
answer contract (Section 4 requires the output grades to be the true
grades):

1. Do sorted access in lockstep rounds over the m lists, maintaining
   for every seen object its known grades and, per list i, the bottom
   grade ``b_i`` seen so far.
2. For any object x, the true grade is bounded above by
   ``B(x) = t(g_1', ..., g_m')`` where ``g_i'`` is x's known grade in
   list i, or ``b_i`` if unknown (monotonicity); unseen objects are
   bounded by ``t(b_1, ..., b_m)``.
3. An object seen in *every* list has its exact grade. Stop as soon as
   k exactly-known objects have grades >= every other object's upper
   bound (including the unseen bound); output those k.

Compared with A0: zero random accesses, but the sorted phase runs past
A0's stopping depth (it must wait until upper bounds fall below the
k-th exact grade, not merely for k matches). The E16 benchmark
quantifies the trade under both cheap and expensive random access.
"""

from __future__ import annotations

import heapq

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction

__all__ = ["NoRandomAccessAlgorithm"]


class NoRandomAccessAlgorithm(TopKAlgorithm):
    """Top-k via sorted access only, for monotone aggregations.

    Result ``details``: ``rounds`` (sorted depth), ``seen`` (distinct
    objects encountered), ``exact`` (objects whose grade was fully
    resolved when the run stopped).
    """

    name = "NRA"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not aggregation.monotone:
            raise ValueError(
                "NRA requires a monotone aggregation; "
                f"{aggregation.name!r} is declared non-monotone"
            )
        m = session.num_lists
        sources = session.sources
        seen: dict[object, dict[int, float]] = {}
        bottoms = [1.0] * m
        rounds = 0
        exact: dict[object, float] = {}
        # Min-heap of the k best exact grades: exact grades never
        # change, so the k-th best is maintained incrementally instead
        # of re-selected from all exact grades per certification round.
        best: list[float] = []

        while True:
            # Certification needs k exact grades first, and a round of m
            # sorted accesses completes at most m objects — so while
            # |exact| < k, ceil((k - |exact|)/m) lockstep rounds can be
            # fetched as one batch per list without moving the stopping
            # point (identical access counts). Once k grades are exact,
            # the stop check runs after every single round.
            if len(exact) < k:
                chunk = -(-(k - len(exact)) // m)
            else:
                chunk = 1
            progressed = 0
            for i in range(m):
                batch = sources[i].sorted_access_batch(chunk)
                if not batch:
                    continue
                progressed = max(progressed, len(batch))
                bottoms[i] = batch[-1].grade
                for item in batch:
                    by_list = seen.setdefault(item.obj, {})
                    by_list[i] = item.grade
                    if len(by_list) == m and item.obj not in exact:
                        grade = aggregation.evaluate_trusted(
                            [by_list[j] for j in range(m)]
                        )
                        exact[item.obj] = grade
                        if len(best) < k:
                            heapq.heappush(best, grade)
                        elif grade > best[0]:
                            heapq.heapreplace(best, grade)
            rounds += progressed or 1

            if not progressed:
                # Every list exhausted: all grades exact; finish.
                break
            if len(exact) < k:
                continue

            kth_best = best[0]
            # Upper bound for unseen objects.
            if aggregation.evaluate_trusted(bottoms) > kth_best:
                continue
            # Upper bounds for partially-seen objects. (Exactly-known
            # objects are covered by kth_best itself.)
            evaluate = aggregation.evaluate_trusted
            certified = True
            for obj, by_list in seen.items():
                if obj in exact:
                    continue
                upper = evaluate(
                    [by_list.get(j, bottoms[j]) for j in range(m)]
                )
                if upper > kth_best:
                    certified = False
                    break
            if certified:
                break

        return TopKResult(
            items=top_k_of(exact, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={
                "rounds": rounds,
                "seen": len(seen),
                "exact": len(exact),
            },
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import (
    EXPENSIVE_RANDOM_ACCESS_RATIO,
    StrategyCapabilities,
    register_strategy,
)


def _select_nra(aggregation, num_lists, random_access, cost_model):
    if not aggregation.monotone:
        return None
    if not random_access:
        return (
            "a subsystem lacks random access: NRA evaluates monotone "
            "queries from sorted streams alone (successor of "
            "Section 4's footnote-5 assumption)"
        )
    if (
        cost_model is not None
        and cost_model.random_weight
        >= EXPENSIVE_RANDOM_ACCESS_RATIO * cost_model.sorted_weight
    ):
        return (
            f"random access costs c2/c1 = "
            f"{cost_model.random_weight / cost_model.sorted_weight:.0f}x "
            "a sorted access: the sorted-only NRA avoids that spend "
            "(heuristic calibrated by benchmark E16)"
        )
    return None


register_strategy(
    "nra",
    NoRandomAccessAlgorithm,
    StrategyCapabilities(
        monotone_only=True, needs_random_access=False, batch_aware=True
    ),
    priority=20,
    selector=_select_nra,
    aliases=("NRA",),
    summary="sorted-access-only top-k for monotone queries (FLN successor)",
)
