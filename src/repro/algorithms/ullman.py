"""Ullman's algorithm (Section 9, "Exploiting Other Information").

    "Assume that we are evaluating the standard fuzzy conjunction
    A1 AND A2 (where t is min). We now give an algorithm that finds the
    top answer …

    1. Give subsystem 1 the query A1 under sorted access. …
    2. As each pair (x, mu_A1(x)) is output from subsystem 1, do random
       access to subsystem 2 to obtain mu_A2(x).
    3. Stop if and when an object x is found such that
       mu_A2(x) >= mu_A1(x); if such an object x is never found, then
       continue until all objects have been seen.
    4. For all of the objects x that have been seen, let x0 be the
       object with the highest overall grade … The output is then
       (x0, g0)."

Performance (Section 9): if the grades under A1 are bounded above by
0.9 and A2's grades are uniform, the expected number of objects seen
is at most 10 — *constant in N*; if both lists are uniform, Ariel
Landau showed the expected stopping time is Theta(sqrt(N)) — no better
than A0. Experiment E8 regenerates both regimes.

Two generalisations are provided beyond the paper's literal k = 1 /
min statement, both clearly flagged:

* top-k for any k (maintain the k best; stop when the k-th best
  overall grade reaches the stopping threshold);
* any monotone aggregation t with t(x, 1) = x — the unseen-object
  bound becomes t(a1_last, 1) = a1_last exactly as for min.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.exceptions import ExhaustedSourceError

__all__ = ["UllmanAlgorithm"]


class UllmanAlgorithm(TopKAlgorithm):
    """Sorted access on one list, random access on the others.

    Parameters
    ----------
    sorted_list:
        Which list to stream under sorted access (default 0). Section 9
        motivates choosing a list whose grades are expected to fall
        fast (e.g. bounded below 1).
    stop_rule:
        ``"threshold"`` (default) stops as soon as the k-th best
        overall grade is at least the last sorted grade — the tightest
        sound rule, since every unseen object x has
        t(mu_A1(x), ...) <= mu_A1(x) <= last sorted grade by
        monotonicity and conservation. ``"paper"`` reproduces the
        literal Section 9 rule for k = 1: stop only when the *current*
        object satisfies mu_A2(x) >= mu_A1(x). The literal rule is what
        the Section 9 expected-cost statements are about; the threshold
        rule never stops later.
    """

    name = "ullman"

    def __init__(self, sorted_list: int = 0, stop_rule: str = "threshold") -> None:
        if stop_rule not in ("threshold", "paper"):
            raise ValueError(
                f"stop_rule must be 'threshold' or 'paper', got {stop_rule!r}"
            )
        self._sorted_list = sorted_list
        self._stop_rule = stop_rule

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not aggregation.monotone:
            raise ValueError(
                "Ullman's algorithm requires a monotone aggregation; "
                f"{aggregation.name!r} is declared non-monotone"
            )
        if self._stop_rule == "paper" and k != 1:
            raise ValueError(
                "the literal Section 9 stop rule is defined for k = 1; "
                "use stop_rule='threshold' for general k"
            )
        m = session.num_lists
        lead = self._sorted_list
        if not 0 <= lead < m:
            raise ValueError(
                f"sorted_list={lead} out of range for {m} lists"
            )
        others = [j for j in range(m) if j != lead]
        lead_source = session.sources[lead]

        scored: dict[object, float] = {}
        seen = 0
        while True:
            try:
                item = lead_source.next_sorted()
            except ExhaustedSourceError:
                break
            seen += 1
            grades = [0.0] * m
            grades[lead] = item.grade
            for j in others:
                grades[j] = session.sources[j].random_access(item.obj)
            scored[item.obj] = aggregation(*grades)

            if self._stop_rule == "paper":
                # Stop when the current object's other-list grades all
                # dominate its sorted-list grade (for m = 2 this is the
                # literal "mu_A2(x) >= mu_A1(x)").
                if all(grades[j] >= item.grade for j in others):
                    break
            else:
                if len(scored) >= k:
                    kth_best = sorted(scored.values(), reverse=True)[k - 1]
                    # Unseen objects have lead-list grade <= item.grade,
                    # and t(g_lead, g_rest) <= t(g_lead, 1, ..., 1) =
                    # g_lead by monotonicity + conservation.
                    ceiling = aggregation(
                        *[item.grade if j == lead else 1.0 for j in range(m)]
                    )
                    if kth_best >= ceiling:
                        break

        return TopKResult(
            items=top_k_of(scored, min(k, len(scored))),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={"objects_seen": seen, "stop_rule": self._stop_rule},
        )


# ----------------------------------------------------------------------
# Registry self-registration (manual-only: Section 9's algorithm shines
# on skewed grade distributions; the paper does not put it in the
# general selection table.)
# ----------------------------------------------------------------------

from repro.engine.registry import StrategyCapabilities, register_strategy

register_strategy(
    "ullman",
    UllmanAlgorithm,
    StrategyCapabilities(
        monotone_only=True, needs_random_access=True, min_lists=2
    ),
    summary="Section 9: sorted access on one list, random on the rest",
)
