"""Algorithm A0' — the candidates refinement for t = min (Section 4).

    "Let i0 and x0 be as in Proposition 4.3. Let g0 = mu_Q(x0).
    Intuitively, i0 is a subsystem that has shown the smallest grade g0
    in the sorted access phase of algorithm A0, and x0 is an object
    with this smallest grade g0 in subsystem i0. By the min rule, x0
    has overall grade g0. Define the candidates to be the objects
    x in X^{i0}_T with mu_{Ai0}(x) >= g0. … algorithm A0' has better
    performance than A0, since we do random access only for the
    candidates, each of which is a member of X^{i0}_T, rather than for
    all of U_i X^i_T."

Correct for the standard fuzzy conjunction, i.e. t = min
(Theorem 4.4, via the strengthened upward-closure Proposition 4.3).
The improvement over A0 is a constant factor in random accesses —
quantified empirically by experiment E11.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.access.source import tie_break_key
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.algorithms.fa import fill_missing_grades, run_sorted_phase
from repro.core.aggregation import AggregationFunction
from repro.core.tnorms import MinimumTNorm

__all__ = ["FaginA0Min"]


class FaginA0Min(TopKAlgorithm):
    """Algorithm A0' of Section 4 — requires the min aggregation.

    Result ``details``: ``T``, ``matches``, ``candidates`` (size of the
    candidate set), ``i0`` and ``g0`` from Proposition 4.3.
    """

    name = "A0-prime"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        if not isinstance(aggregation, MinimumTNorm):
            raise ValueError(
                "A0' is only correct for the standard fuzzy conjunction "
                f"(t = min, Theorem 4.4); got {aggregation.name!r}. "
                "Use FaginA0 for other monotone aggregations."
            )
        # Sorted access phase: identical to A0's.
        state = run_sorted_phase(session, k)
        m = session.num_lists

        # Random access phase (A0' version). Every member of L has been
        # seen in all m lists, so its overall min-grade is known without
        # any random access; pick x0 minimising it. The min-grades are
        # memoised so the x0 scan evaluates each matched object once.
        overall = {
            obj: min(state.seen[obj].values()) for obj in state.matched
        }
        x0 = min(
            state.matched, key=lambda obj: (overall[obj], tie_break_key(obj))
        )
        g0 = overall[x0]
        by_list_x0 = state.seen[x0]
        i0 = next(j for j in range(m) if by_list_x0[j] == g0)

        candidates = [
            obj
            for obj in state.order_by_list[i0]
            if state.seen[obj][i0] >= g0
        ]
        fill_missing_grades(session, state.seen, objs=candidates, skip_list=i0)

        # Computation phase, restricted to the candidates.
        evaluate = aggregation.evaluate_trusted
        scored = {
            obj: evaluate([state.seen[obj][j] for j in range(m)])
            for obj in candidates
        }
        return TopKResult(
            items=top_k_of(scored, k),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
            details={
                "T": state.depth,
                "matches": len(state.matched),
                "candidates": len(candidates),
                "i0": i0,
                "g0": g0,
            },
        )


# ----------------------------------------------------------------------
# Registry self-registration
# ----------------------------------------------------------------------

from repro.engine.registry import (
    StrategyCapabilities,
    envelope_depth,
    register_strategy,
)


def _select_fa_min(aggregation, num_lists, random_access, cost_model):
    if random_access and isinstance(aggregation, MinimumTNorm):
        return (
            "standard fuzzy conjunction: A0' restricts random access to "
            "the candidates (Theorem 4.4)"
        )
    return None


register_strategy(
    "fagin-min",
    FaginA0Min,
    StrategyCapabilities(
        monotone_only=True,
        needs_random_access=True,
        aggregation_guard=lambda agg, m: isinstance(agg, MinimumTNorm),
        batch_aware=True,
    ),
    priority=40,
    selector=_select_fa_min,
    aliases=("A0-prime", "fa-min"),
    summary="Theorem 4.4: A0' for the standard min conjunction",
    # A0's envelope with Theorem 4.4's constant-factor saving on the
    # random phase (only candidates, not every seen object).
    cost_estimate=lambda n, m, k: (
        min(m * envelope_depth(n, m, k), m * n),
        min((m - 1) * 0.6 * m * envelope_depth(n, m, k), (m - 1) * n),
    ),
)
