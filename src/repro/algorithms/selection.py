"""Algorithm selection: which algorithm may answer which query.

The paper establishes a small decision table:

* standard fuzzy **disjunction** (max) — algorithm B0, cost m*k
  (Theorem 4.5, Remark 6.1);
* **median** aggregation, m >= 3 — the Remark 6.1 construction,
  cost O(sqrt(N*k)) for m = 3;
* standard fuzzy **conjunction** (min) — algorithm A0' (Theorem 4.4),
  a constant factor cheaper than A0 in random accesses;
* any other **monotone** query — algorithm A0 (Theorem 4.2);
* anything else (negation, non-monotone aggregations) — only the naive
  full scan is guaranteed correct (and for Q AND NOT Q, Theorem 7.1
  shows nothing asymptotically better exists).

That table now lives in the **strategy registry**
(:mod:`repro.engine.registry`): each algorithm module registers itself
with capability metadata and a selector, and
:func:`~repro.engine.registry.select_strategy` walks the registrations
in priority order. :func:`choose_algorithm` remains as a deprecated
shim so existing callers keep working — it performs the same registry
lookup and wraps the result in the historical
:class:`AlgorithmChoice`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.access.cost import CostModel
from repro.algorithms.base import TopKAlgorithm
from repro.engine.registry import (
    EXPENSIVE_RANDOM_ACCESS_RATIO,
    select_strategy,
)

__all__ = [
    "AlgorithmChoice",
    "choose_algorithm",
    "EXPENSIVE_RANDOM_ACCESS_RATIO",
]


@dataclass(frozen=True)
class AlgorithmChoice:
    """A selected algorithm plus the justification for the choice."""

    algorithm: TopKAlgorithm
    reason: str

    @property
    def name(self) -> str:
        return self.algorithm.name


def choose_algorithm(
    aggregation,
    num_lists: int,
    *,
    random_access: bool = True,
    cost_model: CostModel | None = None,
) -> AlgorithmChoice:
    """Select the best applicable algorithm for ``Ft(A1..Am)``.

    .. deprecated:: 2.0
        Use :func:`repro.engine.registry.select_strategy` (or the
        :class:`~repro.engine.engine.Engine` facade, which consults it
        for every query). This shim performs the identical registry
        lookup and will keep working for the foreseeable future.

    Parameters
    ----------
    random_access:
        Whether every involved subsystem supports random access
        (Section 4's footnote 5 assumption). Without it, the table
        restricts to sorted-only strategies: B0 for max, NRA for other
        monotone queries, the naive scan otherwise.
    cost_model:
        Optional (c1, c2) weighting. When random access is much more
        expensive than sorted access (c2/c1 >= 10), the sorted-only NRA
        is preferred for monotone queries even though random access is
        available.

    >>> from repro.core.tnorms import MINIMUM
    >>> choose_algorithm(MINIMUM, 2).name
    'A0-prime'
    >>> choose_algorithm(MINIMUM, 2, random_access=False).name
    'NRA'
    """
    warnings.warn(
        "choose_algorithm() is deprecated; use "
        "repro.engine.registry.select_strategy() or the Engine facade",
        DeprecationWarning,
        stacklevel=2,
    )
    choice = select_strategy(
        aggregation,
        num_lists,
        random_access=random_access,
        cost_model=cost_model,
    )
    return AlgorithmChoice(choice.algorithm, choice.reason)
