"""Algorithm selection: which algorithm may answer which query.

The paper establishes a small decision table:

* standard fuzzy **disjunction** (max) — algorithm B0, cost m*k
  (Theorem 4.5, Remark 6.1);
* **median** aggregation, m >= 3 — the Remark 6.1 construction,
  cost O(sqrt(N*k)) for m = 3;
* standard fuzzy **conjunction** (min) — algorithm A0' (Theorem 4.4),
  a constant factor cheaper than A0 in random accesses;
* any other **monotone** query — algorithm A0 (Theorem 4.2);
* anything else (negation, non-monotone aggregations) — only the naive
  full scan is guaranteed correct (and for Q AND NOT Q, Theorem 7.1
  shows nothing asymptotically better exists).

:func:`choose_algorithm` encodes that table; the middleware planner
consults it when compiling physical plans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.access.cost import CostModel
from repro.algorithms.base import TopKAlgorithm
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.median import MedianTopK
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.core.aggregation import AggregationFunction
from repro.core.means import Median
from repro.core.tconorms import MaximumTConorm
from repro.core.tnorms import MinimumTNorm

__all__ = ["AlgorithmChoice", "choose_algorithm"]

#: If random access costs at least this many times a sorted access
#: (c2/c1), prefer the sorted-only NRA for monotone queries. The E16
#: benchmark calibrates this heuristic: NRA's sorted phase runs a small
#: constant factor deeper than A0's, but avoids ~c2 * (number of seen
#: objects) of random-access spend.
EXPENSIVE_RANDOM_ACCESS_RATIO = 10.0


@dataclass(frozen=True)
class AlgorithmChoice:
    """A selected algorithm plus the justification for the choice."""

    algorithm: TopKAlgorithm
    reason: str

    @property
    def name(self) -> str:
        return self.algorithm.name


def choose_algorithm(
    aggregation: AggregationFunction,
    num_lists: int,
    *,
    random_access: bool = True,
    cost_model: CostModel | None = None,
) -> AlgorithmChoice:
    """Select the best applicable algorithm for ``Ft(A1..Am)``.

    Parameters
    ----------
    random_access:
        Whether every involved subsystem supports random access
        (Section 4's footnote 5 assumption). Without it, the table
        restricts to sorted-only strategies: B0 for max, NRA for other
        monotone queries, the naive scan otherwise.
    cost_model:
        Optional (c1, c2) weighting. When random access is much more
        expensive than sorted access (c2/c1 >= 10), the sorted-only NRA
        is preferred for monotone queries even though random access is
        available.

    >>> from repro.core.tnorms import MINIMUM
    >>> choose_algorithm(MINIMUM, 2).name
    'A0-prime'
    >>> choose_algorithm(MINIMUM, 2, random_access=False).name
    'NRA'
    """
    if num_lists < 1:
        raise ValueError(f"need at least one list, got {num_lists}")
    if isinstance(aggregation, MaximumTConorm):
        return AlgorithmChoice(
            DisjunctionB0(),
            "standard fuzzy disjunction: B0 costs m*k with sorted access "
            "only, independent of N (Theorem 4.5, Remark 6.1)",
        )
    if not random_access:
        if aggregation.monotone:
            return AlgorithmChoice(
                NoRandomAccessAlgorithm(),
                "a subsystem lacks random access: NRA evaluates monotone "
                "queries from sorted streams alone (successor of "
                "Section 4's footnote-5 assumption)",
            )
        return AlgorithmChoice(
            NaiveAlgorithm(),
            "non-monotone query without random access: full sorted scan",
        )
    if (
        cost_model is not None
        and aggregation.monotone
        and cost_model.random_weight
        >= EXPENSIVE_RANDOM_ACCESS_RATIO * cost_model.sorted_weight
    ):
        return AlgorithmChoice(
            NoRandomAccessAlgorithm(),
            f"random access costs c2/c1 = "
            f"{cost_model.random_weight / cost_model.sorted_weight:.0f}x "
            "a sorted access: the sorted-only NRA avoids that spend "
            "(heuristic calibrated by benchmark E16)",
        )
    if isinstance(aggregation, Median) and num_lists >= 3:
        return AlgorithmChoice(
            MedianTopK(),
            "median aggregation: the Remark 6.1 subset-min construction "
            "beats the strict-query lower bound",
        )
    if isinstance(aggregation, MinimumTNorm):
        return AlgorithmChoice(
            FaginA0Min(),
            "standard fuzzy conjunction: A0' restricts random access to "
            "the candidates (Theorem 4.4)",
        )
    if aggregation.monotone:
        return AlgorithmChoice(
            FaginA0(),
            "monotone query: A0 is correct (Theorem 4.2) and optimal when "
            "also strict (Theorem 6.5)",
        )
    return AlgorithmChoice(
        NaiveAlgorithm(),
        "non-monotone aggregation: only the naive full scan is guaranteed "
        "correct (cf. the Theta(N) hard query of Theorem 7.1)",
    )
