"""Internal vs external conjunction (Section 8).

    "Perhaps the most natural way to account for this issue is to
    define two flavors of conjunction, which we could call internal
    conjunction and external conjunction. … The user could request an
    internal conjunction for the sake of efficiency. If the user
    requests an external conjunction, then the external conjunction,
    which might involve many calls to the subsystem, must be used."

:func:`compare_conjunction_modes` runs the same conjunction both ways
against a Garlic instance and reports where the answers differ — the
mismatch Section 8 warns about when the subsystem's internal semantics
(e.g. QBIC's score averaging) is not Garlic's min rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.middleware.executor import QueryAnswer

__all__ = ["ModeComparison", "compare_conjunction_modes"]


@dataclass(frozen=True)
class ModeComparison:
    """Side-by-side external/internal answers for one conjunction."""

    external: QueryAnswer
    internal: QueryAnswer

    @property
    def same_objects(self) -> bool:
        """Do both modes return the same answer *set* (order aside)?"""
        return set(self.external.result.objects()) == set(
            self.internal.result.objects()
        )

    @property
    def external_cost(self) -> int:
        return self.external.result.stats.sum_cost

    @property
    def internal_cost(self) -> int:
        return self.internal.result.stats.sum_cost

    def summary(self) -> str:
        lines = [
            "external (Garlic semantics, possibly many subsystem calls):",
            f"  answers: {list(self.external.items)}",
            f"  cost:    {self.external_cost} accesses",
            "internal (subsystem's own semantics, one pushed-down call):",
            f"  answers: {list(self.internal.items)}",
            f"  cost:    {self.internal_cost} accesses",
            (
                "answer sets agree"
                if self.same_objects
                else "answer sets DIFFER — the subsystem's conjunction "
                "semantics is not Garlic's (Section 8's caveat)"
            ),
        ]
        return "\n".join(lines)


def compare_conjunction_modes(
    garlic, query, k: int = 10
) -> ModeComparison:
    """Evaluate ``query`` under both conjunction flavours.

    ``garlic`` is a :class:`repro.middleware.garlic.Garlic` or
    :class:`~repro.engine.engine.Engine` instance; ``query`` is
    query-language text or a parsed AND-of-atoms whose atoms all live
    in a subsystem that supports internal conjunction (otherwise the
    internal run raises).
    """
    engine = getattr(garlic, "engine", garlic)
    external = engine.query(query).conjunction("external").top(k)
    internal = engine.query(query).conjunction("internal").top(k)
    return ModeComparison(external=external, internal=internal)
