"""The attribute catalog: which subsystem answers which atomic query.

Garlic is a federator: "a single Garlic query can access data in a
number of different subsystems" (Section 1). The catalog maps attribute
names to registered subsystems, validates that all subsystems grade the
same object population (the Section 5 model: "all of the data in all of
the subsystems that we are considering … deal with the attributes of a
specific set of objects of some fixed type"), and surfaces the
selectivity statistics the planner uses.
"""

from __future__ import annotations

from typing import Iterable

from repro.access.types import ObjectId
from repro.core.query import AtomicQuery
from repro.exceptions import CatalogError
from repro.subsystems.base import Subsystem

__all__ = ["Catalog"]


class Catalog:
    """Registry of subsystems keyed by the attributes they serve."""

    def __init__(self) -> None:
        self._by_attribute: dict[str, Subsystem] = {}
        self._subsystems: list[Subsystem] = []
        self._objects: frozenset[ObjectId] | None = None
        #: Monotone mutation counter; bumped by every register/
        #: unregister. Cached artifacts derived from the catalog (the
        #: engine's plan cache above all) key on it, so swapping a
        #: subsystem — or its backing store, via unregister+register —
        #: invalidates them.
        self._version = 0

    @property
    def version(self) -> int:
        """The catalog's mutation counter (see ``__init__``)."""
        return self._version

    def register(self, subsystem: Subsystem) -> None:
        """Add a subsystem; its attributes become queryable.

        Rejects attribute clashes (two subsystems claiming the same
        attribute) and population mismatches (a subsystem grading a
        different object set than the ones already registered).
        """
        attrs = subsystem.attributes()
        for attr in attrs:
            existing = self._by_attribute.get(attr)
            if existing is not None:
                raise CatalogError(
                    f"attribute {attr!r} already served by "
                    f"{existing.name!r}; cannot also register "
                    f"{subsystem.name!r}"
                )
        population = subsystem.object_ids()
        if self._objects is not None and population != self._objects:
            raise CatalogError(
                f"subsystem {subsystem.name!r} grades {len(population)} "
                f"objects but the catalog's population has "
                f"{len(self._objects)}; all subsystems must grade the "
                "same objects (Section 5 model)"
            )
        self._objects = population
        self._subsystems.append(subsystem)
        for attr in attrs:
            self._by_attribute[attr] = subsystem
        self._version += 1

    def unregister(self, name: str) -> Subsystem:
        """Remove the subsystem registered under ``name``.

        Its attributes stop being queryable; the population constraint
        resets when the last subsystem leaves. Returns the removed
        subsystem (so a caller can re-register a replacement — the
        store-swap idiom the plan cache invalidates on).
        """
        for subsystem in self._subsystems:
            if subsystem.name == name:
                self._subsystems.remove(subsystem)
                self._by_attribute = {
                    attr: sub
                    for attr, sub in self._by_attribute.items()
                    if sub is not subsystem
                }
                if not self._subsystems:
                    self._objects = None
                self._version += 1
                return subsystem
        known = ", ".join(sorted(s.name for s in self._subsystems)) or "<none>"
        raise CatalogError(
            f"no subsystem named {name!r} is registered (known: {known})"
        )

    @property
    def subsystems(self) -> tuple[Subsystem, ...]:
        return tuple(self._subsystems)

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset(self._by_attribute)

    @property
    def objects(self) -> frozenset[ObjectId]:
        if self._objects is None:
            raise CatalogError("no subsystems registered")
        return self._objects

    @property
    def num_objects(self) -> int:
        return len(self.objects)

    def subsystem_for(self, query: AtomicQuery) -> Subsystem:
        """The subsystem serving an atomic query's attribute."""
        try:
            return self._by_attribute[query.attribute]
        except KeyError:
            known = ", ".join(sorted(self._by_attribute)) or "<none>"
            raise CatalogError(
                f"no subsystem serves attribute {query.attribute!r} "
                f"(known attributes: {known})"
            ) from None

    def selectivity(self, query: AtomicQuery) -> float | None:
        """Selectivity estimate for an atomic query, if available."""
        return self.subsystem_for(query).estimate_selectivity(query)

    def is_crisp(self, query: AtomicQuery) -> bool:
        """Is this atom a traditional (0/1) predicate?

        True when the atom uses crisp equality *and* its subsystem is
        declared crisp — the combination Section 4's filtered strategy
        relies on (the grade of a non-match is exactly 0).
        """
        return query.crisp and self.subsystem_for(query).crisp

    def same_subsystem(self, queries: Iterable[AtomicQuery]) -> Subsystem | None:
        """The single subsystem serving all given atoms, or None."""
        owners = {id(self.subsystem_for(q)): self.subsystem_for(q) for q in queries}
        if len(owners) == 1:
            return next(iter(owners.values()))
        return None

    def __repr__(self) -> str:
        return (
            f"Catalog({len(self._subsystems)} subsystems, "
            f"{len(self._by_attribute)} attributes)"
        )
