"""Physical plans: how the executor will evaluate a query.

The planner compiles a parsed query into one of four strategies, each
grounded in a specific part of the paper:

* :class:`AlgorithmPlan` — fetch one source per atom and run a chosen
  top-k algorithm (A0 / A0' / B0 / median / TA) on the compiled
  aggregation; the paper's main evaluation pathway (Section 4).
* :class:`FilteredConjunctPlan` — the strategy of Section 4's first
  example: evaluate a selective crisp conjunct to a set S, then use
  random access to grade only S's members under the other conjuncts.
* :class:`InternalConjunctionPlan` — Section 8: push a conjunction
  down into a single subsystem that evaluates it under its own
  semantics; the answer is then just the top of one sorted stream.
* :class:`FullScanPlan` — the naive algorithm, the only strategy that
  is correct for arbitrary (e.g. negated) queries; Theorem 7.1 shows
  this is sometimes unavoidable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.base import TopKAlgorithm
from repro.core.aggregation import AggregationFunction
from repro.core.query import AtomicQuery, Query
from repro.middleware.compile import CompiledQueryAggregation
from repro.subsystems.base import Subsystem

__all__ = [
    "PhysicalPlan",
    "AlgorithmPlan",
    "FilteredConjunctPlan",
    "InternalConjunctionPlan",
    "FullScanPlan",
]


@dataclass(frozen=True)
class PhysicalPlan:
    """Base: a strategy plus the query and the planner's justification."""

    query: Query
    reason: str

    def explain(self) -> str:
        """One-paragraph human-readable description of the strategy."""
        return f"{type(self).__name__}: {self.reason}"


@dataclass(frozen=True)
class AlgorithmPlan(PhysicalPlan):
    """Run ``algorithm`` over one source per atom with ``aggregation``."""

    atoms: tuple[AtomicQuery, ...] = ()
    algorithm: TopKAlgorithm | None = None
    #: The aggregation handed to the algorithm: the plain t-norm/co-norm
    #: for flat AND/OR under standard semantics (so A0'/B0's type checks
    #: see min/max), otherwise the compiled composite.
    aggregation: AggregationFunction | None = None
    #: The batch size the planner negotiated across the atoms'
    #: subsystems (:func:`~repro.subsystems.base.negotiate_batch_size`);
    #: ``None`` routes the executor through unit access — the fallback
    #: when any involved subsystem lacks ``supports_batched_access``.
    batch_size: int | None = None

    def explain(self) -> str:
        assert self.algorithm is not None
        atom_list = ", ".join(map(repr, self.atoms))
        transport = (
            f"batched x{self.batch_size}"
            if self.batch_size is not None
            else "unit access"
        )
        return (
            f"AlgorithmPlan[{self.algorithm.name}] over atoms [{atom_list}]"
            f" ({transport}) — {self.reason}"
        )


@dataclass(frozen=True)
class FilteredConjunctPlan(PhysicalPlan):
    """Crisp selective conjuncts filter; graded conjuncts via random access.

    "a good way to evaluate this query would be first to determine all
    objects that satisfy the first conjunct (call this set of objects
    S), and then to obtain grades from QBIC (using random access) for
    the second conjunct for all objects in S." (Section 4)
    """

    filter_atoms: tuple[AtomicQuery, ...] = ()
    graded_atoms: tuple[AtomicQuery, ...] = ()
    aggregation: CompiledQueryAggregation | None = None
    #: Negotiated federation batch size (see :class:`AlgorithmPlan`):
    #: with one, the executor pages the crisp grade-1 block off the top
    #: of each filter stream and bulk-looks-up the survivors per graded
    #: atom; ``None`` keeps the unit-access route. Access counts are
    #: identical either way (Section 5's model counts accesses, not
    #: round trips).
    batch_size: int | None = None

    def explain(self) -> str:
        filters = ", ".join(map(repr, self.filter_atoms))
        graded = ", ".join(map(repr, self.graded_atoms))
        transport = (
            f"batched x{self.batch_size}"
            if self.batch_size is not None
            else "unit access"
        )
        return (
            f"FilteredConjunctPlan: filter on [{filters}], random-access "
            f"grades for [{graded}] ({transport}) — {self.reason}"
        )


@dataclass(frozen=True)
class InternalConjunctionPlan(PhysicalPlan):
    """Push the whole conjunction into one subsystem (Section 8)."""

    atoms: tuple[AtomicQuery, ...] = ()
    subsystem: Subsystem | None = None

    def explain(self) -> str:
        assert self.subsystem is not None
        atom_list = ", ".join(map(repr, self.atoms))
        return (
            f"InternalConjunctionPlan: subsystem {self.subsystem.name!r} "
            f"evaluates [{atom_list}] under its own semantics — {self.reason}"
        )


@dataclass(frozen=True)
class FullScanPlan(PhysicalPlan):
    """Naive full scan — correct for any query."""

    atoms: tuple[AtomicQuery, ...] = ()
    aggregation: CompiledQueryAggregation | None = None
    universe_negation: bool = field(default=False)
    #: Negotiated federation batch size (see :class:`AlgorithmPlan`).
    batch_size: int | None = None

    def explain(self) -> str:
        return (
            f"FullScanPlan over {len(self.atoms)} atom(s) — {self.reason}"
        )
