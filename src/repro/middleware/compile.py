"""Compiling a query tree into an m-ary aggregation over its atoms.

The algorithms of Section 4 are stated for ``Ft(A1, ..., Am)`` — one
aggregation function applied to atomic grades. An arbitrary
negation-free Boolean combination like ``A AND (B OR C)`` *is* such an
``Ft``: the composite t(g_A, g_B, g_C) = tnorm(g_A, conorm(g_B, g_C))
is itself an aggregation function, monotone whenever the connectives
are (composition of monotone functions), which is exactly what
Theorem 4.2 needs. :class:`CompiledQueryAggregation` performs that
compilation, inheriting its monotone/strict flags from the semantics'
conservative classification.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.aggregation import AggregationFunction
from repro.core.query import AtomicQuery, Query
from repro.core.semantics import FuzzySemantics

__all__ = ["CompiledQueryAggregation"]


class CompiledQueryAggregation(AggregationFunction):
    """The query's grade as a function of its atoms' grades.

    Argument order follows ``query.atoms()`` (first-appearance order);
    the ``atoms`` attribute records it so callers can line sources up.
    An atom appearing several times in the tree (e.g. ``A AND (A OR
    B)``) is still a *single* argument — its grade is shared, exactly
    as the semantics of Section 3 prescribe.
    """

    def __init__(self, query: Query, semantics: FuzzySemantics) -> None:
        self.query = query
        self.semantics = semantics
        self.atoms: tuple[AtomicQuery, ...] = query.atoms()
        if not self.atoms:
            raise ValueError("query has no atomic subqueries")
        self.arity = len(self.atoms)
        classification = semantics.classify(query)
        self.monotone = classification.monotone
        self.strict = classification.strict
        self.name = f"compiled({query!r})"

    def aggregate(self, grades: Sequence[float]) -> float:
        valuation = dict(zip(self.atoms, grades))
        return self.semantics.evaluate(self.query, valuation)
