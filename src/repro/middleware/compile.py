"""Compiling a query tree into an m-ary aggregation over its atoms.

The algorithms of Section 4 are stated for ``Ft(A1, ..., Am)`` — one
aggregation function applied to atomic grades. An arbitrary
negation-free Boolean combination like ``A AND (B OR C)`` *is* such an
``Ft``: the composite t(g_A, g_B, g_C) = tnorm(g_A, conorm(g_B, g_C))
is itself an aggregation function, monotone whenever the connectives
are (composition of monotone functions), which is exactly what
Theorem 4.2 needs. :class:`CompiledQueryAggregation` performs that
compilation, inheriting its monotone/strict flags from the semantics'
conservative classification.

Compilation also targets the bulk pipeline: when every connective in
the tree has a vectorized kernel (:mod:`repro.core.kernels`), the
compiled aggregation assembles a *column plan* — a composition of
kernels that scores a whole (m, n) grade matrix at once — and exposes
it through the instance-level ``aggregate_columns`` capability, so the
filtered-conjunct executor and the naive scan evaluate the query tree
in a handful of numpy sweeps instead of one Python recursion per
object. Any node without a kernel (an exotic norm, a non-standard
negation, a weighted node) declines vectorization entirely and the
scalar fold applies unchanged — same answers either way.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.aggregation import AggregationFunction
from repro.core.kernels import HAVE_NUMPY, kernel_for, stack_rows
from repro.core.negations import StandardNegation
from repro.core.query import And, AtomicQuery, Ft, Not, Or, Query
from repro.core.semantics import FuzzySemantics

__all__ = ["CompiledQueryAggregation"]


class CompiledQueryAggregation(AggregationFunction):
    """The query's grade as a function of its atoms' grades.

    Argument order follows ``query.atoms()`` (first-appearance order);
    the ``atoms`` attribute records it so callers can line sources up.
    An atom appearing several times in the tree (e.g. ``A AND (A OR
    B)``) is still a *single* argument — its grade is shared, exactly
    as the semantics of Section 3 prescribe.

    ``vectorize=False`` suppresses the column plan even when every
    connective has a kernel — the lane the perf harness uses to
    isolate what the vectorized computation phase buys.
    """

    def __init__(
        self,
        query: Query,
        semantics: FuzzySemantics,
        vectorize: bool = True,
    ) -> None:
        self.query = query
        self.semantics = semantics
        self.atoms: tuple[AtomicQuery, ...] = query.atoms()
        if not self.atoms:
            raise ValueError("query has no atomic subqueries")
        self.arity = len(self.atoms)
        classification = semantics.classify(query)
        self.monotone = classification.monotone
        self.strict = classification.strict
        self.name = f"compiled({query!r})"
        if vectorize and HAVE_NUMPY:
            column_plan = self._compile_columns(
                query, {atom: i for i, atom in enumerate(self.atoms)}
            )
            if column_plan is not None:
                # Instance-level VectorizedAggregation capability: set
                # only when the *whole* tree kernelised, so kernel_for
                # never sees a partial plan.
                self.aggregate_columns = column_plan

    def aggregate(self, grades: Sequence[float]) -> float:
        valuation = dict(zip(self.atoms, grades))
        return self.semantics.evaluate(self.query, valuation)

    # ------------------------------------------------------------------
    # Column-plan compilation
    # ------------------------------------------------------------------

    def _compile_columns(
        self, query: Query, index: dict[AtomicQuery, int]
    ) -> Callable | None:
        """A kernel composition scoring every matrix column, or None.

        Mirrors :meth:`~repro.core.semantics.FuzzySemantics.evaluate`
        node for node: atoms read their matrix row, And/Or apply the
        semantics' connective kernel to the stacked child vectors, Ft
        applies its own aggregation's kernel, Not applies the standard
        negation (the only one with a closed vector form we vectorize).
        Returns ``None`` — decline, scalar fold — as soon as any node
        lacks a kernel, so vectorization is all-or-nothing per query.
        """
        if isinstance(query, AtomicQuery):
            row = index[query]
            return lambda matrix: matrix[row]
        if isinstance(query, Not):
            if not isinstance(self.semantics.negation, StandardNegation):
                return None
            operand = self._compile_columns(query.operand, index)
            if operand is None:
                return None
            return lambda matrix: 1.0 - operand(matrix)
        if isinstance(query, And):
            connective: AggregationFunction = self.semantics.tnorm
        elif isinstance(query, Or):
            connective = self.semantics.conorm
        elif isinstance(query, Ft):
            connective = query.aggregation
        else:  # Weighted (and future node types): scalar evaluation only
            return None
        kernel = kernel_for(connective)
        if kernel is None:
            return None
        children = [self._compile_columns(c, index) for c in query.children()]
        if any(child is None for child in children):
            return None

        def run(matrix, kernel=kernel, children=tuple(children)):
            return kernel(stack_rows([child(matrix) for child in children]))

        return run
