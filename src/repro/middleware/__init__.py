"""Garlic-style middleware: parse, plan, execute federated fuzzy queries.

The end-to-end pipeline of Sections 1-2 and 8: a query language for
Boolean combinations of crisp and graded atoms, a catalog of federated
subsystems, a planner implementing the paper's strategy table
(filtered conjuncts, A0/A0'/B0/median selection, internal-conjunction
pushdown, naive fallback), and an executor with full access-cost
accounting.
"""

from repro.middleware.catalog import Catalog
from repro.middleware.compile import CompiledQueryAggregation
from repro.middleware.conjunction_modes import (
    ModeComparison,
    compare_conjunction_modes,
)
from repro.middleware.cursor import QueryCursor
from repro.middleware.executor import Executor, QueryAnswer
from repro.middleware.garlic import Garlic
from repro.middleware.parser import parse_query, render_query
from repro.middleware.plan import (
    AlgorithmPlan,
    FilteredConjunctPlan,
    FullScanPlan,
    InternalConjunctionPlan,
    PhysicalPlan,
)
from repro.middleware.planner import Planner, PlannerOptions

__all__ = [
    "Garlic",
    "Catalog",
    "Planner",
    "PlannerOptions",
    "Executor",
    "QueryAnswer",
    "QueryCursor",
    "parse_query",
    "render_query",
    "CompiledQueryAggregation",
    "PhysicalPlan",
    "AlgorithmPlan",
    "FilteredConjunctPlan",
    "InternalConjunctionPlan",
    "FullScanPlan",
    "ModeComparison",
    "compare_conjunction_modes",
]
