"""The planner: query AST -> physical plan.

Strategy selection follows the paper's decision points:

1. **Rewrites** are applied only when the semantics provably preserves
   logical equivalence — by Theorem 3.1 that means min/max (the
   standard rules). With any other connective pair, rewriting a query
   into an "equivalent" one can change answers, so the planner leaves
   the tree alone. (The applied rewrites are conservative
   flatten/dedup steps: A AND A -> A, nested AND/OR flattening.)
2. A conjunction with at least one *selective crisp* conjunct uses the
   **filtered-conjunct strategy** of Section 4's first example.
3. A conjunction whose atoms all live in one subsystem can be **pushed
   down** as an internal conjunction when the caller opts into
   Section 8's internal mode.
4. Everything monotone goes to the **algorithm table** of
   :mod:`repro.algorithms.selection` (B0 for max-disjunctions, A0'
   for min-conjunctions, the median construction, generic A0).
5. Negation or other non-monotone structure falls back to the **full
   scan** (Theorem 7.1 shows that in the worst case nothing better
   exists).

Orthogonally to strategy choice, the planner negotiates the
federation's *transport*: when every subsystem a plan touches —
algorithm, full-scan, and filtered-conjunct plans alike — declares
``supports_batched_access``, the plan records the agreed batch size
(:func:`~repro.subsystems.base.negotiate_batch_size`) and the executor
mints sources through ``Subsystem.evaluate_batched`` — ranked pages
instead of one object per round trip. Any non-batched member drops the
whole plan to unit access (the unit-fallback contract); access
*counts* are identical either way, per Section 5's model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.access.cost import CostModel
from repro.core.query import And, AtomicQuery, Not, Or, Query
from repro.core.semantics import STANDARD_FUZZY, FuzzySemantics
from repro.core.tconorms import MaximumTConorm
from repro.core.tnorms import MinimumTNorm
from repro.engine.registry import select_strategy
from repro.middleware.catalog import Catalog
from repro.middleware.compile import CompiledQueryAggregation
from repro.middleware.plan import (
    AlgorithmPlan,
    FilteredConjunctPlan,
    FullScanPlan,
    InternalConjunctionPlan,
    PhysicalPlan,
)
from repro.subsystems.base import negotiate_batch_size

__all__ = ["Planner", "PlannerOptions"]


@dataclass(frozen=True)
class PlannerOptions:
    """Tuning knobs for strategy selection.

    Attributes
    ----------
    selectivity_threshold:
        A crisp conjunct qualifies for the filtered strategy when its
        estimated selectivity is at most this fraction ("there are not
        many objects that satisfy the first conjunct", Section 4).
        Ignored when ``cost_based`` is set.
    allow_internal_conjunction:
        Permit Section 8 pushdown when a conjunction's atoms share a
        subsystem that supports it. Off by default because the answer
        follows the *subsystem's* semantics, not Garlic's — the user
        must opt in, exactly as Section 8 prescribes ("The user could
        request an internal conjunction for the sake of efficiency").
    cost_based:
        Replace the fixed selectivity threshold with a cost comparison
        built from the paper's own formulas: the filtered strategy is
        estimated at ``(sel*N + 1) + sel*N*(#graded conjuncts)``
        accesses (scan the crisp block, then random-access each
        survivor) and the A0 route at ``expected_k_factor *
        N^((m-1)/m) * k^(1/m) * m`` (Theorem 5.3's envelope with an
        empirical constant). Requires ``expected_k`` to size the A0
        estimate.
    expected_k:
        The k the cost-based comparison assumes (queries usually ask
        for a known page size, e.g. 10).
    expected_k_factor:
        The empirical constant in front of the A0 envelope; ~4 for
        m = 2 on independent lists (benchmark E1's cost/bound column).
    """

    selectivity_threshold: float = 0.1
    allow_internal_conjunction: bool = False
    cost_based: bool = False
    expected_k: int = 10
    expected_k_factor: float = 4.0


class Planner:
    """Compiles queries against a catalog into physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        semantics: FuzzySemantics = STANDARD_FUZZY,
        options: PlannerOptions | None = None,
        cost_model: CostModel | None = None,
        batch_size: int | None = None,
    ) -> None:
        self._catalog = catalog
        self._semantics = semantics
        self._options = options or PlannerOptions()
        #: Optional (c1, c2) weighting handed to strategy selection —
        #: expensive random access steers monotone queries to NRA.
        self._cost_model = cost_model
        #: Deployment cap on the negotiated federation batch size
        #: (``ExecutionContext.batch_size``); None lets the subsystems'
        #: own hints decide.
        self._batch_size = batch_size

    # ------------------------------------------------------------------
    # Rewrites
    # ------------------------------------------------------------------

    def _equivalence_preserving(self) -> bool:
        """May the planner rewrite by logical equivalence?

        Theorem 3.1: only min/max preserve equivalence of and/or
        queries, so only the standard semantics licenses rewrites.
        """
        return isinstance(self._semantics.tnorm, MinimumTNorm) and isinstance(
            self._semantics.conorm, MaximumTConorm
        )

    def rewrite(self, query: Query) -> Query:
        """Conservative cleanup rewrites (idempotence dedup).

        Only applied under equivalence-preserving semantics; nested
        AND/OR flattening already happens structurally at construction.
        """
        if not self._equivalence_preserving():
            return query
        return self._dedup(query)

    def _dedup(self, query: Query) -> Query:
        if isinstance(query, (And, Or)):
            rewritten = [self._dedup(op) for op in query.operands]
            unique = list(dict.fromkeys(rewritten))
            if len(unique) == 1:
                return unique[0]
            return type(query)(unique)
        if isinstance(query, Not):
            return Not(self._dedup(query.operand))
        return query

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, query: Query) -> PhysicalPlan:
        """Choose a physical strategy for ``query``."""
        return self.plan_rewritten(self.rewrite(query))

    def plan_rewritten(self, query: Query) -> PhysicalPlan:
        """Plan a query :meth:`rewrite` has already been applied to.

        The adaptive layer normalizes shapes over the *rewritten* tree
        (so ``A AND A`` and ``A`` share a cache entry) and has
        therefore already paid for the rewrite; this entry point lets
        it mint the plan without a second pass. The rewrites are
        idempotent, so ``plan(q) == plan_rewritten(rewrite(q))``.
        """
        atoms = query.atoms()
        if not atoms:
            raise ValueError("query has no atomic subqueries")
        for atom in atoms:
            # Fail fast on unknown attributes.
            self._catalog.subsystem_for(atom)

        aggregation = CompiledQueryAggregation(query, self._semantics)
        random_access_ok = all(
            self._catalog.subsystem_for(a).supports_random_access
            for a in atoms
        )

        if (
            random_access_ok
            and isinstance(query, And)
            and all(isinstance(op, AtomicQuery) for op in query.operands)
        ):
            conjunction_plan = self._plan_conjunction(query, aggregation)
            if conjunction_plan is not None:
                return conjunction_plan

        if aggregation.monotone:
            run_aggregation = self._pick_table_aggregation(query, aggregation)
            choice = select_strategy(
                run_aggregation,
                len(atoms),
                random_access=random_access_ok,
                cost_model=self._cost_model,
            )
            return AlgorithmPlan(
                query=query,
                reason=choice.reason,
                atoms=atoms,
                algorithm=choice.algorithm,
                aggregation=run_aggregation,
                batch_size=self._negotiated_batch_size(atoms),
            )

        return FullScanPlan(
            query=query,
            reason=(
                "query is not monotone (negation or non-monotone "
                "aggregation); only the naive full scan is guaranteed "
                "correct — cf. the Theta(N) hard query of Theorem 7.1"
            ),
            atoms=atoms,
            aggregation=aggregation,
            batch_size=self._negotiated_batch_size(atoms),
        )

    def _negotiated_batch_size(self, atoms) -> int | None:
        """The batch size this query's subsystems agree on (None = unit).

        One subsystem may serve several atoms; capability is a property
        of the subsystem, so the negotiation runs over the distinct
        owners.
        """
        owners = {
            id(sub): sub
            for sub in (self._catalog.subsystem_for(a) for a in atoms)
        }
        return negotiate_batch_size(owners.values(), requested=self._batch_size)

    def _pick_table_aggregation(self, query: Query, compiled):
        """What to hand the algorithm-selection table.

        A flat AND-of-atoms under min *is* the min aggregation (so A0'
        applies); a flat OR-of-atoms under max is max (B0). Anything
        nested keeps the compiled composite and gets generic A0.
        """
        if isinstance(query, And) and all(
            isinstance(op, AtomicQuery) for op in query.operands
        ):
            if isinstance(self._semantics.tnorm, MinimumTNorm):
                return self._semantics.tnorm
        if isinstance(query, Or) and all(
            isinstance(op, AtomicQuery) for op in query.operands
        ):
            if isinstance(self._semantics.conorm, MaximumTConorm):
                return self._semantics.conorm
        return compiled

    def _plan_conjunction(
        self, query: And, aggregation: CompiledQueryAggregation
    ) -> PhysicalPlan | None:
        """Conjunction-specific strategies, or None to fall through."""
        atoms = tuple(query.operands)  # all atomic by the caller's check

        if self._options.allow_internal_conjunction:
            owner = self._catalog.same_subsystem(atoms)
            if owner is not None and owner.supports_internal_conjunction:
                return InternalConjunctionPlan(
                    query=query,
                    reason=(
                        "all conjuncts live in one subsystem supporting "
                        "internal conjunction; pushdown requested "
                        "(Section 8 — note the subsystem's own semantics "
                        "applies)"
                    ),
                    atoms=atoms,
                    subsystem=owner,
                )

        if self._options.cost_based:
            return self._plan_conjunction_cost_based(query, aggregation)

        crisp_selective = [
            a
            for a in atoms
            if self._catalog.is_crisp(a)
            and (self._catalog.selectivity(a) or 1.0)
            <= self._options.selectivity_threshold
        ]
        if crisp_selective and len(crisp_selective) < len(atoms):
            graded = tuple(a for a in atoms if a not in crisp_selective)
            return FilteredConjunctPlan(
                query=query,
                reason=(
                    "selective crisp conjunct(s) available: determine the "
                    "matching set first, then random-access the graded "
                    "conjuncts for just those objects (Section 4, the "
                    "Artist='Beatles' example)"
                ),
                filter_atoms=tuple(crisp_selective),
                graded_atoms=graded,
                aggregation=aggregation,
                batch_size=self._negotiated_batch_size(atoms),
            )
        return None

    def _plan_conjunction_cost_based(
        self, query: And, aggregation: CompiledQueryAggregation
    ) -> PhysicalPlan | None:
        """Compare estimated access costs of the two conjunction routes.

        Estimates come straight from the paper: the filtered strategy
        touches ~|S| objects per phase (Section 4's example) and the
        A0 route is sized by Theorem 5.3's envelope. We deliberately
        estimate, not measure — this is what a Garlic optimizer with
        catalogue statistics could do in 1996.
        """
        atoms = tuple(query.operands)
        crisp = [
            a
            for a in atoms
            if self._catalog.is_crisp(a)
            and self._catalog.selectivity(a) is not None
        ]
        if not crisp or len(crisp) == len(atoms):
            return None
        n = self._catalog.num_objects
        # Most selective crisp conjunct leads the filter.
        sel = min(self._catalog.selectivity(a) for a in crisp)  # type: ignore[arg-type]
        graded = tuple(a for a in atoms if a not in crisp)
        match_size = sel * n
        filtered_cost = (match_size + 1) + match_size * len(graded)

        m = len(atoms)
        k = self._options.expected_k
        a0_cost = (
            self._options.expected_k_factor
            * n ** ((m - 1) / m)
            * k ** (1 / m)
        )
        if filtered_cost < a0_cost:
            return FilteredConjunctPlan(
                query=query,
                reason=(
                    f"cost-based: filtered ~{filtered_cost:.0f} accesses "
                    f"vs A0 envelope ~{a0_cost:.0f} (Theorem 5.3 with "
                    f"empirical constant {self._options.expected_k_factor})"
                ),
                filter_atoms=tuple(crisp),
                graded_atoms=graded,
                aggregation=aggregation,
                batch_size=self._negotiated_batch_size(atoms),
            )
        return None
