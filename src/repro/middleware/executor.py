"""The executor: runs physical plans against registered subsystems.

Every access a strategy makes flows through instrumented sources, so a
:class:`QueryAnswer` carries the true middleware cost of the execution
— the same accounting the paper's Section 5 analysis is about, now at
the federated level.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.access.cost import CostTracker
from repro.access.session import MiddlewareSession
from repro.access.source import InstrumentedSource, tie_break_key
from repro.access.types import GradedItem
from repro.algorithms.base import TopKResult, top_k_of
from repro.algorithms.naive import NaiveAlgorithm
from repro.core.graded_set import GradedSet
from repro.core.query import Query
from repro.core.semantics import FuzzySemantics
from repro.exceptions import PlanningError
from repro.middleware.catalog import Catalog
from repro.middleware.plan import (
    AlgorithmPlan,
    FilteredConjunctPlan,
    FullScanPlan,
    InternalConjunctionPlan,
    PhysicalPlan,
)

__all__ = ["QueryAnswer", "Executor"]


@dataclass(frozen=True)
class QueryAnswer:
    """A top-k answer with its provenance: plan, query, and cost."""

    query: Query
    plan: PhysicalPlan
    result: TopKResult

    @property
    def items(self) -> tuple[GradedItem, ...]:
        return self.result.items

    def as_graded_set(self) -> GradedSet:
        return self.result.as_graded_set()

    def explain(self) -> str:
        stats = self.result.stats
        return (
            f"{self.plan.explain()}\n"
            f"cost: S={stats.sorted_cost} sorted + R={stats.random_cost} "
            f"random = {stats.sum_cost} accesses"
        )

    def __repr__(self) -> str:
        return (
            f"QueryAnswer(k={self.result.k}, "
            f"plan={type(self.plan).__name__}, "
            f"cost={self.result.stats.sum_cost})"
        )


class Executor:
    """Executes physical plans over a catalog of subsystems.

    Parameters
    ----------
    evaluate_atom:
        Optional hook returning the raw source for an atomic query;
        defaults to asking the catalog's owning subsystem. Batch
        execution injects a caching hook here so an atom shared by
        several queries is evaluated once per batch. The hook may
        accept an optional ``batch_size`` keyword; single-argument
        hooks keep working (the plan's negotiated batch size is then
        the hook's own business).

    An executor holds no per-execution state — ``execute`` builds a
    fresh session/tracker per plan — so one instance may serve plans
    from several threads, *provided* the hook (if any) is itself
    thread-safe and every call returns a source no other plan is
    consuming (``Engine.run_many`` hands out forked cursors for
    exactly this reason).
    """

    def __init__(
        self,
        catalog: Catalog,
        semantics: FuzzySemantics,
        evaluate_atom=None,
    ) -> None:
        self._catalog = catalog
        self._semantics = semantics
        self._custom_evaluate = evaluate_atom
        self._custom_accepts_batch = False
        if evaluate_atom is not None:
            parameters = inspect.signature(evaluate_atom).parameters.values()
            self._custom_accepts_batch = any(
                p.name == "batch_size" or p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters
            )
        self._evaluate = evaluate_atom or (
            lambda atom: catalog.subsystem_for(atom).evaluate(atom)
        )

    def _evaluate_source(self, atom, batch_size: int | None):
        """Mint the raw source for one atom, honouring the plan's transport.

        With a negotiated batch size the owning subsystem serves the
        atom through ``evaluate_batched`` (ranked pages, native bulk
        lookups); without one the unit route applies unchanged. A
        caller-supplied hook is forwarded the batch size only if its
        signature takes one.
        """
        if self._custom_evaluate is not None:
            if self._custom_accepts_batch:
                return self._custom_evaluate(atom, batch_size=batch_size)
            return self._custom_evaluate(atom)
        if batch_size is None:
            return self._evaluate(atom)
        return self._catalog.subsystem_for(atom).evaluate_batched(
            atom, batch_size
        )

    def execute(
        self, plan: PhysicalPlan, k: int, contract=None
    ) -> QueryAnswer:
        """Run ``plan`` and return the top-k answer with cost accounting.

        ``contract`` (a :class:`~repro.core.certify.QualityContract`,
        or ``None`` for exact) reaches contract-aware algorithms
        through :class:`AlgorithmPlan` execution; every other plan
        shape runs to exact completion regardless — exact satisfies
        any ε, and the answer's ``guarantee`` records it honestly.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if isinstance(plan, AlgorithmPlan):
            result = self._run_algorithm(plan, k, contract)
        elif isinstance(plan, FilteredConjunctPlan):
            result = self._run_filtered(plan, k)
        elif isinstance(plan, InternalConjunctionPlan):
            result = self._run_internal(plan, k)
        elif isinstance(plan, FullScanPlan):
            result = self._run_full_scan(plan, k)
        else:
            raise PlanningError(f"unknown plan type {type(plan).__name__}")
        return QueryAnswer(query=plan.query, plan=plan, result=result)

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------

    def _session_for(
        self, atoms, batch_size: int | None = None
    ) -> MiddlewareSession:
        raw = [self._evaluate_source(atom, batch_size) for atom in atoms]
        return MiddlewareSession.over_sources(
            raw, num_objects=self._catalog.num_objects
        )

    def _run_algorithm(
        self, plan: AlgorithmPlan, k: int, contract=None
    ) -> TopKResult:
        assert plan.algorithm is not None and plan.aggregation is not None
        session = self._session_for(plan.atoms, plan.batch_size)
        return plan.algorithm.top_k(session, plan.aggregation, k, contract)

    def _run_full_scan(self, plan: FullScanPlan, k: int) -> TopKResult:
        assert plan.aggregation is not None
        session = self._session_for(plan.atoms, plan.batch_size)
        return NaiveAlgorithm().top_k(session, plan.aggregation, k)

    def _run_internal(self, plan: InternalConjunctionPlan, k: int) -> TopKResult:
        assert plan.subsystem is not None
        tracker = CostTracker(1)
        source = InstrumentedSource(
            plan.subsystem.evaluate_conjunction(list(plan.atoms)), tracker, 0
        )
        items = []
        for _ in range(min(k, len(source))):
            items.append(source.next_sorted())
        return TopKResult(
            items=tuple(items),
            stats=tracker.snapshot(),
            algorithm="internal-conjunction",
            details={"subsystem": plan.subsystem.name},
        )

    def _run_filtered(self, plan: FilteredConjunctPlan, k: int) -> TopKResult:
        """The Section 4 filtered-conjunct strategy.

        1. For each crisp filter atom, read its sorted stream just past
           the grade-1 block; intersect the match sets to get S.
        2. For each object in S, random-access the graded conjuncts.
        3. Grade S's members with the compiled aggregation (filter
           atoms contribute 1). Objects outside S provably have grade
           0 (some crisp conjunct is 0 and every t-norm annihilates at
           0), so if |S| < k the answer is padded with grade-0 objects
           — no further accesses needed.

        With a negotiated ``plan.batch_size`` the same three phases run
        bulk: sources are minted through ``evaluate_batched``, the
        grade-1 blocks are paged off the filter streams, the survivors
        are bulk-looked-up per graded atom via ``random_access_many``,
        and S is scored in one column sweep. Access counts match the
        unit route (a batch of b accesses costs b unit accesses).
        """
        assert plan.aggregation is not None
        compiled = plan.aggregation
        all_atoms = compiled.atoms  # argument order of the aggregation
        batch_size = plan.batch_size
        tracker = CostTracker(len(plan.filter_atoms) + len(plan.graded_atoms))

        sources = {}
        for index, atom in enumerate(plan.filter_atoms + plan.graded_atoms):
            raw = self._evaluate_source(atom, batch_size)
            sources[atom] = InstrumentedSource(raw, tracker, index)

        # Phase 1: crisp match sets off the top of each filter stream.
        survivors: set | None = None
        for atom in plan.filter_atoms:
            if batch_size is None:
                matches = self._crisp_block_unit(sources[atom])
            else:
                matches = self._crisp_block_batched(
                    sources[atom], atom, batch_size
                )
            survivors = matches if survivors is None else (survivors & matches)
            if not survivors:
                break
        assert survivors is not None

        # Phase 2: random access the graded conjuncts for S's members,
        # then score the whole set in one column sweep (vectorized when
        # the compiled aggregation carries a kernel plan). ``ordered``
        # fixes a deterministic column order; the scores themselves are
        # order-independent.
        ordered = sorted(survivors, key=tie_break_key)
        rows: list[list[float]] = []
        for atom in all_atoms:
            if atom in plan.filter_atoms:
                rows.append([1.0] * len(ordered))
            elif batch_size is None:
                source = sources[atom]
                rows.append([source.random_access(obj) for obj in ordered])
            else:
                rows.append(sources[atom].random_access_many(ordered))
        scores = compiled.evaluate_columns(rows) if ordered else []
        scored = dict(zip(ordered, scores))

        items = list(top_k_of(scored, min(k, len(scored))))

        # Phase 3: pad with certified grade-0 objects if needed, in the
        # library-wide deterministic tie order (integer populations pad
        # numerically, not by the lexicographic repr that put 10 < 2).
        if len(items) < k:
            padding = sorted(
                (obj for obj in self._catalog.objects if obj not in survivors),
                key=tie_break_key,
            )
            for obj in padding[: k - len(items)]:
                items.append(GradedItem(obj, 0.0))

        return TopKResult(
            items=tuple(items),
            stats=tracker.snapshot(),
            algorithm="filtered-conjunct",
            details={
                "filter_set_size": len(survivors),
                "batch_size": batch_size,
            },
        )

    @staticmethod
    def _crisp_block_unit(source) -> set:
        """The grade-1 block of a crisp stream, one sorted access at a
        time — the paper's literal protocol: read matches off the top,
        stop at the first non-match."""
        matches = set()
        while not source.exhausted:
            item = source.next_sorted()
            if item.grade >= 1.0:
                matches.add(item.obj)
            else:
                break  # crisp stream: everything after is graded 0
        return matches

    def _crisp_block_batched(self, source, atom, batch_size: int) -> set:
        """The grade-1 block, read in sorted-access pages.

        The page sizing keeps the Section 5 accounting identical to the
        unit route. When the owning subsystem declares its selectivity
        statistic *exact* (``selectivity_is_exact``), the statistic (a
        catalogue lookup, not a charged access — the planner already
        consulted it to pick this strategy) gives the block length B,
        and the reads total exactly the block plus the one probe item
        that proves it ended — ``B + 1`` accesses, precisely what the
        unit loop performs (a short count degrades to unit-sized probe
        pages past the predicted prefix and still lands on B + 1).
        Without an exactness declaration the estimate is not trusted
        for sizing at all — an over-estimate would over-read and
        inflate the sorted count — and the block is read in unit-sized
        pages: one object per exchange, the unit lane's accounting by
        construction. The same caution applies when a caller-supplied
        evaluation hook minted the stream: the hook may serve data the
        catalogue's statistics do not describe (a snapshot, a cache, a
        test double), so its blocks are always probed unit-sized.
        """
        matches: set = set()
        subsystem = self._catalog.subsystem_for(atom)
        selectivity = (
            subsystem.estimate_selectivity(atom)
            if self._custom_evaluate is None and subsystem.selectivity_is_exact
            else None
        )
        expected = (
            int(round(selectivity * len(source)))
            if selectivity is not None
            else 0
        )
        while not source.exhausted:
            want = min(max(expected - len(matches), 0) + 1, batch_size)
            page = source.sorted_access_batch(want)
            if not page:
                break
            for item in page:
                if item.grade >= 1.0:
                    matches.add(item.obj)
                else:
                    return matches  # block ended inside this page
        return matches
