"""The Garlic facade: register subsystems, ask queries, get graded sets.

End-to-end usage mirroring the paper's running example:

    >>> from repro.middleware.garlic import Garlic
    >>> from repro.subsystems import RelationalSubsystem, QbicSubsystem
    >>> from repro.workloads import cd_store
    >>> albums = cd_store(60, seed=1)
    >>> garlic = Garlic()
    >>> garlic.register(RelationalSubsystem("store-db", {
    ...     a.album_id: {"Artist": a.artist, "Year": a.year, "Genre": a.genre}
    ...     for a in albums}))
    >>> garlic.register(QbicSubsystem("qbic", {
    ...     "AlbumColor": {a.album_id: a.cover_rgb for a in albums}}))
    >>> answer = garlic.query(
    ...     '(Artist = "Beatles") AND (AlbumColor ~ "red")', k=3)
    >>> len(answer.items)
    3
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.query import Query
from repro.core.semantics import STANDARD_FUZZY, FuzzySemantics
from repro.middleware.catalog import Catalog
from repro.middleware.executor import Executor, QueryAnswer
from repro.middleware.parser import parse_query
from repro.middleware.plan import PhysicalPlan
from repro.middleware.planner import Planner, PlannerOptions
from repro.subsystems.base import Subsystem

__all__ = ["Garlic"]


class Garlic:
    """A multimedia middleware instance (Sections 1-2).

    Parameters
    ----------
    semantics:
        The fuzzy evaluation rules; defaults to the standard min/max/
        (1 - x) rules that Theorem 3.1 singles out.
    options:
        Planner tuning (filtered-conjunct threshold, internal-
        conjunction opt-in).
    """

    def __init__(
        self,
        semantics: FuzzySemantics = STANDARD_FUZZY,
        options: PlannerOptions | None = None,
    ) -> None:
        self.semantics = semantics
        self.catalog = Catalog()
        self._options = options or PlannerOptions()
        self._executor = Executor(self.catalog, semantics)

    def register(self, subsystem: Subsystem) -> "Garlic":
        """Register a data server; returns self for chaining."""
        self.catalog.register(subsystem)
        return self

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def _parse(self, query: str | Query) -> Query:
        return parse_query(query) if isinstance(query, str) else query

    def _planner(self, conjunction: str) -> Planner:
        if conjunction not in ("external", "internal"):
            raise ValueError(
                f"conjunction must be 'external' or 'internal', "
                f"got {conjunction!r}"
            )
        options = self._options
        if conjunction == "internal":
            options = replace(options, allow_internal_conjunction=True)
        return Planner(self.catalog, self.semantics, options)

    def plan(
        self, query: str | Query, conjunction: str = "external"
    ) -> PhysicalPlan:
        """Plan a query without executing it."""
        return self._planner(conjunction).plan(self._parse(query))

    def query(
        self,
        query: str | Query,
        k: int = 10,
        conjunction: str = "external",
    ) -> QueryAnswer:
        """Evaluate a query and return its top-k graded answer.

        ``conjunction="internal"`` opts into Section 8 pushdown when a
        conjunction's atoms all live in one capable subsystem — with
        that subsystem's own semantics, which may differ from Garlic's.
        """
        physical = self.plan(query, conjunction)
        return self._executor.execute(physical, k)

    def explain(
        self,
        query: str | Query,
        k: int = 10,
        conjunction: str = "external",
    ) -> str:
        """The plan's human-readable strategy description."""
        return self.plan(query, conjunction).explain()

    def open_cursor(self, query: str | Query) -> "QueryCursor":
        """Open a pageable cursor over a monotone query's answers.

        Implements Section 4's "continue where we left off" at the
        middleware level: each :meth:`QueryCursor.next_page` call
        reuses all prior sorted-access progress. Only queries that
        plan to an algorithm strategy (not filtered/internal/full-scan)
        support cursors.
        """
        from repro.access.session import MiddlewareSession
        from repro.middleware.cursor import QueryCursor

        parsed = self._parse(query)
        physical = self.plan(parsed)
        from repro.middleware.plan import AlgorithmPlan

        if not isinstance(physical, AlgorithmPlan):
            from repro.exceptions import PlanningError

            raise PlanningError(
                f"query plans to {type(physical).__name__}, which does "
                "not support cursors; re-issue with a larger k instead"
            )
        raw = [
            self.catalog.subsystem_for(atom).evaluate(atom)
            for atom in physical.atoms
        ]
        session = MiddlewareSession.over_sources(
            raw, num_objects=self.catalog.num_objects
        )
        return QueryCursor(parsed, physical, session)

    def __repr__(self) -> str:
        return f"Garlic({self.catalog!r})"
