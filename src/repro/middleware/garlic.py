"""The Garlic facade: register subsystems, ask queries, get graded sets.

.. deprecated:: 2.0
    ``Garlic`` is now a thin shim over the unified
    :class:`~repro.engine.engine.Engine`, which adds fluent query
    building, pluggable strategies, result cursors, and batch
    execution. Existing call sites keep working (``query`` emits a
    :class:`DeprecationWarning`); new code should use the engine::

        engine = Engine().register(subsystem)
        answer = engine.query('(Artist = "Beatles") AND ...').top(3)

End-to-end usage mirroring the paper's running example:

    >>> from repro.middleware.garlic import Garlic
    >>> from repro.subsystems import RelationalSubsystem, QbicSubsystem
    >>> from repro.workloads import cd_store
    >>> albums = cd_store(60, seed=1)
    >>> garlic = Garlic()
    >>> garlic.register(RelationalSubsystem("store-db", {
    ...     a.album_id: {"Artist": a.artist, "Year": a.year, "Genre": a.genre}
    ...     for a in albums}))
    >>> garlic.register(QbicSubsystem("qbic", {
    ...     "AlbumColor": {a.album_id: a.cover_rgb for a in albums}}))
    >>> answer = garlic.query(
    ...     '(Artist = "Beatles") AND (AlbumColor ~ "red")', k=3)
    >>> len(answer.items)
    3
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.core.query import Query
from repro.core.semantics import STANDARD_FUZZY, FuzzySemantics
from repro.middleware.catalog import Catalog
from repro.middleware.executor import QueryAnswer
from repro.middleware.plan import PhysicalPlan
from repro.middleware.planner import PlannerOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.engine import Engine

__all__ = ["Garlic"]


class Garlic:
    """A multimedia middleware instance (Sections 1-2) — engine shim.

    Every operation delegates to an internal
    :class:`~repro.engine.engine.Engine`; :attr:`engine` exposes it as
    the migration path.

    Parameters
    ----------
    semantics:
        The fuzzy evaluation rules; defaults to the standard min/max/
        (1 - x) rules that Theorem 3.1 singles out.
    options:
        Planner tuning (filtered-conjunct threshold, internal-
        conjunction opt-in).
    """

    def __init__(
        self,
        semantics: FuzzySemantics = STANDARD_FUZZY,
        options: PlannerOptions | None = None,
    ) -> None:
        # Imported lazily: the middleware package is a dependency of the
        # engine (plans, executor), so the facade pulls the engine in at
        # construction time rather than at import time.
        from repro.engine.context import ExecutionContext
        from repro.engine.engine import Engine

        self._engine = Engine(
            ExecutionContext(
                semantics=semantics, planner=options or PlannerOptions()
            )
        )

    @property
    def engine(self) -> "Engine":
        """The unified engine this facade delegates to (migration path)."""
        return self._engine

    @property
    def semantics(self) -> FuzzySemantics:
        return self._engine.semantics

    @property
    def catalog(self) -> Catalog:
        return self._engine.catalog

    def register(self, subsystem) -> "Garlic":
        """Register a data server; returns self for chaining."""
        self._engine.register(subsystem)
        return self

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def plan(
        self, query: str | Query, conjunction: str = "external"
    ) -> PhysicalPlan:
        """Plan a query without executing it."""
        # Conjunction-mode validation happens in
        # ExecutionContext.planner_options, the single authority.
        return self._engine.plan(query, conjunction)

    def query(
        self,
        query: str | Query,
        k: int = 10,
        conjunction: str = "external",
    ) -> QueryAnswer:
        """Evaluate a query and return its top-k graded answer.

        .. deprecated:: 2.0
            Use ``garlic.engine.query(q).top(k)`` (add
            ``.conjunction("internal")`` for Section 8 pushdown).

        ``conjunction="internal"`` opts into Section 8 pushdown when a
        conjunction's atoms all live in one capable subsystem — with
        that subsystem's own semantics, which may differ from Garlic's.
        """
        warnings.warn(
            "Garlic.query() is deprecated; use "
            "Engine.query(...).top(k) (see Garlic.engine)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._engine.query(query).conjunction(conjunction).top(k)

    def explain(
        self,
        query: str | Query,
        k: int = 10,
        conjunction: str = "external",
    ) -> str:
        """The plan's human-readable strategy description."""
        return self.plan(query, conjunction).explain()

    def open_cursor(self, query: str | Query) -> "QueryCursor":
        """Open a pageable cursor over a monotone query's answers.

        Implements Section 4's "continue where we left off" at the
        middleware level; the returned
        :class:`~repro.middleware.cursor.QueryCursor` is the engine's
        :class:`~repro.engine.cursor.ResultCursor` with the historical
        ``next_page`` spelling. Only queries that plan to an algorithm
        strategy (not filtered/internal/full-scan) support cursors.
        """
        from repro.access.session import MiddlewareSession
        from repro.exceptions import PlanningError
        from repro.middleware.cursor import QueryCursor
        from repro.middleware.plan import AlgorithmPlan

        parsed = (
            self._engine._parse(query) if isinstance(query, str) else query
        )
        physical = self.plan(parsed)
        if not isinstance(physical, AlgorithmPlan):
            raise PlanningError(
                f"query plans to {type(physical).__name__}, which does "
                "not support cursors; re-issue with a larger k instead"
            )
        raw = [
            self.catalog.subsystem_for(atom).evaluate(atom)
            for atom in physical.atoms
        ]
        session = MiddlewareSession.over_sources(
            raw, num_objects=self.catalog.num_objects
        )
        return QueryCursor(parsed, physical, session)

    def __repr__(self) -> str:
        return f"Garlic({self.catalog!r})"
