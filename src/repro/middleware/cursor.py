"""Incremental query cursors: paging through a graded answer.

Section 4: "the algorithm has the nice feature that after finding the
top k answers, in order to find the next k best answers we can
'continue where we left off.'" At the middleware level this becomes a
cursor: open a monotone query once, then pull pages of answers, with
each page reusing all sorted-access progress of the previous ones.

Only :class:`~repro.middleware.plan.AlgorithmPlan` queries over
random-access-capable subsystems support cursors (the incremental
machinery is A0's); other strategies raise — re-issue the query with a
larger k instead.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKResult
from repro.algorithms.fa import IncrementalFagin
from repro.core.query import Query
from repro.exceptions import PlanningError
from repro.middleware.plan import AlgorithmPlan, PhysicalPlan

__all__ = ["QueryCursor"]


class QueryCursor:
    """A pageable answer stream for one monotone query.

    Created via :meth:`repro.middleware.garlic.Garlic.open_cursor`.

    >>> # cursor = garlic.open_cursor('(Color ~ "red") AND (Shape ~ "round")')
    >>> # page1 = cursor.next_page(10); page2 = cursor.next_page(10)
    """

    def __init__(
        self, query: Query, plan: PhysicalPlan, session: MiddlewareSession
    ) -> None:
        if not isinstance(plan, AlgorithmPlan):
            raise PlanningError(
                f"cursors require an AlgorithmPlan (monotone query over "
                f"random-access subsystems); got {type(plan).__name__}"
            )
        assert plan.aggregation is not None
        if not plan.aggregation.monotone:
            raise PlanningError(
                "cursors require a monotone aggregation (Theorem 4.2)"
            )
        self.query = query
        self.plan = plan
        self._incremental = IncrementalFagin(session, plan.aggregation)
        self._pages = 0

    @property
    def pages_fetched(self) -> int:
        return self._pages

    @property
    def answers_fetched(self) -> int:
        return len(self._incremental.returned)

    def next_page(self, k: int = 10) -> TopKResult:
        """The next ``k`` best answers after everything already paged.

        The page's :class:`~repro.algorithms.base.TopKResult` carries
        the *incremental* access cost — what this page added on top of
        the previous pages' work.
        """
        result = self._incremental.next_batch(k)
        self._pages += 1
        return result

    def __repr__(self) -> str:
        return (
            f"QueryCursor(pages={self._pages}, "
            f"answers={self.answers_fetched})"
        )
