"""Incremental query cursors: paging through a graded answer.

Section 4: "the algorithm has the nice feature that after finding the
top k answers, in order to find the next k best answers we can
'continue where we left off.'" At the middleware level this becomes a
cursor: open a monotone query once, then pull pages of answers, with
each page reusing all sorted-access progress of the previous ones.

:class:`QueryCursor` is the historical middleware spelling of the
engine's :class:`~repro.engine.cursor.ResultCursor` — same machinery,
plus the plan-type validation and the ``next_page`` method name the
original API used. Only :class:`~repro.middleware.plan.AlgorithmPlan`
queries over random-access-capable subsystems support cursors; other
strategies raise — re-issue the query with a larger k instead.
"""

from __future__ import annotations

from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKResult
from repro.core.query import Query
from repro.engine.cursor import ResultCursor
from repro.exceptions import PlanningError
from repro.middleware.plan import AlgorithmPlan, PhysicalPlan

__all__ = ["QueryCursor"]


class QueryCursor(ResultCursor):
    """A pageable answer stream for one monotone query.

    Created via :meth:`repro.middleware.garlic.Garlic.open_cursor`.

    >>> # cursor = garlic.open_cursor('(Color ~ "red") AND (Shape ~ "round")')
    >>> # page1 = cursor.next_page(10); page2 = cursor.next_page(10)
    """

    def __init__(
        self, query: Query, plan: PhysicalPlan, session: MiddlewareSession
    ) -> None:
        if not isinstance(plan, AlgorithmPlan):
            raise PlanningError(
                f"cursors require an AlgorithmPlan (monotone query over "
                f"random-access subsystems); got {type(plan).__name__}"
            )
        assert plan.aggregation is not None
        super().__init__(session, plan.aggregation, query=query)
        self.plan = plan

    def next_page(self, k: int = 10) -> TopKResult:
        """The next ``k`` best answers after everything already paged.

        The page's :class:`~repro.algorithms.base.TopKResult` carries
        the *incremental* access cost — what this page added on top of
        the previous pages' work.
        """
        return self.next_k(k)

    def __repr__(self) -> str:
        return (
            f"QueryCursor(pages={self.pages_fetched}, "
            f"answers={self.answers_fetched})"
        )
