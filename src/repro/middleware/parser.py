"""The middleware query language.

A small concrete syntax for the paper's queries, so examples read like
the text:

    (Artist = "Beatles") AND (AlbumColor ~ "red")
    (Color ~ "red") AND (Shape ~ "round")
    NOT (Genre = "rock") OR (Blurb ~ "raw soul")
    WEIGHTED(2: Color ~ "red", 1: Shape ~ "round")

Grammar (precedence: NOT > AND > OR, AND/OR n-ary and left-grouping):

    query    := or_expr
    or_expr  := and_expr ("OR" and_expr)*
    and_expr := unary ("AND" unary)*
    unary    := "NOT" unary | primary
    primary  := "(" query ")" | weighted | atom
    weighted := "WEIGHTED" "(" NUMBER ":" query ("," NUMBER ":" query)* ")"
    atom     := IDENT ("=" | "~") literal
    literal  := STRING | NUMBER | IDENT

``=`` builds a crisp atom (traditional predicate), ``~`` a graded one
(similarity match) — the two query species Section 2 reconciles.
Keywords are case-insensitive; identifiers are case-sensitive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.query import And, AtomicQuery, Not, Or, Query, Weighted
from repro.exceptions import ParseError

__all__ = ["parse_query", "render_query"]

_TOKEN_SPEC = (
    ("WS", r"\s+"),
    ("NUMBER", r"\d+(\.\d+)?"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_.]*"),
    ("OP", r"[=~(),:]"),
)
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pat})" for name, pat in _TOKEN_SPEC))

_KEYWORDS = {"and", "or", "not", "weighted"}


@dataclass(frozen=True)
class _Token:
    kind: str  # NUMBER | STRING | IDENT | OP | KEYWORD
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            if kind == "IDENT" and value.lower() in _KEYWORDS:
                tokens.append(_Token("KEYWORD", value.lower(), pos))
            else:
                tokens.append(_Token(kind, value, pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers --------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}", token.position
            )
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "KEYWORD" and token.text == word

    def _at_op(self, op: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "OP" and token.text == op

    # -- grammar ---------------------------------------------------------

    def parse(self) -> Query:
        query = self._or_expr()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}", trailing.position
            )
        return query

    def _or_expr(self) -> Query:
        operands = [self._and_expr()]
        while self._at_keyword("or"):
            self._advance()
            operands.append(self._and_expr())
        return operands[0] if len(operands) == 1 else Or(operands)

    def _and_expr(self) -> Query:
        operands = [self._unary()]
        while self._at_keyword("and"):
            self._advance()
            operands.append(self._unary())
        return operands[0] if len(operands) == 1 else And(operands)

    def _unary(self) -> Query:
        if self._at_keyword("not"):
            self._advance()
            return Not(self._unary())
        return self._primary()

    def _primary(self) -> Query:
        if self._at_op("("):
            self._advance()
            inner = self._or_expr()
            self._expect("OP", ")")
            return inner
        if self._at_keyword("weighted"):
            return self._weighted()
        return self._atom()

    def _weighted(self) -> Query:
        self._advance()  # WEIGHTED
        self._expect("OP", "(")
        weights: list[float] = []
        operands: list[Query] = []
        while True:
            number = self._expect("NUMBER")
            weights.append(float(number.text))
            self._expect("OP", ":")
            operands.append(self._or_expr())
            if self._at_op(","):
                self._advance()
                continue
            break
        self._expect("OP", ")")
        return Weighted(operands, weights)

    def _atom(self) -> AtomicQuery:
        ident = self._expect("IDENT")
        op_token = self._advance()
        if op_token.kind != "OP" or op_token.text not in ("=", "~"):
            raise ParseError(
                f"expected '=' or '~' after attribute {ident.text!r}, "
                f"found {op_token.text!r}",
                op_token.position,
            )
        target = self._literal()
        return AtomicQuery(ident.text, target=target, op=op_token.text)

    def _literal(self) -> object:
        token = self._advance()
        if token.kind == "STRING":
            body = token.text[1:-1]
            return body.replace('\\"', '"').replace("\\\\", "\\")
        if token.kind == "NUMBER":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "IDENT":
            return token.text
        raise ParseError(f"expected a literal, found {token.text!r}", token.position)


def parse_query(text: str) -> Query:
    """Parse query-language text into a :class:`~repro.core.query.Query`.

    >>> q = parse_query('(Artist = "Beatles") AND (AlbumColor ~ "red")')
    >>> len(q.atoms())
    2
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty query", 0)
    return _Parser(tokens, text).parse()


def _render_literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def render_query(query: Query) -> str:
    """Render a query AST back into parseable text (round-trips).

    >>> text = '(Artist = "Beatles") AND (AlbumColor ~ "red")'
    >>> parse_query(render_query(parse_query(text))) == parse_query(text)
    True
    """
    if isinstance(query, AtomicQuery):
        return f"{query.attribute} {query.op} {_render_literal(query.target)}"
    if isinstance(query, Not):
        return f"NOT ({render_query(query.operand)})"
    if isinstance(query, And):
        return " AND ".join(f"({render_query(q)})" for q in query.operands)
    if isinstance(query, Or):
        return " OR ".join(f"({render_query(q)})" for q in query.operands)
    if isinstance(query, Weighted):
        # repr() round-trips floats exactly, so re-parsing yields the
        # same normalised weights bit for bit.
        parts = ", ".join(
            f"{w!r}: {render_query(q)}"
            for w, q in zip(query.weights, query.operands)
        )
        return f"WEIGHTED({parts})"
    raise TypeError(f"cannot render query node {type(query).__name__}")
