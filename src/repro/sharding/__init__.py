"""Sharded multi-process execution: shared-memory columnar shards.

The first component that scales past one interpreter. A
:class:`~repro.access.columnar.ColumnarScoringDatabase` is partitioned
into S shards whose float64 columns live in shared-memory segments
(:mod:`~repro.sharding.shm`); a persistent pool of worker processes
runs exact per-shard top-k probes (:mod:`~repro.sharding.worker`); and
:class:`~repro.sharding.engine.ShardedEngine` merges them by threshold
exchange into answers — and access ledgers — identical to the
single-store run. See DESIGN.md, "Sharded execution".

Most callers never import this package directly:
``Engine.over_shards(store, shards=8, processes=4)`` builds and owns a
sharded engine behind the usual facade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "ShardSpec",
    "ShardedEngine",
    "partition_columnar",
    "shard_bounds",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sharding.engine import ShardedEngine
    from repro.sharding.partition import (
        ShardSpec,
        partition_columnar,
        shard_bounds,
    )

_EXPORTS = {
    "ShardedEngine": ("repro.sharding.engine", "ShardedEngine"),
    "ShardSpec": ("repro.sharding.partition", "ShardSpec"),
    "partition_columnar": ("repro.sharding.partition", "partition_columnar"),
    "shard_bounds": ("repro.sharding.partition", "shard_bounds"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
