"""The shard worker: module-level, spawn-safe probe functions.

Everything a pool worker executes lives here as plain module functions
so the ``spawn`` start method can re-import them by qualified name —
no closures, no bound methods, no engine state crosses the process
boundary. What does cross is small and picklable: a
:class:`~repro.sharding.partition.ShardSpec` (an attach recipe), an
aggregation (by wire name, or a picklable instance), and ints.

**Warm attach.** The first probe against a shard attaches its segment
and wraps it as a columnar store; the ``(segment, store)`` pair is
cached in a module global keyed by token, so every later probe — the
steady state — pays only the query itself. Pool initializers call
:func:`_bootstrap` to prewarm the cache before the first real query.

**Probe contract.** :func:`run_probe` runs one exact top-k' against
one shard and returns a :class:`ProbeResult` of plain data:

* ``items`` — the shard's true local top-k' as ``(obj, grade)`` pairs
  in the global answer order (descending grade, library tie-break);
* ``frontier`` — the k'-th (last returned) grade. Exactness of the
  local algorithm guarantees every *unreturned* shard object grades
  at or below the frontier, which is the inequality the coordinator's
  threshold exchange reasons with;
* ``exhausted`` — the probe returned the whole shard, so the frontier
  hides nothing;
* the probe's own per-list access counts, so the coordinator can sum
  an exact Section 5 ledger.

A probe is a pure function of ``(shard bytes, aggregation, k',
strategy)`` — re-probing at larger k' re-runs the local algorithm from
scratch and is charged again, the library's usual "a restart is a
re-issued subquery" rule. That purity is what makes the merged ledger
bit-identical across pool widths and against the inline reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.aggregation import AggregationFunction
from repro.core.means import (
    ARITHMETIC_MEAN,
    GEOMETRIC_MEAN,
    HARMONIC_MEAN,
)
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.engine.registry import select_strategy
from repro.exceptions import ShardingError
from repro.sharding.partition import ShardSpec, attach_store

__all__ = [
    "ProbeResult",
    "WIRE_AGGREGATIONS",
    "run_probe",
    "run_probe_batch",
]

#: Aggregations addressable by name across the process boundary. The
#: same vocabulary the serving wire protocol exposes, duplicated here
#: (rather than imported) so the sharding layer does not depend on the
#: serving layer above it. Unnamed aggregations still work when their
#: instances pickle; these names are the fast, always-safe path.
WIRE_AGGREGATIONS: dict[str, AggregationFunction] = {
    "min": MINIMUM,
    "max": MAXIMUM,
    "mean": ARITHMETIC_MEAN,
    "geometric-mean": GEOMETRIC_MEAN,
    "harmonic-mean": HARMONIC_MEAN,
    "product": ALGEBRAIC_PRODUCT,
}

#: token -> (segment, store); the per-process warm-attach cache.
_ATTACHED: dict[tuple, tuple] = {}


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """One shard's exact local top-k', as plain picklable data."""

    shard: int
    asked: int
    items: tuple  # ((obj, grade), ...) in global answer order
    sorted_by_list: tuple
    random_by_list: tuple
    frontier: float
    exhausted: bool
    algorithm: str


def _resolve_aggregation(aggregation) -> AggregationFunction:
    if isinstance(aggregation, str):
        try:
            return WIRE_AGGREGATIONS[aggregation]
        except KeyError:
            raise ShardingError(
                f"unknown wire aggregation {aggregation!r}; known: "
                f"{', '.join(sorted(WIRE_AGGREGATIONS))}"
            ) from None
    if isinstance(aggregation, AggregationFunction):
        return aggregation
    raise ShardingError(
        f"cannot resolve aggregation {aggregation!r} in a shard worker"
    )


def _attached_store(spec: ShardSpec):
    entry = _ATTACHED.get(spec.token)
    if entry is None:
        entry = attach_store(spec)
        _ATTACHED[spec.token] = entry
    return entry[1]


def _bootstrap(specs) -> None:
    """Pool initializer: attach every shard this worker will serve."""
    for spec in specs:
        _attached_store(spec)


def _detach_all() -> None:
    """Drop every cached attach (also used by the inline path's owner
    process, where leftover views would pin the segments it unlinks)."""
    while _ATTACHED:
        _token, (segment, _store) = _ATTACHED.popitem()
        del _store
        segment.close()


def _pid() -> int:
    """The worker's process id (liveness probes, crash tests)."""
    return os.getpid()


def run_probe(
    spec: ShardSpec,
    aggregation,
    k: int,
    strategy: str | None = None,
) -> ProbeResult:
    """Exact local top-``k`` of one shard, plus frontier and ledger."""
    store = _attached_store(spec)
    agg = _resolve_aggregation(aggregation)
    k = min(k, store.num_objects)
    choice = select_strategy(
        agg, store.num_lists, random_access=True, require=strategy
    )
    result = choice.algorithm.top_k(store.session(), agg, k)
    items = tuple((item.obj, item.grade) for item in result.items)
    return ProbeResult(
        shard=spec.index,
        asked=k,
        items=items,
        sorted_by_list=result.stats.sorted_by_list,
        random_by_list=result.stats.random_by_list,
        frontier=items[-1][1] if items else 0.0,
        exhausted=k >= store.num_objects,
        algorithm=result.algorithm,
    )


def run_probe_batch(requests) -> tuple:
    """Many probes in one task: the coordinator's transport batch.

    ``requests`` is a sequence of ``(spec, aggregation, k, strategy)``
    tuples; results come back in the same order. One submit per pool
    per merge round amortises the coordinator's per-task cost (pickle,
    queue feeder, pipe wakeup) — which otherwise rivals a small probe
    itself — across every probe pinned to this worker. The probes are
    exactly :func:`run_probe`, so the ledger is unchanged.
    """
    return tuple(run_probe(*request) for request in requests)
