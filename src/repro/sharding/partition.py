"""Partitioning a columnar store into shared-memory shards.

**The partitioning invariant.** Shards split the *object* axis, never
the list axis: shard ``s`` receives a contiguous slice of the interned
object range, carrying all m grade columns restricted to that slice.
Because :func:`~repro.access.columnar.rank_orders` sorts by the total
order ``(-grade, tie_break_key)``, a shard's local rank order is
exactly the restriction of the global order to its objects — so a
shard is itself a complete, self-consistent
:class:`~repro.access.columnar.ColumnarScoringDatabase` over its
sub-population, and any exact top-k algorithm run against it returns
the true local top-k with the same tie-break the global store uses.
That is the property the threshold-exchange merge builds on.

**Segment layout.** One segment per shard::

    [0:8)                    little-endian uint64 L = len(header)
    [8:8+L)                  pickled header dict (objects, dims, offsets)
    [columns_offset: +8mn)   m x n float64 grade columns, C order
    [orders_offset:  +8mn)   m x n int64 rank permutations, C order

Both array blocks are 64-byte aligned. The header carries the object
ids (pickled — ids are arbitrary hashables), the dimensions, and the
two offsets, so attaching is self-describing: a worker needs only the
``(backend, name, size)`` token.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass

from repro.access.columnar import ColumnarScoringDatabase, rank_orders
from repro.core.kernels import HAVE_NUMPY
from repro.exceptions import ShardingError
from repro.sharding.shm import attach_segment, create_segment

if HAVE_NUMPY:
    import numpy as _np

__all__ = ["ShardSpec", "attach_store", "partition_columnar", "shard_bounds"]

_ALIGN = 64


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """The picklable description of one shard a worker can attach."""

    index: int
    token: tuple
    num_objects: int
    num_lists: int


def shard_bounds(num_objects: int, num_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, end)`` slices of the object range.

    Sizes differ by at most one (the first ``N mod S`` shards take the
    extra object), every shard is non-empty, and the slices cover the
    range exactly — the partitioning invariant's arithmetic half.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    if num_shards > num_objects:
        raise ValueError(
            f"cannot split {num_objects} objects into {num_shards} "
            "non-empty shards"
        )
    base, extra = divmod(num_objects, num_shards)
    bounds = []
    start = 0
    for s in range(num_shards):
        end = start + base + (1 if s < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def partition_columnar(
    store: ColumnarScoringDatabase,
    num_shards: int,
    *,
    backend: str | None = None,
) -> tuple[list[ShardSpec], list]:
    """Split ``store`` into shards backed by owned segments.

    Returns ``(specs, segments)``: the picklable specs workers attach
    from, and the segment handles the **caller now owns** — it must
    ``close()`` and ``unlink()`` each when done (ShardedEngine does
    this in :meth:`~repro.sharding.engine.ShardedEngine.close`).
    """
    if not HAVE_NUMPY:
        raise ShardingError(
            "sharded execution requires numpy (shared-memory segments "
            "hold raw float64/int64 columns)"
        )
    bounds = shard_bounds(store.num_objects, num_shards)
    objects = store.interned_objects
    matrix = store.grades_matrix()  # (m, N) float64, ground truth
    m = store.num_lists

    specs: list[ShardSpec] = []
    segments: list = []
    try:
        for s, (start, end) in enumerate(bounds):
            shard_objects = objects[start:end]
            shard_matrix = _np.ascontiguousarray(matrix[:, start:end])
            n = end - start
            orders = rank_orders(shard_objects, list(shard_matrix))

            header_probe = pickle.dumps(
                {
                    "objects": shard_objects,
                    "num_lists": m,
                    "num_objects": n,
                    "columns_offset": 0,
                    "orders_offset": 0,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            # Offsets depend on the header length; re-pickling with the
            # real offsets keeps the length stable because the ints
            # occupy fixed-width pickle frames only past 2**31 — guard
            # by padding the probe, not by assuming.
            columns_offset = _aligned(8 + len(header_probe) + 64)
            orders_offset = _aligned(columns_offset + 8 * m * n)
            total = orders_offset + 8 * m * n
            header = pickle.dumps(
                {
                    "objects": shard_objects,
                    "num_lists": m,
                    "num_objects": n,
                    "columns_offset": columns_offset,
                    "orders_offset": orders_offset,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            if 8 + len(header) > columns_offset:  # pragma: no cover
                raise ShardingError("shard header overflowed its slack")

            segment = create_segment(total, prefer=backend)
            segments.append(segment)
            buf = segment.buf
            buf[0:8] = struct.pack("<Q", len(header))
            buf[8 : 8 + len(header)] = header
            columns_view = _np.frombuffer(
                buf, dtype=_np.float64, count=m * n, offset=columns_offset
            ).reshape(m, n)
            columns_view[:] = shard_matrix
            orders_view = _np.frombuffer(
                buf, dtype=_np.int64, count=m * n, offset=orders_offset
            ).reshape(m, n)
            for i, order in enumerate(orders):
                orders_view[i] = order
            # Drop the writing views before returning so the owner's
            # later close() is not pinned by leftover exports.
            del columns_view, orders_view, buf

            specs.append(
                ShardSpec(
                    index=s,
                    token=segment.token(),
                    num_objects=n,
                    num_lists=m,
                )
            )
    except BaseException:
        for segment in segments:
            segment.close()
            segment.unlink()
        raise
    return specs, segments


def attach_store(spec: ShardSpec):
    """Attach a shard and wrap it as a columnar store (worker side).

    Returns ``(segment, store)``. The store's columns and orders are
    zero-copy views over the segment buffer; the caller must keep the
    segment handle alive as long as the store is used and ``close()``
    it afterwards. No grades are re-validated and no orders recomputed
    — attach is O(m) plus the header unpickle.
    """
    if not HAVE_NUMPY:  # pragma: no cover - guarded at partition time
        raise ShardingError("sharded execution requires numpy")
    segment = attach_segment(spec.token)
    try:
        buf = segment.buf
        (header_len,) = struct.unpack("<Q", bytes(buf[0:8]))
        header = pickle.loads(bytes(buf[8 : 8 + header_len]))
        m = header["num_lists"]
        n = header["num_objects"]
        columns = _np.frombuffer(
            buf,
            dtype=_np.float64,
            count=m * n,
            offset=header["columns_offset"],
        ).reshape(m, n)
        orders = _np.frombuffer(
            buf,
            dtype=_np.int64,
            count=m * n,
            offset=header["orders_offset"],
        ).reshape(m, n)
        store = ColumnarScoringDatabase.from_frozen_arrays(
            header["objects"],
            [columns[i] for i in range(m)],
            [orders[i] for i in range(m)],
        )
    except ShardingError:
        segment.close()
        raise
    except Exception as exc:
        segment.close()
        raise ShardingError(
            f"could not attach shard {spec.index} from segment "
            f"{spec.token[1]!r}: {exc}"
        ) from exc
    return segment, store
