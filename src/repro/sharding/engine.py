"""The sharded coordinator: process pools + threshold-exchange merge.

:class:`ShardedEngine` is the multi-process counterpart of running one
exact top-k algorithm over the whole store. It partitions a columnar
store into S shared-memory shards (:mod:`repro.sharding.partition`),
keeps P single-worker process pools warm over them, and answers each
query with the classic distributed-TA *threshold exchange*:

1. **Probe.** Every shard returns its exact local top-k plus its
   frontier θ_s — the k-th local grade. Local exactness means every
   *unreturned* object of shard s grades ≤ θ_s.
2. **Exchange.** The coordinator pools all returned candidates and
   computes τ, the k-th best pooled grade. Because the pool contains
   each shard's k best, τ is ≥ every θ_s and ≤ the true global k-th
   grade τ*.
3. **Re-probe.** Only shards with θ_s ≥ τ (and objects left) can hide
   a candidate that still matters; each is re-probed at doubled depth.
   A shard with θ_s < τ hides only objects graded strictly below
   τ ≤ τ*, which can never displace a pooled candidate — it is done.
4. **Merge.** At termination every object graded ≥ τ* is pooled, so
   :func:`~repro.algorithms.base.top_k_of` over the pool — the same
   selection with the same tie-break the single store uses — returns
   the exact global answer.

Termination: a re-probed shard's depth doubles each round, so it
reaches "whole shard returned" (``exhausted``) in O(log n_s) rounds;
with k0 = k the first τ already dominates every frontier, so a second
round happens only on grade ties at the threshold.

**Accounting.** Probes are pure functions of (shard, aggregation, k',
strategy); a re-probe re-runs the local algorithm from scratch and is
charged in full (a restart is a re-issued subquery). The result's
:class:`~repro.access.cost.AccessStats` sums every probe executed —
a deterministic quantity, bit-identical across pool widths 1/2/4/8
and equal to the inline (``processes=0``) reference, because nothing
about the merge depends on which process ran a probe or when it
finished. Parallelism changes wall-clock, never the ledger.

**Pool shape.** ``ProcessPoolExecutor`` cannot route a task to a
chosen worker, but warm attach wants shard s to always land on the
same process — so the engine keeps P independent single-worker pools
and pins shard s to pool ``s mod P``. Each worker therefore maps only
``ceil(S/P)`` shards (bounded memory), pools prewarm their shards via
the spawn-safe :func:`~repro.sharding.worker._bootstrap` initializer,
and one crashed worker breaks one pool, not the fleet.

**Transport batching.** The coordinator's per-task submit path —
pickle, queue-feeder thread, pipe wakeup — costs on the order of a
small probe itself, so submitting one task per probe caps throughput
at the coordinator's pump rate no matter how many pools exist. Every
merge round therefore ships ONE task per pool carrying all of that
pool's probe requests (:func:`~repro.sharding.worker.run_probe_batch`),
and ``run_many`` batches a whole round of every in-flight query into
the same P tasks. The probes executed are identical either way —
batching is transport, never accounting.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from typing import Iterable

from repro.access.cost import AccessStats
from repro.algorithms.base import TopKResult, top_k_of
from repro.core.aggregation import AggregationFunction
from repro.core.certify import EXACT_GUARANTEE, Guarantee, QualityContract
from repro.exceptions import InsufficientObjectsError, ShardingError
from repro.sharding import worker as _worker
from repro.sharding.partition import partition_columnar

__all__ = ["ShardedEngine"]

#: Default start method. ``spawn`` everywhere: ``fork`` inherits the
#: parent's threads mid-state (unsafe under a serving process's pools)
#: and does not exist on every platform. Tests cover both.
DEFAULT_START_METHOD = "spawn"


class ShardedEngine:
    """Exact top-k over S shared-memory shards in P worker processes.

    Parameters
    ----------
    store:
        The :class:`~repro.access.columnar.ColumnarScoringDatabase`
        to partition. Its contents are *copied* into segments once at
        construction; the original store is not referenced afterwards.
    shards:
        S, the number of partitions (1 <= S <= N).
    processes:
        P, the pool width. ``None`` picks ``min(S, cpu_count)``;
        ``0`` runs every probe inline in the calling process — the
        zero-infrastructure reference the parity tests compare pools
        against (same segments, same worker code, no pools).
    start_method:
        ``"spawn"`` (default), ``"fork"`` or ``"forkserver"``.
    backend:
        Segment backend override (``"shm"`` / ``"mmap"``); ``None``
        prefers shm with mmap fallback.
    """

    def __init__(
        self,
        store,
        *,
        shards: int,
        processes: int | None = None,
        start_method: str | None = None,
        backend: str | None = None,
    ) -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ValueError(f"shards must be a positive int, got {shards!r}")
        if processes is not None and (
            isinstance(processes, bool)
            or not isinstance(processes, int)
            or processes < 0
        ):
            raise ValueError(
                f"processes must be a non-negative int or None, got "
                f"{processes!r}"
            )
        self._specs, self._segments = partition_columnar(
            store, shards, backend=backend
        )
        self._num_objects = sum(spec.num_objects for spec in self._specs)
        self._num_lists = self._specs[0].num_lists
        if processes is None:
            import os

            processes = min(shards, os.cpu_count() or 1)
        self._processes = processes
        self._start_method = start_method or DEFAULT_START_METHOD
        self._backend = self._segments[0].backend
        self._lock = threading.Lock()
        self._counters = {
            "queries": 0,
            "probes": 0,
            "reprobes": 0,
            "merge_rounds": 0,
        }
        self._closed = False
        self._broken = False
        self._pools: list[ProcessPoolExecutor] = []
        if processes > 0:
            import multiprocessing

            try:
                ctx = multiprocessing.get_context(self._start_method)
            except ValueError:
                self._release_segments()
                raise ShardingError(
                    f"start method {self._start_method!r} is not "
                    "available on this platform"
                ) from None
            try:
                for p in range(processes):
                    owned = [
                        spec
                        for s, spec in enumerate(self._specs)
                        if s % processes == p
                    ]
                    self._pools.append(
                        ProcessPoolExecutor(
                            max_workers=1,
                            mp_context=ctx,
                            initializer=_worker._bootstrap,
                            initargs=(owned,),
                        )
                    )
            except BaseException:
                self.close()
                raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._specs)

    @property
    def num_objects(self) -> int:
        return self._num_objects

    @property
    def num_lists(self) -> int:
        return self._num_lists

    @property
    def processes(self) -> int:
        return self._processes

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def start_method(self) -> str:
        return self._start_method

    def segment_names(self) -> tuple[str, ...]:
        """The segment names/paths this engine owns (leak tests)."""
        return tuple(segment.name for segment in self._segments)

    def worker_pids(self) -> tuple[int, ...]:
        """The live worker pid behind each pool (spawning if cold)."""
        self._require_open()
        if not self._pools:
            return ()
        futures = [pool.submit(_worker._pid) for pool in self._pools]
        try:
            return tuple(future.result() for future in futures)
        except BrokenProcessPool as exc:
            self._broken = True
            raise ShardingError(f"a shard worker pool is broken: {exc}") from exc

    def pool_health(self) -> dict:
        """Liveness of the worker pools, as a plain dict (``/healthz``).

        Probes every pool with a trivial task; a broken pool (worker
        SIGKILLed, failed spawn) counts as dead rather than raising.
        """
        alive = 0
        pids: list[int] = []
        if not self._closed:
            for pool in self._pools:
                try:
                    pids.append(pool.submit(_worker._pid).result(timeout=30))
                    alive += 1
                except Exception:
                    self._broken = True
        return {
            "processes": self._processes,
            "alive": alive,
            "pids": pids,
            "broken": self._broken or self._closed,
        }

    def metrics(self) -> dict:
        """Cumulative sharding counters (``Engine.metrics_snapshot``)."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "shards": self.num_shards,
            "processes": self._processes,
            "backend": self._backend,
            "start_method": self._start_method if self._pools else None,
            "pool_alive": bool(self._pools) and not self._broken and not self._closed,
            **counters,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the pools down and unlink every segment (idempotent).

        Order matters: pools first (workers detach by dying), then the
        owner's own cached attaches from inline runs, then the
        segments' names. After close every query raises
        :class:`~repro.exceptions.ShardingError`.
        """
        if self._closed:
            return
        self._closed = True
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        self._pools = []
        self._release_segments()

    def _release_segments(self) -> None:
        # Inline probes attach through the same worker cache as pool
        # workers — in this process. Drop those views first or the
        # buffers stay pinned.
        _worker._detach_all()
        for segment in self._segments:
            segment.close()
            segment.unlink()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ShardingError("this ShardedEngine is closed")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def top_k(
        self,
        aggregation: "AggregationFunction | str",
        k: int,
        *,
        strategy: str | None = None,
        contract: QualityContract | None = None,
    ) -> TopKResult:
        """The global top-k, merged by threshold exchange.

        ``strategy`` names a registry strategy to force *per shard*
        (the merge is strategy-agnostic — it only needs local
        exactness); ``None`` lets each shard auto-select.

        ``contract`` relaxes the *merge*, never the shards: local
        probes stay exact, but under ε > 0 a shard is dropped from
        re-probing as soon as its frontier θ_s < (1+ε)·τ. Every object
        it then hides grades ≤ θ_s < (1+ε)·τ ≤ (1+ε)·g_k, which is
        exactly the θ-approximate certificate — so ε-stopping composes
        across shards without any shard knowing about ε. At ε = 0 the
        comparison is the verbatim exact test (bit-identical merge).
        """
        self._require_open()
        merge = self._start_merge(aggregation, k, strategy, contract)
        while merge.pending:
            for _tag, s, probe in self._run_round(
                (None, request) for request in merge.requests()
            ):
                merge.absorb(s, probe)
            merge.advance()
        return merge.finish()

    def run_many(
        self,
        specs: Iterable[tuple["AggregationFunction | str", int]],
        *,
        strategy: str | None = None,
        contract: QualityContract | None = None,
    ) -> list[TopKResult]:
        """Run a batch of ``(aggregation, k)`` queries across the pool.

        The whole batch merges round-synchronously: every in-flight
        query's probe requests for the current round are shipped in
        the same P per-pool tasks, so the workers chew one big batch
        per round instead of hundreds of per-probe round trips (the
        coordinator's submit path would otherwise cap throughput —
        see the module docstring). Results come back in input order,
        each with the same deterministic ledger it would have alone:
        batching changes the transport, never which probes run.
        """
        requests = list(specs)
        if not requests:
            return []
        self._require_open()
        if self._processes == 0 or len(requests) == 1:
            return [
                self.top_k(agg, k, strategy=strategy, contract=contract)
                for agg, k in requests
            ]
        merges = [
            self._start_merge(agg, k, strategy, contract)
            for agg, k in requests
        ]
        active = [i for i, merge in enumerate(merges) if merge.pending]
        while active:
            tagged = [
                (i, request)
                for i in active
                for request in merges[i].requests()
            ]
            for i, s, probe in self._run_round(tagged):
                merges[i].absorb(s, probe)
            active = [i for i in active if merges[i].advance()]
        return [merge.finish() for merge in merges]

    def _start_merge(
        self, aggregation, k, strategy, contract=None
    ) -> "_QueryMerge":
        """Validate one query and open its merge state (no probes yet)."""
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            raise ValueError(f"k must be a positive int, got {k!r}")
        if k > self._num_objects:
            raise InsufficientObjectsError(k, self._num_objects)
        return _QueryMerge(
            self, self._wire_aggregation(aggregation), k, strategy, contract
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _wire_aggregation(self, aggregation):
        """Prefer the wire name; fall back to pickling the instance."""
        if isinstance(aggregation, str):
            if aggregation not in _worker.WIRE_AGGREGATIONS:
                raise ShardingError(
                    f"unknown wire aggregation {aggregation!r}; known: "
                    f"{', '.join(sorted(_worker.WIRE_AGGREGATIONS))}"
                )
            return aggregation
        for name, known in _worker.WIRE_AGGREGATIONS.items():
            if aggregation is known:
                return name
        if not isinstance(aggregation, AggregationFunction):
            raise ShardingError(
                "sharded queries take an AggregationFunction or a wire "
                f"name, got {type(aggregation).__name__}"
            )
        return aggregation

    def _run_round(self, tagged):
        """Execute one transport round of probes.

        ``tagged`` is an iterable of ``(tag, (shard, spec, wire, k,
        strategy))`` — the tag routes each result back to its owner
        (the query index in ``run_many``; ignored by ``top_k``).
        Pooled mode ships ONE task per pool carrying every probe
        pinned to it; inline mode runs them directly. Yields
        ``(tag, shard, ProbeResult)``.
        """
        if not self._pools:
            for tag, (s, spec, wire, asked, strategy) in tagged:
                yield tag, s, _worker.run_probe(spec, wire, asked, strategy)
            return
        by_pool: dict[int, list] = {}
        for tag, request in tagged:
            by_pool.setdefault(request[0] % self._processes, []).append(
                (tag, request)
            )
        futures = [
            (
                p,
                entries,
                self._pools[p].submit(
                    _worker.run_probe_batch,
                    tuple(request[1:] for _, request in entries),
                ),
            )
            for p, entries in by_pool.items()
        ]
        for p, entries, future in futures:
            try:
                probes = future.result()
            except BrokenProcessPool as exc:
                self._broken = True
                shards = sorted({request[0] for _, request in entries})
                raise ShardingError(
                    f"shard worker died mid-probe (pool {p}, "
                    f"shards {shards}): {exc}"
                ) from exc
            for (tag, request), probe in zip(entries, probes):
                yield tag, request[0], probe

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(shards={self.num_shards}, "
            f"processes={self._processes}, backend={self._backend!r}, "
            f"N={self._num_objects}, m={self._num_lists})"
        )


class _QueryMerge:
    """One query's threshold-exchange merge, transport-agnostic.

    The state machine behind both :meth:`ShardedEngine.top_k` (one
    merge driven alone) and :meth:`ShardedEngine.run_many` (many
    merges driven round-synchronously, their probe requests batched
    into the same per-pool tasks). The cycle per round is
    ``requests() -> absorb(each probe) -> advance()``; ``advance``
    returns whether another round is needed, and ``finish`` seals the
    counters and builds the :class:`TopKResult`. Every probe executed
    is charged, including ones a deeper re-probe supersedes (a restart
    is a re-issued subquery) — so stats accumulate at absorb time, not
    from the surviving per-shard results.
    """

    __slots__ = (
        "_engine",
        "wire",
        "k",
        "strategy",
        "epsilon",
        "asked",
        "results",
        "stats",
        "probes",
        "reprobes",
        "rounds",
        "pending",
        "tau",
        "relaxed_drops",
    )

    def __init__(
        self,
        engine: ShardedEngine,
        wire,
        k: int,
        strategy: str | None,
        contract=None,
    ) -> None:
        self._engine = engine
        self.wire = wire
        self.k = k
        self.strategy = strategy
        self.epsilon = 0.0 if contract is None else contract.epsilon
        self.asked = [min(k, spec.num_objects) for spec in engine._specs]
        self.results: dict[int, _worker.ProbeResult] = {}
        self.stats = AccessStats(
            (0,) * engine._num_lists, (0,) * engine._num_lists
        )
        self.probes = self.reprobes = self.rounds = 0
        self.pending = list(range(engine.num_shards))
        self.tau: float | None = None
        #: Shards the ε-relaxed test retired that the exact test would
        #: have re-probed. Zero means the merge ran to exact completion
        #: and the result honestly carries the ``exact`` guarantee even
        #: under an approximate contract.
        self.relaxed_drops = 0

    def requests(self):
        """This round's probe requests: ``(shard, spec, wire, k', strategy)``."""
        self.rounds += 1
        return [
            (s, self._engine._specs[s], self.wire, self.asked[s], self.strategy)
            for s in self.pending
        ]

    def absorb(self, s: int, probe: "_worker.ProbeResult") -> None:
        self.results[s] = probe
        self.stats = self.stats + AccessStats(
            tuple(probe.sorted_by_list), tuple(probe.random_by_list)
        )

    def advance(self) -> bool:
        """Exchange thresholds; returns True when a re-probe round is due."""
        self.probes += len(self.pending)
        pool_items = [
            pair for probe in self.results.values() for pair in probe.items
        ]
        # τ: the k-th best pooled grade. Fewer than k pooled items can
        # only happen while some shard is still deepening (the engine
        # checked k <= N up front), in which case every unexhausted
        # shard must deepen — model that as τ = -inf.
        if len(pool_items) >= self.k:
            tau = heapq.nlargest(self.k, (g for _, g in pool_items))[-1]
        else:
            tau = None
        self.tau = tau
        # The ε-relaxed retirement bar. At ε = 0 the comparison below
        # is the verbatim exact test (no 1.0·τ float round-trip), so
        # the exact merge is bit-identical to the pre-contract code.
        # Under ε > 0 a shard with θ_s < (1+ε)·τ hides only objects
        # graded below (1+ε)·τ ≤ (1+ε)·g_k — the θ-approximate
        # certificate — so it needs no re-probe.
        bar = (
            tau
            if tau is None or self.epsilon == 0.0
            else (1.0 + self.epsilon) * tau
        )
        pending = []
        for s in range(self._engine.num_shards):
            probe = self.results[s]
            if probe.exhausted:
                continue
            if bar is None or probe.frontier >= bar:
                pending.append(s)
            elif probe.frontier >= tau:
                # Retired by the slack alone: the exact merge would
                # have deepened this shard, so the answer is certified
                # approximate, not exact.
                self.relaxed_drops += 1
        self.pending = pending
        for s in self.pending:
            spec = self._engine._specs[s]
            self.asked[s] = min(spec.num_objects, max(2 * self.asked[s], self.k))
        self.reprobes += len(self.pending)
        return bool(self.pending)

    def finish(self) -> TopKResult:
        engine = self._engine
        items = top_k_of(
            [pair for probe in self.results.values() for pair in probe.items],
            self.k,
        )
        with engine._lock:
            engine._counters["queries"] += 1
            engine._counters["probes"] += self.probes
            engine._counters["reprobes"] += self.reprobes
            engine._counters["merge_rounds"] += self.rounds
        inner = self.results[0].algorithm if self.results else "?"
        details = {
            "shards": engine.num_shards,
            "processes": engine._processes,
            "backend": engine._backend,
            "merge_rounds": self.rounds,
            "probes": self.probes,
            "reprobes": self.reprobes,
            "per_shard_asked": tuple(self.asked),
            "threshold_exchange": True,
        }
        if self.relaxed_drops:
            guarantee = Guarantee(
                "approximate", self.epsilon, threshold=self.tau
            )
            details["epsilon"] = self.epsilon
            details["relaxed_drops"] = self.relaxed_drops
        else:
            # Either an exact contract, or the slack never fired: the
            # merge ran to exact completion and says so.
            guarantee = EXACT_GUARANTEE
        return TopKResult(
            items,
            self.stats,
            f"sharded-{inner}",
            details=details,
            guarantee=guarantee,
        )
