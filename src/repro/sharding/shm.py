"""Shared-memory segments: the transport under sharded columns.

A *segment* is a named region of bytes one process creates and fills
and any number of worker processes attach read-only. Two backends
implement the same four-method surface (``buf``, ``token``, ``close``,
``unlink``):

* **shm** — :class:`multiprocessing.shared_memory.SharedMemory`
  (POSIX ``shm_open``, visible under ``/dev/shm`` on Linux). The
  preferred backend: attach is a pure ``mmap`` of an existing kernel
  object, no filesystem I/O.
* **mmap** — a sized temporary file mapped with :mod:`mmap`. The
  fallback for platforms or containers without a usable POSIX shm
  mount; same zero-copy property once mapped, at the cost of going
  through the filesystem.

**Ownership and lifecycle.** Exactly one process — the one that called
:func:`create_segment` — *owns* a segment and is the only one allowed
to :meth:`~ShmSegment.unlink` it. Workers attach via the segment's
pickled :func:`token <attach_segment>` and only ever ``close`` their
mapping (worker death releases it implicitly, which is why a SIGKILLed
worker cannot leak a segment: the name lives on until the owner
unlinks, and the owner's clean ``close()`` — or, if the owner itself
dies, the ``multiprocessing`` resource tracker that registered the
segment at creation — removes it).

**The attach-registration trap.** On CPython < 3.13,
``SharedMemory(name=...)`` *attach* also registers the segment with
the resource tracker (python/cpython #82300). For independent
processes that would be fatal — their own tracker would unlink a
segment they never owned at exit. Our workers are always
``multiprocessing`` children, which inherit the *coordinator's*
tracker, so the duplicate register is a harmless set-add there; an
explicit ``unregister`` after attach would instead erase the owner's
registration in that same shared tracker and break crash cleanup.
Hence: ``track=False`` where the stdlib offers it (3.13+), plain
attach otherwise, never unregister.
"""

from __future__ import annotations

import mmap
import os
import secrets
import tempfile

from repro.exceptions import ShardingError

__all__ = [
    "SHM_AVAILABLE",
    "MmapSegment",
    "ShmSegment",
    "attach_segment",
    "create_segment",
]

try:
    from multiprocessing import shared_memory as _shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - stdlib module, always present
    _shared_memory = None
    SHM_AVAILABLE = False

#: Prefix of every segment name/file this module creates — what the
#: leak tests scan ``/dev/shm`` for.
SEGMENT_PREFIX = "repro_shard_"


def _untracked_attach(name: str):
    """Attach an existing shm block without taking over its cleanup."""
    assert _shared_memory is not None
    try:
        # Python >= 3.13 spells it directly.
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # < 3.13: the attach registers with the shared tracker — a
        # no-op set-add, see the module docstring. Do NOT unregister.
        return _shared_memory.SharedMemory(name=name)


class ShmSegment:
    """A POSIX shared-memory segment (``/dev/shm`` on Linux)."""

    backend = "shm"

    def __init__(self, shm, size: int, *, owner: bool) -> None:
        self._shm = shm
        self._size = size
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, size: int) -> "ShmSegment":
        if _shared_memory is None:  # pragma: no cover
            raise ShardingError("multiprocessing.shared_memory unavailable")
        # Explicit names (rather than the stdlib's anonymous ones) give
        # the leak tests a recognisable prefix to scan for; retry on
        # the astronomically unlikely collision.
        for _ in range(16):
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(8)}"
            try:
                shm = _shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except FileExistsError:  # pragma: no cover - 64-bit token
                continue
            return cls(shm, size, owner=True)
        raise ShardingError(  # pragma: no cover - unreachable in practice
            "could not allocate a unique shared-memory name"
        )

    @classmethod
    def attach(cls, name: str, size: int) -> "ShmSegment":
        if _shared_memory is None:  # pragma: no cover
            raise ShardingError("multiprocessing.shared_memory unavailable")
        try:
            shm = _untracked_attach(name)
        except FileNotFoundError:
            raise ShardingError(
                f"shared-memory segment {name!r} does not exist (was the "
                "owning engine closed while workers were still attached?)"
            ) from None
        return cls(shm, size, owner=False)

    @property
    def buf(self):
        return self._shm.buf

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._size

    def token(self) -> tuple:
        """The picklable attach recipe workers receive."""
        return ("shm", self._shm.name, self._size)

    def close(self) -> None:
        """Release this process's mapping (idempotent).

        Live numpy views over the buffer keep the mapping pinned; the
        ``BufferError`` that raises is swallowed because the segment is
        about to be unlinked anyway — the mapping dies with the last
        view, the *name* dies with :meth:`unlink`.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment's name (owner only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class MmapSegment:
    """A sized temporary file mapped into memory — the shm fallback."""

    backend = "mmap"

    def __init__(self, path: str, fileobj, mapping, size: int, *, owner: bool) -> None:
        self._path = path
        self._file = fileobj
        self._map = mapping
        self._size = size
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, size: int) -> "MmapSegment":
        fd, path = tempfile.mkstemp(prefix=SEGMENT_PREFIX, suffix=".seg")
        try:
            os.ftruncate(fd, size)
            fileobj = os.fdopen(fd, "r+b")
        except BaseException:
            os.close(fd)
            os.unlink(path)
            raise
        mapping = mmap.mmap(fileobj.fileno(), size, access=mmap.ACCESS_WRITE)
        return cls(path, fileobj, mapping, size, owner=True)

    @classmethod
    def attach(cls, path: str, size: int) -> "MmapSegment":
        try:
            fileobj = open(path, "rb")
            mapping = mmap.mmap(
                fileobj.fileno(), size, access=mmap.ACCESS_READ
            )
        except FileNotFoundError:
            raise ShardingError(
                f"segment file {path!r} does not exist (was the owning "
                "engine closed while workers were still attached?)"
            ) from None
        return cls(path, fileobj, mapping, size, owner=False)

    @property
    def buf(self):
        return self._map

    @property
    def name(self) -> str:
        return self._path

    @property
    def size(self) -> int:
        return self._size

    def token(self) -> tuple:
        return ("mmap", self._path, self._size)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._map.close()
        except BufferError:
            pass
        self._file.close()

    def unlink(self) -> None:
        if not self._owner:
            return
        try:
            os.unlink(self._path)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def create_segment(size: int, prefer: str | None = None):
    """Create an owned segment of ``size`` bytes.

    ``prefer`` pins the backend (``"shm"`` or ``"mmap"``); ``None``
    tries shm first and falls back to the mmap-file backend when the
    platform refuses (no shm mount, permission, size limits).
    """
    if size < 1:
        raise ValueError(f"segment size must be positive, got {size}")
    if prefer not in (None, "shm", "mmap"):
        raise ValueError(f"unknown segment backend {prefer!r}")
    if prefer == "mmap":
        return MmapSegment.create(size)
    if prefer == "shm" or SHM_AVAILABLE:
        try:
            return ShmSegment.create(size)
        except (OSError, ShardingError):
            if prefer == "shm":
                raise
    return MmapSegment.create(size)


def attach_segment(token: tuple):
    """Attach the segment a :meth:`token` describes (worker side)."""
    backend, name, size = token
    if backend == "shm":
        return ShmSegment.attach(name, size)
    if backend == "mmap":
        return MmapSegment.attach(name, size)
    raise ShardingError(f"unknown segment token backend {backend!r}")
