# repro.serving — the Fagin-middleware engine behind an HTTP/JSON API.
#
#   docker build -t repro-serving .
#   docker run --rm -p 8000:8000 repro-serving
#   curl -s localhost:8000/healthz
#
# The server itself is stdlib-only; numpy is installed for the
# vectorized scoring kernels (the engine falls back to scalar loops
# without it, so dropping that line still yields a working image).

FROM python:3.12-slim

RUN pip install --no-cache-dir numpy

WORKDIR /app
COPY src/ src/
ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1 \
    REPRO_SHARDS=0

EXPOSE 8000

# /healthz returns 503 while draining, so orchestrators stop routing
# to an instance the moment shutdown begins.
HEALTHCHECK --interval=10s --timeout=3s --start-period=5s --retries=3 \
    CMD ["python", "-c", "import urllib.request,sys; sys.exit(0 if urllib.request.urlopen('http://127.0.0.1:8000/healthz', timeout=2).status == 200 else 1)"]

# SIGTERM (docker stop / compose down) triggers the graceful drain.
CMD ["python", "-m", "repro.serving", "--host", "0.0.0.0", "--port", "8000"]
