"""RPR002 true negatives: every shared write is guarded.

Also regression cover for the rule's precision carve-outs: alternate
constructors assigning through a *local* named ``self`` (classmethod),
and the ``*_locked`` caller-holds-the-lock naming convention.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    @classmethod
    def from_snapshot(cls, data):
        self = cls.__new__(cls)  # unpublished instance: bare is fine
        self._lock = threading.Lock()
        self.total = int(data["total"])
        return self

    def add(self, n):
        with self._lock:
            self._bump_locked(n)

    def _bump_locked(self, n):
        self.total += n  # caller holds the lock, per the suffix

    def reset(self):
        with self._lock:
            self.total = 0
