"""A real RPR002 hit carried as a baseline entry in baseline.toml."""

import threading


class Gauge:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def set(self, value):
        with self._lock:
            self.value = value

    def reset(self):
        self.value = 0  # suppressed by (rule, path, symbol) in the TOML
