"""Seeded RPR002 violation: guarded attribute assigned bare."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n

    def reset(self):
        self.total = 0  # bare write to an attribute guarded elsewhere
