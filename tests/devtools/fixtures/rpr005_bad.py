"""Seeded RPR005 violations: thawing and scribbling on frozen columns."""


def thaw_and_patch(store, grades):
    column = store._columns[0]
    column.setflags(write=True)  # thaw via setflags
    column.flags.writeable = True  # thaw via the flags attribute
    store._columns[0][:] = grades  # element store into a column
    store._orders[1].sort()  # in-place mutator on a rank order
    return column
