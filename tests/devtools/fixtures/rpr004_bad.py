"""Seeded RPR004 violations: unpicklable callables sent to a pool."""

from concurrent.futures.process import ProcessPoolExecutor


def run_all(shards):
    pool = ProcessPoolExecutor(1)
    futures = [pool.submit(lambda s=s: s.total()) for s in shards]

    def local_probe(shard):
        return shard.total()

    futures.append(pool.submit(local_probe, shards[0]))
    return futures


class Coordinator:
    def __init__(self):
        self._pool = ProcessPoolExecutor(1)

    def go(self, shard):
        return self._pool.submit(self._probe, shard)

    def _probe(self, shard):
        return shard.total()
