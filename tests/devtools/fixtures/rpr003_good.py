"""RPR003 true negatives: the sanctioned access paths."""

from repro.access.source import SortedRandomSource


class ForwardingSource(SortedRandomSource):
    """A wrapper IS the access layer — delegation is its job."""

    def __init__(self, inner):
        self._inner = inner

    def next_sorted(self):
        return self._inner.next_sorted()


def top_of_each(session):
    # Session sources are instrumented; parameters are trusted.
    return [source.next_sorted() for source in session.sources]


def bulk_probe(sources, j, objs):
    return sources[j].random_access_many(objs)
