"""A pragma left behind after the violation it waived was removed."""


def add(a, b):
    # repro: allow[RPR001] leftover waiver from a removed clock read
    return a + b
