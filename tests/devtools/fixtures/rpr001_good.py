"""RPR001 true negatives: deterministic by construction."""

import random


def decide(options, seed):
    rng = random.Random(seed)  # seeded: replayable
    total = 0.0
    for item in sorted(set(options)):  # sorted() fixes the order
        total += rng.random() * item  # instance methods are fine
    return total
