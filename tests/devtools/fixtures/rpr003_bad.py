"""Seeded RPR003 violations: accesses that dodge the session ledger."""

from repro.access.source import MaterializedSource


def peek_best(graded):
    source = MaterializedSource(graded)  # raw mint: nothing charges it
    return source.next_sorted()


def probe(graded, obj):
    return MaterializedSource(graded).random_access(obj)


class CheatingAlgorithm:
    """Not a source wrapper — stores a source and probes it off-ledger."""

    def __init__(self, source):
        self._source = source

    def run(self):
        return self._source.next_sorted()
