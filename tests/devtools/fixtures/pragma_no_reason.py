"""A reasonless pragma: suppresses nothing and is itself flagged."""

import time


def stamp(payload):
    payload["at"] = time.time()  # repro: allow[RPR001]
    return payload
