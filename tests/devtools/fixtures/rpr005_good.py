"""RPR005 true negatives: fresh mints, freezes, and plain reads."""

import numpy as np


def mint_column(grades):
    column = np.asarray(grades, dtype=np.float64)
    column.flags.writeable = False  # freezing is always allowed
    return column


def read_top(store):
    ranked = sorted(store._columns[0])  # reading is fine
    return ranked[0] if ranked else None
