"""A real RPR001 hit waived by a reason-carrying inline pragma."""

import time


def stamp(payload):
    # repro: allow[RPR001] telemetry timestamp, never a decision input
    payload["at"] = time.time()
    return payload
