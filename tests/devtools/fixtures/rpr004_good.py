"""RPR004 true negatives: module-level callables pickle cleanly."""

import functools
from concurrent.futures.process import ProcessPoolExecutor

from repro.sharding import worker as _worker


def probe(shard):
    return shard.total()


def run(shards):
    pool = ProcessPoolExecutor(1)
    futures = [pool.submit(probe, shard) for shard in shards]
    futures.append(pool.submit(_worker.run_probe, shards[0]))
    futures.append(pool.submit(functools.partial(probe, shards[0])))
    return futures
