"""Seeded RPR001 violations: entropy and wall-clock in replay scope.

Every statement here is valid Python that ruff's gates accept — the
nondeterminism is semantic, which is exactly why the contract checker
exists.
"""

import random
import time


def decide(options):
    started = time.monotonic()  # wall-clock read
    pick = random.choice(options)  # process-global random state
    rng = random.Random()  # unseeded Random draws OS entropy
    total = 0.0
    for _item in {pick, started}:  # set iteration is hash-ordered
        total += rng.random()
    return pick, total
