"""The `python -m repro.devtools.check` surface: formats, exit codes,
config discovery, --changed-only."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.check import main

from _checker_utils import FIXTURES, REPO_ROOT


def test_clean_file_exits_zero(capsys) -> None:
    code = main([str(FIXTURES / "rpr001_good.py"), "--no-config"])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_findings_exit_one_text(capsys) -> None:
    code = main(
        [
            str(FIXTURES / "rpr002_bad.py"),
            "--config",
            str(FIXTURES / "open_scopes.toml"),
            "--root",
            str(FIXTURES),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR002" in out
    assert "rpr002_bad.py:16" in out
    assert "1 finding" in out


def test_json_format_schema(capsys) -> None:
    code = main(
        [
            str(FIXTURES / "rpr005_bad.py"),
            "--config",
            str(FIXTURES / "open_scopes.toml"),
            "--format",
            "json",
            "--root",
            str(FIXTURES),
        ]
    )
    report = json.loads(capsys.readouterr().out)
    assert code == 1
    assert report["version"] == 1
    assert report["clean"] is False
    assert report["summary"] == {"RPR005": 4}
    finding = report["findings"][0]
    assert set(finding) == {"rule", "path", "line", "col", "symbol", "message"}


def test_missing_path_is_usage_error(capsys) -> None:
    code = main(["definitely/not/here.py", "--no-config"])
    err = capsys.readouterr().err
    assert code == 2
    assert "no such path" in err


def test_bad_config_is_usage_error(tmp_path: Path, capsys) -> None:
    bad = tmp_path / "broken.toml"
    bad.write_text("rules = [oops\n")
    code = main(
        [str(FIXTURES / "rpr001_good.py"), "--config", str(bad)]
    )
    assert code == 2
    assert "invalid TOML" in capsys.readouterr().err


def test_list_rules(capsys) -> None:
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rule_id in out


def test_module_entrypoint_runs() -> None:
    # The documented invocation, end to end in a real interpreter.
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.devtools.check",
            str(FIXTURES / "rpr003_bad.py"),
            "--config",
            str(FIXTURES / "open_scopes.toml"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 1, proc.stderr
    assert "RPR003" in proc.stdout
    assert "RuntimeWarning" not in proc.stderr


def test_changed_only_outside_git(tmp_path: Path, capsys) -> None:
    target = tmp_path / "snippet.py"
    target.write_text("x = 1\n")
    code = main(
        [str(target), "--no-config", "--changed-only", "--root", str(tmp_path)]
    )
    assert code == 2
    assert "git" in capsys.readouterr().err


def test_changed_only_in_git_checks_only_touched_files(
    tmp_path: Path, capsys
) -> None:
    git = ["git", "-C", str(tmp_path)]
    subprocess.run(git + ["init", "-q"], check=True, timeout=60)
    subprocess.run(
        git + ["config", "user.email", "t@example.com"], check=True, timeout=60
    )
    subprocess.run(git + ["config", "user.name", "t"], check=True, timeout=60)
    committed = tmp_path / "committed.py"
    committed.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    subprocess.run(git + ["add", "."], check=True, timeout=60)
    subprocess.run(
        git + ["commit", "-qm", "seed"], check=True, timeout=60
    )
    touched = tmp_path / "touched.py"
    touched.write_text("import time\n\n\ndef g():\n    return time.time()\n")
    # Widen RPR001 to the whole tmp tree (the defaults scope it to
    # repro/ paths, which a tmp checkout does not have).
    config = tmp_path / "devtools.toml"
    config.write_text("[rules.RPR001]\npaths = []\n")

    code = main(
        [
            str(tmp_path),
            "--config",
            str(config),
            "--changed-only",
            "--root",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    # Only the uncommitted file is checked; the committed violation
    # rides along untouched (that is the fast pre-commit loop).
    assert "touched.py" in out
    assert "committed.py" not in out


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_default_config_discovery_keeps_live_tree_clean(
    capsys, fmt: str
) -> None:
    # Run from the repo root exactly as CI does: devtools.toml is
    # picked up implicitly and the committed tree is clean.
    code = main(
        [
            str(REPO_ROOT / "src"),
            "--format",
            fmt,
            "--config",
            str(REPO_ROOT / "devtools.toml"),
            "--root",
            str(REPO_ROOT),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
