"""Meta-test: the committed source tree is clean under the committed
config — the same gate the CI `contracts` job enforces."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.check import run_check
from repro.devtools.config import CheckConfig

from _checker_utils import REPO_ROOT


def test_src_tree_is_clean_under_committed_config() -> None:
    config = CheckConfig.load(REPO_ROOT / "devtools.toml")
    result = run_check([REPO_ROOT / "src"], config, root=REPO_ROOT)
    assert result.findings == [], "\n" + result.format_text()
    # Sanity: the walk actually covered the tree.
    assert result.files_checked > 90


def test_engine_telemetry_is_the_only_sanctioned_clock_read() -> None:
    """Without the allowlist, the telemetry observation in
    Engine._execute is flagged — proof the waiver is load-bearing and
    that nothing else in the engine facade reads the clock."""
    config = CheckConfig.load(REPO_ROOT / "devtools.toml")
    config.rules["RPR001"].allow_within = ()
    result = run_check(
        [REPO_ROOT / "src" / "repro" / "engine"], config, root=REPO_ROOT
    )
    assert result.findings, "expected the telemetry reads to surface"
    assert {f.rule for f in result.findings} == {"RPR001"}
    assert {f.symbol for f in result.findings} == {"Engine._execute"}


def test_every_rule_scope_touches_existing_paths() -> None:
    """Scopes reference real paths, so a future tree reshuffle cannot
    silently turn a rule into a no-op."""
    config = CheckConfig.load(REPO_ROOT / "devtools.toml")
    src = REPO_ROOT / "src"
    for rule_id, rule_config in sorted(config.rules.items()):
        for fragment in rule_config.paths:
            anchored = Path(str(src / fragment))
            assert anchored.exists(), (
                f"{rule_id} scope {fragment!r} matches nothing under src/"
            )
