"""Pragma and baseline suppression semantics, including the honesty
meta-findings (DT002 reasonless pragma, DT003 stale waivers)."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.check import run_check
from repro.devtools.config import CheckConfig
from repro.devtools.pragmas import PragmaIndex

from _checker_utils import FIXTURES, open_config


def _findings(name: str, config=None):
    result = run_check(
        [FIXTURES / name], config or open_config(), root=FIXTURES
    )
    return result.findings


def test_pragma_with_reason_suppresses() -> None:
    assert _findings("pragma_suppressed.py") == []


def test_pragma_without_reason_suppresses_nothing() -> None:
    findings = _findings("pragma_no_reason.py")
    assert sorted(f.rule for f in findings) == ["DT002", "RPR001"]


def test_stale_pragma_is_flagged() -> None:
    findings = _findings("pragma_stale.py")
    assert [f.rule for f in findings] == ["DT003"]
    assert "RPR001" in findings[0].message


def test_baseline_entry_suppresses() -> None:
    config = open_config()
    config.merge(
        {
            "suppressions": [
                {
                    "rule": "RPR002",
                    "path": "baseline_suppressed.py",
                    "symbol": "Gauge.reset",
                    "reason": "fixture",
                }
            ]
        }
    )
    assert _findings("baseline_suppressed.py", config) == []


def test_baseline_toml_file_round_trip() -> None:
    config = CheckConfig.load(FIXTURES / "baseline.toml")
    for rule_config in config.rules.values():
        rule_config.paths = ()
        rule_config.exclude = ()
    assert _findings("baseline_suppressed.py", config) == []


def test_without_baseline_the_fixture_fires() -> None:
    findings = _findings("baseline_suppressed.py")
    assert [f.rule for f in findings] == ["RPR002"]
    assert findings[0].symbol == "Gauge.reset"


def test_stale_baseline_entry_is_flagged() -> None:
    config = open_config()
    config.merge(
        {
            "suppressions": [
                {
                    "rule": "RPR005",
                    "path": "baseline_suppressed.py",
                    "symbol": "Gauge.reset",
                    "reason": "wrong rule: matches nothing",
                }
            ]
        }
    )
    findings = _findings("baseline_suppressed.py", config)
    assert sorted(f.rule for f in findings) == ["DT003", "RPR002"]


def test_baseline_matching_survives_line_shifts(tmp_path: Path) -> None:
    source = (FIXTURES / "baseline_suppressed.py").read_text()
    shifted = tmp_path / "baseline_suppressed.py"
    shifted.write_text("# shifted\n# down\n# by comments\n" + source)
    config = open_config()
    config.merge(
        {
            "suppressions": [
                {
                    "rule": "RPR002",
                    "path": "baseline_suppressed.py",
                    "symbol": "Gauge.reset",
                    "reason": "fixture",
                }
            ]
        }
    )
    result = run_check([shifted], config, root=tmp_path)
    assert result.findings == []


def test_pragma_index_parsing() -> None:
    source = (
        "x = 1  # repro: allow[RPR001] same-line reason\n"
        "# repro: allow[RPR002, RPR003] standalone covers next line\n"
        "y = 2\n"
        "z = 3  # repro: allow[RPR004]\n"
    )
    index = PragmaIndex.from_source(source)
    assert index.allows("RPR001", 1)
    assert index.allows("RPR002", 3)  # standalone covers the next line
    assert index.allows("RPR003", 2)  # and its own line
    assert not index.allows("RPR002", 4)
    assert not index.allows("RPR004", 4)  # reasonless never suppresses
    assert [p.line for p in index.without_reason()] == [4]


def test_pragma_inside_string_literal_is_ignored() -> None:
    source = 's = "# repro: allow[RPR001] not a comment"\n'
    index = PragmaIndex.from_source(source)
    assert not index.allows("RPR001", 1)
