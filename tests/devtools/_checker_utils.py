"""Helpers shared by the contract-checker test modules.

Not a conftest: test modules import this by name (pytest prepends the
test directory to ``sys.path`` for non-package test dirs), so the name
is chosen to be collision-proof across the suite.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.config import CheckConfig

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def open_config() -> CheckConfig:
    """Every rule everywhere — fixtures live outside the repro/ scopes."""
    config = CheckConfig()
    for rule_config in config.rules.values():
        rule_config.paths = ()
        rule_config.exclude = ()
    return config
