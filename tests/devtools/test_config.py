"""Config loading, scope matching, and validation errors."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.config import (
    CheckConfig,
    ConfigError,
    RuleConfig,
    path_matches,
)


class TestPathMatches:
    def test_package_fragment(self) -> None:
        assert path_matches("src/repro/algorithms/fa.py", "repro/algorithms")
        assert path_matches("src/repro/algorithms/fa.py", "repro/algorithms/")
        assert not path_matches("src/repro/engine/engine.py", "repro/algorithms")

    def test_file_fragment(self) -> None:
        assert path_matches(
            "src/repro/core/certify.py", "repro/core/certify.py"
        )
        assert not path_matches(
            "src/repro/core/certify.py", "repro/core/grades.py"
        )
        assert path_matches("baseline_suppressed.py", "baseline_suppressed.py")

    def test_no_substring_false_positives(self) -> None:
        # "repro/core" must not match "repro/core_extra".
        assert not path_matches("src/repro/core_extra/x.py", "repro/core")
        assert not path_matches("src/repro/x/yrepro/core/x.py", "xrepro/core")


class TestRuleConfig:
    def test_empty_paths_means_everywhere(self) -> None:
        config = RuleConfig()
        assert config.applies_to("anything/at/all.py")

    def test_exclude_wins(self) -> None:
        config = RuleConfig(paths=("repro/",), exclude=("repro/access/",))
        assert config.applies_to("src/repro/engine/engine.py")
        assert not config.applies_to("src/repro/access/columnar.py")


class TestLoad:
    def test_defaults_without_file(self) -> None:
        config = CheckConfig.load(None)
        assert set(config.rules) == {
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005"
        }
        assert config.suppressions == []

    def test_missing_file_is_an_error(self, tmp_path: Path) -> None:
        with pytest.raises(ConfigError, match="not found"):
            CheckConfig.load(tmp_path / "nope.toml")

    def test_invalid_toml_is_an_error(self, tmp_path: Path) -> None:
        bad = tmp_path / "devtools.toml"
        bad.write_text("rules = [broken\n")
        with pytest.raises(ConfigError, match="invalid TOML"):
            CheckConfig.load(bad)

    def test_scope_override_and_allowlist_merge(self, tmp_path: Path) -> None:
        toml = tmp_path / "devtools.toml"
        toml.write_text(
            '[rules.RPR001]\n'
            'paths = ["repro/engine/engine.py"]\n'
            'allow-within = ["Engine._execute"]\n'
        )
        config = CheckConfig.load(toml)
        rule = config.rules["RPR001"]
        assert rule.paths == ("repro/engine/engine.py",)
        assert "Engine._execute" in rule.allow_within

    def test_rule_options_pass_through(self, tmp_path: Path) -> None:
        toml = tmp_path / "devtools.toml"
        toml.write_text(
            '[rules.RPR005]\n'
            'protected-attrs = ["_columns", "_orders", "_grades"]\n'
        )
        config = CheckConfig.load(toml)
        assert config.rules["RPR005"].options["protected_attrs"] == [
            "_columns", "_orders", "_grades",
        ]

    def test_suppression_requires_reason(self, tmp_path: Path) -> None:
        toml = tmp_path / "devtools.toml"
        toml.write_text(
            "[[suppressions]]\n"
            'rule = "RPR001"\n'
            'path = "x.py"\n'
            'symbol = "f"\n'
        )
        with pytest.raises(ConfigError, match="needs a reason"):
            CheckConfig.load(toml)

    def test_suppression_requires_all_keys(self, tmp_path: Path) -> None:
        toml = tmp_path / "devtools.toml"
        toml.write_text('[[suppressions]]\nrule = "RPR001"\n')
        with pytest.raises(ConfigError, match="missing key"):
            CheckConfig.load(toml)

    def test_committed_repo_config_loads(self, repo_root: Path) -> None:
        config = CheckConfig.load(repo_root / "devtools.toml")
        assert "repro/engine/engine.py" in config.rules["RPR001"].paths
        assert "Engine._execute" in config.rules["RPR001"].allow_within
