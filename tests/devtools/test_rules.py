"""Per-rule fixture coverage: each rule catches its seeded violations
(none of which ruff's lint gates flag — the point of the checker) and
stays quiet on the idiomatic counterpart."""

from __future__ import annotations

import pytest

from repro.devtools.check import run_check

from _checker_utils import FIXTURES, open_config


def _check_file(name: str):
    path = FIXTURES / name
    result = run_check([path], open_config(), root=FIXTURES)
    return result.findings


BAD_EXPECTATIONS = [
    ("rpr001_bad.py", "RPR001", 4),
    ("rpr002_bad.py", "RPR002", 1),
    ("rpr003_bad.py", "RPR003", 3),
    ("rpr004_bad.py", "RPR004", 3),
    ("rpr005_bad.py", "RPR005", 4),
]


@pytest.mark.parametrize("name,rule,count", BAD_EXPECTATIONS)
def test_bad_fixture_caught(name: str, rule: str, count: int) -> None:
    findings = _check_file(name)
    assert [f.rule for f in findings] == [rule] * count
    for finding in findings:
        assert finding.path == name
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize(
    "name",
    [
        "rpr001_good.py",
        "rpr002_good.py",
        "rpr003_good.py",
        "rpr004_good.py",
        "rpr005_good.py",
    ],
)
def test_good_fixture_clean(name: str) -> None:
    assert _check_file(name) == []


def test_rpr001_sites() -> None:
    findings = _check_file("rpr001_bad.py")
    messages = " | ".join(f.message for f in findings)
    assert "time.monotonic" in messages
    assert "random.choice" in messages
    assert "random.Random()" in messages
    assert "set display" in messages
    assert all(f.symbol == "decide" for f in findings)


def test_rpr002_site_is_the_bare_assignment() -> None:
    (finding,) = _check_file("rpr002_bad.py")
    assert finding.symbol == "Counter.reset"
    assert "self.total" in finding.message


def test_rpr003_distinguishes_wrapper_from_algorithm() -> None:
    findings = _check_file("rpr003_bad.py")
    symbols = {f.symbol for f in findings}
    assert symbols == {"peek_best", "probe", "CheatingAlgorithm.run"}


def test_rpr004_names_the_offender() -> None:
    findings = _check_file("rpr004_bad.py")
    messages = " | ".join(f.message for f in findings)
    assert "a lambda" in messages
    assert "local_probe" in messages
    assert "self._probe" in messages


def test_rpr005_covers_all_four_mutation_shapes() -> None:
    findings = _check_file("rpr005_bad.py")
    messages = " | ".join(f.message for f in findings)
    assert "setflags(write=True)" in messages
    assert ".flags.writeable" in messages
    assert "element store" in messages
    assert "`sort(…)`" in messages
