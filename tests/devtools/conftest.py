"""Shared fixtures for the contract-checker suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from _checker_utils import FIXTURES, REPO_ROOT


@pytest.fixture
def fixtures() -> Path:
    return FIXTURES


@pytest.fixture
def repo_root() -> Path:
    return REPO_ROOT
