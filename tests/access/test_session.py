"""Tests for middleware sessions and sub-sessions."""

import pytest

from repro.access.session import MiddlewareSession
from repro.access.source import MaterializedSource


def _sources():
    return [
        MaterializedSource("l0", {"a": 0.9, "b": 0.5}),
        MaterializedSource("l1", {"a": 0.4, "b": 0.8}),
        MaterializedSource("l2", {"a": 0.7, "b": 0.1}),
    ]


class TestOverSources:
    def test_instruments_each_list(self):
        session = MiddlewareSession.over_sources(_sources())
        assert session.num_lists == 3
        session.sources[2].next_sorted()
        assert session.tracker.snapshot().sorted_by_list == (0, 0, 1)

    def test_num_objects_default(self):
        session = MiddlewareSession.over_sources(_sources())
        assert session.num_objects == 2

    def test_num_objects_explicit(self):
        session = MiddlewareSession.over_sources(_sources(), num_objects=10)
        assert session.num_objects == 10

    def test_needs_sources(self):
        with pytest.raises(ValueError):
            MiddlewareSession.over_sources([])


class TestSubsession:
    def test_subset_and_shared_tracker(self):
        session = MiddlewareSession.over_sources(_sources())
        sub = session.subsession([0, 2])
        assert sub.num_lists == 2
        sub.sources[1].next_sorted()  # original list index 2
        assert session.tracker.snapshot().sorted_by_list == (0, 0, 1)

    def test_restart_on_subsession(self):
        session = MiddlewareSession.over_sources(_sources())
        session.sources[0].next_sorted()
        sub = session.subsession([0], restart=True)
        assert sub.sources[0].position == 0

    def test_no_restart_preserves_cursor(self):
        session = MiddlewareSession.over_sources(_sources())
        session.sources[0].next_sorted()
        sub = session.subsession([0], restart=False)
        assert sub.sources[0].position == 1

    def test_restart_all(self):
        session = MiddlewareSession.over_sources(_sources())
        for src in session.sources:
            src.next_sorted()
        session.restart_all()
        assert all(src.position == 0 for src in session.sources)
