"""Tests for the sorted/random access interface of Section 4."""

import pytest

from repro.access.cost import CostTracker
from repro.access.source import (
    InstrumentedSource,
    MaterializedSource,
    PagedBatchSource,
    SortedRandomSource,
    StreamOnlySource,
    UnbatchedSource,
    rank_items,
)
from repro.access.types import GradedItem
from repro.exceptions import ExhaustedSourceError, GradeRangeError, UnknownObjectError


class TestGradedItem:
    def test_unpacking(self):
        obj, grade = GradedItem("a", 0.5)
        assert obj == "a" and grade == 0.5

    def test_validates_grade(self):
        with pytest.raises(GradeRangeError):
            GradedItem("a", 1.5)


class TestRankItems:
    def test_descending_order(self):
        ranked = rank_items({"a": 0.1, "b": 0.9, "c": 0.5})
        assert [it.obj for it in ranked] == ["b", "c", "a"]

    def test_tie_break_deterministic(self):
        ranked = rank_items({"b": 0.5, "a": 0.5})
        assert [it.obj for it in ranked] == ["a", "b"]

    def test_from_pairs(self):
        ranked = rank_items([("x", 0.2), ("y", 0.8)])
        assert ranked[0].obj == "y"


class TestMaterializedSource:
    def test_sorted_access_streams_in_order(self):
        src = MaterializedSource("s", {"a": 0.1, "b": 0.9, "c": 0.5})
        assert src.next_sorted().obj == "b"
        assert src.next_sorted().obj == "c"
        assert src.position == 2
        assert not src.exhausted

    def test_exhaustion(self):
        src = MaterializedSource("s", {"a": 0.5})
        src.next_sorted()
        assert src.exhausted
        with pytest.raises(ExhaustedSourceError):
            src.next_sorted()

    def test_random_access(self):
        src = MaterializedSource("s", {"a": 0.5})
        assert src.random_access("a") == 0.5

    def test_random_access_unknown_object(self):
        src = MaterializedSource("s", {"a": 0.5})
        with pytest.raises(UnknownObjectError):
            src.random_access("zzz")

    def test_restart(self):
        src = MaterializedSource("s", {"a": 0.9, "b": 0.5})
        src.next_sorted()
        src.restart()
        assert src.position == 0
        assert src.next_sorted().obj == "a"

    def test_preranked_items_accepted(self):
        items = (GradedItem("x", 0.9), GradedItem("y", 0.4))
        src = MaterializedSource("s", items)
        assert src.next_sorted().obj == "x"

    def test_preranked_out_of_order_rejected(self):
        items = (GradedItem("x", 0.4), GradedItem("y", 0.9))
        with pytest.raises(ValueError, match="not sorted"):
            MaterializedSource("s", items)

    def test_duplicate_objects_rejected(self):
        items = (GradedItem("x", 0.9), GradedItem("x", 0.4))
        with pytest.raises(ValueError, match="duplicate"):
            MaterializedSource("s", items)

    def test_len(self):
        assert len(MaterializedSource("s", {"a": 0.5, "b": 0.2})) == 2

    def test_ranking_inspection(self):
        src = MaterializedSource("s", {"a": 0.5})
        assert src.ranking()[0] == GradedItem("a", 0.5)


class TestInstrumentedSource:
    def test_charges_sorted_access(self):
        tracker = CostTracker(2)
        src = InstrumentedSource(
            MaterializedSource("s", {"a": 0.5, "b": 0.2}), tracker, 1
        )
        src.next_sorted()
        assert tracker.snapshot().sorted_by_list == (0, 1)

    def test_charges_random_access(self):
        tracker = CostTracker(1)
        src = InstrumentedSource(
            MaterializedSource("s", {"a": 0.5}), tracker, 0
        )
        src.random_access("a")
        assert tracker.snapshot().random_by_list == (1,)

    def test_failed_sorted_access_not_charged(self):
        tracker = CostTracker(1)
        src = InstrumentedSource(
            MaterializedSource("s", {"a": 0.5}), tracker, 0
        )
        src.next_sorted()
        with pytest.raises(ExhaustedSourceError):
            src.next_sorted()
        assert tracker.snapshot().sorted_cost == 1

    def test_failed_random_access_not_charged(self):
        tracker = CostTracker(1)
        src = InstrumentedSource(
            MaterializedSource("s", {"a": 0.5}), tracker, 0
        )
        with pytest.raises(UnknownObjectError):
            src.random_access("zzz")
        assert tracker.snapshot().random_cost == 0

    def test_restart_does_not_erase_charges(self):
        """Re-reading after restart is a real access and is re-charged."""
        tracker = CostTracker(1)
        src = InstrumentedSource(
            MaterializedSource("s", {"a": 0.5}), tracker, 0
        )
        src.next_sorted()
        src.restart()
        src.next_sorted()
        assert tracker.snapshot().sorted_cost == 2

    def test_list_index_validated(self):
        tracker = CostTracker(1)
        with pytest.raises(ValueError):
            InstrumentedSource(
                MaterializedSource("s", {"a": 0.5}), tracker, 7
            )

    def test_delegates_len_and_position(self):
        tracker = CostTracker(1)
        inner = MaterializedSource("s", {"a": 0.5, "b": 0.1})
        src = InstrumentedSource(inner, tracker, 0)
        assert len(src) == 2
        src.next_sorted()
        assert src.position == 1
        assert inner.position == 1


class TestFork:
    """fork(): an independent cursor over the same graded set."""

    GRADES = {"a": 0.9, "b": 0.7, "c": 0.7, "d": 0.1}

    def test_materialized_fork_is_independent(self):
        src = MaterializedSource("s", self.GRADES)
        src.next_sorted()
        src.next_sorted()
        fork = src.fork()
        assert fork.position == 0
        assert src.position == 2  # parent cursor untouched
        assert fork.next_sorted().obj == "a"
        assert src.next_sorted().obj == "c"  # parent continues from 2
        assert fork.random_access("d") == 0.1

    def test_fork_shares_the_ranking(self):
        src = MaterializedSource("s", self.GRADES)
        fork = src.fork()
        assert fork.ranking() is src.ranking()
        assert fork.name == src.name

    def test_wrappers_fork_through(self):
        for wrap in (
            UnbatchedSource,
            lambda inner: PagedBatchSource(inner, 2),
            StreamOnlySource,
        ):
            src = wrap(MaterializedSource("s", self.GRADES))
            src.next_sorted()
            fork = src.fork()
            assert type(fork) is type(src)
            assert fork.position == 0
            assert src.position == 1
            assert fork.next_sorted().obj == "a"

    def test_paged_fork_keeps_page_size(self):
        src = PagedBatchSource(MaterializedSource("s", self.GRADES), 2)
        fork = src.fork()
        assert fork.page_size == 2
        assert len(fork.sorted_access_batch(10)) == 2  # still paged

    def test_stream_only_fork_still_refuses_random_access(self):
        from repro.exceptions import SubsystemCapabilityError

        fork = StreamOnlySource(MaterializedSource("s", self.GRADES)).fork()
        with pytest.raises(SubsystemCapabilityError):
            fork.random_access("a")

    def test_default_fork_declines_loudly(self):
        from repro.exceptions import SubsystemCapabilityError

        class Minimal(SortedRandomSource):
            def __len__(self):
                return 0

            @property
            def position(self):
                return 0

            def next_sorted(self):
                raise ExhaustedSourceError("m")

            def random_access(self, obj):
                raise UnknownObjectError(obj, "m")

            def restart(self):
                pass

        with pytest.raises(SubsystemCapabilityError, match="fork"):
            Minimal().fork()
