"""Tests for the columnar scoring-database backend."""

import pytest

from repro.access.columnar import ColumnarScoringDatabase
from repro.access.scoring_database import ScoringDatabase
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database, random_skeleton
from repro.workloads.distributions import Crisp
import random

from repro.workloads.skeletons import grades_for_skeleton


@pytest.fixture
def row_db() -> ScoringDatabase:
    return independent_database(3, 120, seed=21)


@pytest.fixture
def col_db(row_db) -> ColumnarScoringDatabase:
    return ColumnarScoringDatabase.from_scoring_database(row_db)


class TestConstruction:
    def test_dimensions(self, row_db, col_db):
        assert col_db.num_lists == row_db.num_lists
        assert col_db.num_objects == row_db.num_objects
        assert col_db.objects == row_db.objects

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ColumnarScoringDatabase([])
        with pytest.raises(ValueError):
            ColumnarScoringDatabase([{}])

    def test_rejects_mismatched_domains(self):
        with pytest.raises(ValueError, match="different object set"):
            ColumnarScoringDatabase([{"a": 0.5, "b": 0.4}, {"a": 0.5, "c": 0.4}])
        with pytest.raises(ValueError, match="different object set"):
            ColumnarScoringDatabase([{"a": 0.5}, {"a": 0.5, "b": 0.4}])

    def test_rejects_bad_grades(self):
        with pytest.raises(Exception):
            ColumnarScoringDatabase([{"a": 1.5}])

    def test_arbitrary_hashable_objects(self):
        db = ColumnarScoringDatabase(
            [{("x", 1): 0.9, "y": 0.2}, {("x", 1): 0.1, "y": 0.8}]
        )
        assert db.grade(0, ("x", 1)) == 0.9
        assert db.grade(1, "y") == 0.8

    def test_from_skeleton(self):
        rng = random.Random(5)
        skeleton = random_skeleton(2, 30, rng)
        rows = grades_for_skeleton(skeleton, rng)
        row = ScoringDatabase.from_skeleton(skeleton, rows)
        col = ColumnarScoringDatabase.from_skeleton(skeleton, rows)
        for i in range(2):
            assert col.ranking(i) == row.ranking(i)


class TestParityWithRowDatabase:
    def test_rankings_identical(self, row_db, col_db):
        for i in range(row_db.num_lists):
            assert col_db.ranking(i) == row_db.ranking(i)

    def test_grades_identical(self, row_db, col_db):
        for i in range(row_db.num_lists):
            for obj in row_db.objects:
                assert col_db.grade(i, obj) == row_db.grade(i, obj)

    def test_graded_sets_identical(self, row_db, col_db):
        for i in range(row_db.num_lists):
            assert col_db.graded_set(i).as_dict() == row_db.graded_set(i).as_dict()

    def test_overall_grades_identical(self, row_db, col_db):
        assert (
            col_db.overall_grades(MINIMUM).as_dict()
            == row_db.overall_grades(MINIMUM).as_dict()
        )

    def test_true_top_k_identical(self, row_db, col_db):
        assert col_db.true_top_k(MINIMUM, 7) == row_db.true_top_k(MINIMUM, 7)

    def test_tied_grades_rank_identically(self):
        """Crisp (0/1) grades force heavy ties; the tie-break must agree."""
        rng = random.Random(9)
        skeleton = random_skeleton(2, 40, rng)
        rows = grades_for_skeleton(skeleton, rng, Crisp(0.3))
        row = ScoringDatabase.from_skeleton(skeleton, rows)
        col = ColumnarScoringDatabase.from_scoring_database(row)
        for i in range(2):
            assert col.ranking(i) == row.ranking(i)


class TestSessions:
    def test_session_minted_without_resorting_shares_rankings(self, col_db):
        first = col_db.ranking(0)
        session = col_db.session()
        # The session's sources slice the very same ranking tuple.
        assert session.sources[0].sorted_access_batch(3) == first[:3]

    def test_sessions_have_independent_cursors(self, col_db):
        s1, s2 = col_db.session(), col_db.session()
        s1.sources[0].sorted_access_batch(10)
        assert s2.sources[0].position == 0
        assert s1.sources[0].position == 10

    def test_sessions_have_independent_trackers(self, col_db):
        s1, s2 = col_db.session(), col_db.session()
        s1.sources[1].next_sorted()
        assert s1.tracker.snapshot().sorted_cost == 1
        assert s2.tracker.snapshot().sorted_cost == 0

    def test_session_counts_match_row_database_session(self, row_db, col_db):
        from repro.algorithms.fa import FaginA0

        r_row = FaginA0().top_k(row_db.session(), MINIMUM, 5)
        r_col = FaginA0().top_k(col_db.session(), MINIMUM, 5)
        assert r_row.items == r_col.items
        assert r_row.stats == r_col.stats

    def test_engine_over_columnar(self, col_db):
        from repro import Engine

        result = Engine.over(col_db).query(MINIMUM).top(5)
        assert result.k == 5
