"""Tests for tie handling (the Section 5 / Remark 6.3 subtleties)."""

import pytest

from repro.access.scoring_database import ScoringDatabase
from repro.access.ties import (
    consistent_skeletons,
    count_consistent_skeletons,
    tie_groups,
)


@pytest.fixture
def tied_db():
    # List 0 ties b and c; list 1 ties a and b and c.
    return ScoringDatabase(
        [
            {"a": 0.9, "b": 0.5, "c": 0.5},
            {"a": 0.4, "b": 0.4, "c": 0.4},
        ]
    )


class TestTieGroups:
    def test_groups_descending(self, tied_db):
        groups = tie_groups(tied_db, 0)
        assert [g for g, _ in groups] == [0.9, 0.5]
        assert set(groups[1][1]) == {"b", "c"}

    def test_no_ties_all_singletons(self):
        db = ScoringDatabase([{"a": 0.9, "b": 0.5}])
        groups = tie_groups(db, 0)
        assert all(len(members) == 1 for _, members in groups)


class TestConsistentSkeletons:
    def test_count(self, tied_db):
        # list 0: 2! for the {b,c} tie; list 1: 3! -> 12 total.
        assert count_consistent_skeletons(tied_db) == 12

    def test_enumeration_matches_count(self, tied_db):
        skeletons = list(consistent_skeletons(tied_db))
        assert len(skeletons) == 12
        assert len(set(skeletons)) == 12

    def test_all_enumerated_are_consistent(self, tied_db):
        for sk in consistent_skeletons(tied_db):
            assert tied_db.consistent_with(sk)

    def test_no_ties_single_skeleton(self):
        db = ScoringDatabase([{"a": 0.9, "b": 0.5}])
        assert count_consistent_skeletons(db) == 1
        assert list(consistent_skeletons(db)) == [db.skeleton()]

    def test_limit_guard(self, tied_db):
        with pytest.raises(ValueError, match="more than"):
            list(consistent_skeletons(tied_db, limit=5))

    def test_limit_none_unbounded(self, tied_db):
        assert len(list(consistent_skeletons(tied_db, limit=None))) == 12


class TestAlgorithmsUnderTies:
    def test_a0_correct_under_every_consistent_skeleton(self, tied_db):
        """Section 4: any tie-break must still yield a valid top-k."""
        from repro.access.session import MiddlewareSession
        from repro.access.source import MaterializedSource
        from repro.access.types import GradedItem
        from repro.algorithms.base import is_valid_top_k
        from repro.algorithms.fa import FaginA0
        from repro.core.tnorms import MINIMUM

        truth = tied_db.overall_grades(MINIMUM)
        for sk in consistent_skeletons(tied_db):
            sources = [
                MaterializedSource(
                    f"l{i}",
                    # Materialise the ranking in this skeleton's order.
                    [GradedItem(obj, tied_db.grade(i, obj)) for obj in perm],
                )
                for i, perm in enumerate(sk.permutations)
            ]
            session = MiddlewareSession.over_sources(
                sources, num_objects=tied_db.num_objects
            )
            result = FaginA0().top_k(session, MINIMUM, 2)
            assert is_valid_top_k(result.items, truth, 2)
