"""Tests for the Section 5 formal model: scoring databases & skeletons."""

import random

import pytest

from repro.access.scoring_database import (
    ScoringDatabase,
    Skeleton,
    prefix_intersection_size,
)
from repro.core.graded_set import GradedSet
from repro.core.tnorms import MINIMUM
from repro.exceptions import InconsistentSkeletonError


class TestSkeleton:
    def test_valid_construction(self):
        sk = Skeleton(((1, 2, 3), (3, 1, 2)))
        assert sk.num_lists == 2
        assert sk.num_objects == 3
        assert sk.objects == {1, 2, 3}

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Skeleton(((1, 2, 3), (1, 2, 4)))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Skeleton(((1, 1, 2),))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Skeleton(())

    def test_random_is_permutation(self):
        sk = Skeleton.random(3, 50, random.Random(0))
        assert sk.num_lists == 3
        for perm in sk.permutations:
            assert sorted(perm) == list(range(1, 51))

    def test_random_reproducible(self):
        a = Skeleton.random(2, 30, random.Random(7))
        b = Skeleton.random(2, 30, random.Random(7))
        assert a == b

    def test_prefix(self):
        sk = Skeleton(((1, 2, 3), (3, 2, 1)))
        assert sk.prefix(0, 2) == (1, 2)
        assert sk.prefix(1, 1) == (3,)

    def test_match_depth_identical_lists(self):
        sk = Skeleton(((1, 2, 3, 4), (1, 2, 3, 4)))
        assert sk.match_depth(1) == 1
        assert sk.match_depth(3) == 3

    def test_match_depth_reversed_lists(self):
        """The Section 7 extreme: T = ceil((N + k) / 2)."""
        n = 10
        forward = tuple(range(1, n + 1))
        sk = Skeleton((forward, tuple(reversed(forward))))
        assert sk.match_depth(1) == (n + 1 + 1) // 2

    def test_match_depth_k_too_large(self):
        sk = Skeleton(((1, 2), (2, 1)))
        with pytest.raises(ValueError):
            sk.match_depth(3)

    def test_reversed_pair(self):
        sk = Skeleton(((3, 1, 2),))
        pair = sk.reversed_pair()
        assert pair.permutations == ((3, 1, 2), (2, 1, 3))

    def test_reversed_pair_needs_single_list(self):
        with pytest.raises(ValueError):
            Skeleton(((1, 2), (2, 1))).reversed_pair()


class TestScoringDatabase:
    def test_construction_from_mappings(self, tiny_db):
        assert tiny_db.num_lists == 2
        assert tiny_db.num_objects == 5
        assert tiny_db.grade(0, "a") == 0.9

    def test_construction_from_graded_sets(self):
        db = ScoringDatabase(
            [GradedSet({"x": 0.5, "y": 0.2}), GradedSet({"x": 0.1, "y": 0.9})]
        )
        assert db.num_objects == 2

    def test_rejects_mismatched_domains(self):
        with pytest.raises(ValueError, match="different object set"):
            ScoringDatabase([{"x": 0.5}, {"y": 0.5}])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ScoringDatabase([])
        with pytest.raises(ValueError):
            ScoringDatabase([{}])

    def test_ranking_descending(self, tiny_db):
        ranking = tiny_db.ranking(0)
        grades = [it.grade for it in ranking]
        assert grades == sorted(grades, reverse=True)

    def test_skeleton_consistency_round_trip(self, tiny_db):
        assert tiny_db.consistent_with(tiny_db.skeleton())

    def test_inconsistent_skeleton_detected(self, tiny_db):
        # Reverse one permutation: grades become increasing -> inconsistent.
        sk = tiny_db.skeleton()
        bad = Skeleton((tuple(reversed(sk.permutations[0])), sk.permutations[1]))
        assert not tiny_db.consistent_with(bad)

    def test_consistency_with_wrong_population(self, tiny_db):
        other = Skeleton(((1, 2, 3, 4, 5), (5, 4, 3, 2, 1)))
        assert not tiny_db.consistent_with(other)

    def test_has_ties(self):
        assert ScoringDatabase([{"a": 0.5, "b": 0.5}]).has_ties()
        assert not ScoringDatabase([{"a": 0.5, "b": 0.4}]).has_ties()

    def test_from_skeleton(self):
        sk = Skeleton(((2, 1, 3),))
        db = ScoringDatabase.from_skeleton(sk, [[0.9, 0.5, 0.1]])
        assert db.grade(0, 2) == 0.9
        assert db.grade(0, 3) == 0.1
        assert db.consistent_with(sk)

    def test_from_skeleton_rejects_increasing_rows(self):
        sk = Skeleton(((1, 2),))
        with pytest.raises(InconsistentSkeletonError):
            ScoringDatabase.from_skeleton(sk, [[0.1, 0.9]])

    def test_from_skeleton_length_checks(self):
        sk = Skeleton(((1, 2),))
        with pytest.raises(ValueError):
            ScoringDatabase.from_skeleton(sk, [[0.5]])
        with pytest.raises(ValueError):
            ScoringDatabase.from_skeleton(sk, [[0.5, 0.4], [0.5, 0.4]])

    def test_overall_grades(self, tiny_db):
        overall = tiny_db.overall_grades(MINIMUM)
        assert overall.grade("a") == 0.5
        assert overall.grade("e") == pytest.approx(0.1)

    def test_true_top_k(self, tiny_db):
        top2 = tiny_db.true_top_k(MINIMUM, 2)
        assert [it.obj for it in top2] == ["b", "a"]

    def test_session_sources_share_tracker(self, tiny_db):
        session = tiny_db.session()
        session.sources[0].next_sorted()
        session.sources[1].next_sorted()
        assert session.tracker.snapshot().sorted_by_list == (1, 1)

    def test_sessions_are_independent(self, tiny_db):
        s1 = tiny_db.session()
        s1.sources[0].next_sorted()
        s2 = tiny_db.session()
        assert s2.sources[0].position == 0
        assert s2.tracker.snapshot().sum_cost == 0

    def test_repr(self, tiny_db):
        assert "m=2" in repr(tiny_db)


class TestPrefixIntersection:
    def test_identical_lists(self):
        sk = Skeleton(((1, 2, 3), (1, 2, 3)))
        assert prefix_intersection_size(sk, 2) == 2

    def test_disjoint_prefixes(self):
        sk = Skeleton(((1, 2, 3, 4), (4, 3, 2, 1)))
        assert prefix_intersection_size(sk, 1) == 0
        assert prefix_intersection_size(sk, 2) == 0
        assert prefix_intersection_size(sk, 3) == 2
        assert prefix_intersection_size(sk, 4) == 4

    def test_depth_zero(self):
        sk = Skeleton(((1, 2),))
        assert prefix_intersection_size(sk, 0) == 0

    def test_negative_depth_rejected(self):
        sk = Skeleton(((1, 2),))
        with pytest.raises(ValueError):
            prefix_intersection_size(sk, -1)
