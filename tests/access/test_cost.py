"""Tests for the Section 5 cost model (c1*S + c2*R)."""

import pytest

from repro.access.cost import AccessStats, CostModel, CostTracker, combine_stats


class TestCostModel:
    def test_positive_constants_required(self):
        with pytest.raises(ValueError):
            CostModel(sorted_weight=0.0)
        with pytest.raises(ValueError):
            CostModel(random_weight=-1.0)

    def test_weighted_cost(self):
        stats = AccessStats((100, 20), (5, 5))
        model = CostModel(sorted_weight=1.0, random_weight=3.0)
        assert model.cost(stats) == pytest.approx(120 + 3 * 10)

    def test_sandwich_inequality(self):
        """Inequality (1): min(c)*（S+R) <= c1*S+c2*R <= max(c)*(S+R)."""
        stats = AccessStats((7, 13), (2, 8))
        model = CostModel(sorted_weight=2.0, random_weight=5.0)
        sum_cost = stats.sum_cost
        assert 2.0 * sum_cost <= model.cost(stats) <= 5.0 * sum_cost


class TestAccessStats:
    def test_paper_example(self):
        """'the top 100 objects from the first list and the top 20
        objects from the second list … sorted access cost 120'."""
        stats = AccessStats((100, 20), (0, 0))
        assert stats.sorted_cost == 120
        assert stats.random_cost == 0
        assert stats.sum_cost == 120

    def test_max_sorted_depth(self):
        assert AccessStats((100, 20), (0, 0)).max_sorted_depth() == 100

    def test_max_depth_empty_lists(self):
        assert AccessStats((), ()).max_sorted_depth() == 0

    def test_addition(self):
        a = AccessStats((1, 2), (3, 4))
        b = AccessStats((10, 20), (30, 40))
        total = a + b
        assert total.sorted_by_list == (11, 22)
        assert total.random_by_list == (33, 44)

    def test_addition_arity_mismatch(self):
        with pytest.raises(ValueError):
            AccessStats((1,), (1,)) + AccessStats((1, 2), (1, 2))

    def test_default_middleware_cost_is_unweighted(self):
        stats = AccessStats((5, 5), (3, 3))
        assert stats.middleware_cost() == stats.sum_cost

    def test_repr(self):
        assert "S=3" in repr(AccessStats((3,), (0,)))


class TestCostTracker:
    def test_charging(self):
        tracker = CostTracker(2)
        tracker.charge_sorted(0)
        tracker.charge_sorted(0)
        tracker.charge_random(1, amount=3)
        stats = tracker.snapshot()
        assert stats.sorted_by_list == (2, 0)
        assert stats.random_by_list == (0, 3)

    def test_snapshot_is_immutable_copy(self):
        tracker = CostTracker(1)
        before = tracker.snapshot()
        tracker.charge_sorted(0)
        assert before.sorted_cost == 0
        assert tracker.snapshot().sorted_cost == 1

    def test_reset(self):
        tracker = CostTracker(1)
        tracker.charge_random(0)
        tracker.reset()
        assert tracker.snapshot().sum_cost == 0

    def test_needs_a_list(self):
        with pytest.raises(ValueError):
            CostTracker(0)

    def test_negative_charge_rejected(self):
        tracker = CostTracker(1)
        with pytest.raises(ValueError):
            tracker.charge_sorted(0, amount=-1)

    def test_out_of_range_list_index(self):
        tracker = CostTracker(1)
        with pytest.raises(IndexError):
            tracker.charge_sorted(5)


class TestCombineStats:
    def test_combines(self):
        total = combine_stats(
            [AccessStats((1,), (0,)), AccessStats((2,), (3,))]
        )
        assert total.sorted_cost == 3
        assert total.random_cost == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_stats([])
