"""Tests for the batched access protocol on SortedRandomSource.

Batches are an implementation detail of the access layer: a batch of b
sorted (random) accesses must deliver exactly what b unit accesses
deliver and charge exactly what b unit accesses charge.
"""

import pytest

from repro.access.cost import CostTracker
from repro.access.source import (
    InstrumentedSource,
    MaterializedSource,
    SortedRandomSource,
    StreamOnlySource,
    UnbatchedSource,
    rank_items,
    tie_break_key,
)
from repro.exceptions import SubsystemCapabilityError, UnknownObjectError

GRADES = {"a": 0.9, "b": 0.7, "c": 0.5, "d": 0.3, "e": 0.1}


class UnitOnlySource(SortedRandomSource):
    """A minimal adapter implementing only the unit methods."""

    def __init__(self):
        self._inner = MaterializedSource("unit", GRADES)
        self.name = "unit"

    def __len__(self):
        return len(self._inner)

    @property
    def position(self):
        return self._inner.position

    def next_sorted(self):
        return self._inner.next_sorted()

    def random_access(self, obj):
        return self._inner.random_access(obj)

    def restart(self):
        self._inner.restart()


@pytest.fixture(params=["materialized", "unit-only", "unbatched"])
def source(request):
    if request.param == "materialized":
        return MaterializedSource("s", GRADES)
    if request.param == "unit-only":
        return UnitOnlySource()
    return UnbatchedSource(MaterializedSource("s", GRADES))


class TestSortedAccessBatch:
    def test_batch_equals_unit_sequence(self, source):
        reference = MaterializedSource("ref", GRADES)
        expected = [reference.next_sorted() for _ in range(5)]
        got = list(source.sorted_access_batch(2))
        got += list(source.sorted_access_batch(3))
        assert got == expected

    def test_advances_position(self, source):
        source.sorted_access_batch(3)
        assert source.position == 3

    def test_short_batch_at_exhaustion(self, source):
        assert len(source.sorted_access_batch(4)) == 4
        assert len(source.sorted_access_batch(10)) == 1
        assert source.exhausted

    def test_empty_batch_after_exhaustion(self, source):
        source.sorted_access_batch(99)
        assert list(source.sorted_access_batch(5)) == []

    def test_zero_count(self, source):
        assert list(source.sorted_access_batch(0)) == []
        assert source.position == 0

    def test_negative_count_rejected(self, source):
        with pytest.raises(ValueError):
            source.sorted_access_batch(-1)

    def test_restart_resets_batching(self, source):
        first = list(source.sorted_access_batch(2))
        source.restart()
        assert list(source.sorted_access_batch(2)) == first


class TestRandomAccessMany:
    def test_matches_unit_lookups(self, source):
        objs = ["c", "a", "e"]
        assert source.random_access_many(objs) == [
            GRADES["c"],
            GRADES["a"],
            GRADES["e"],
        ]

    def test_empty(self, source):
        assert source.random_access_many([]) == []

    def test_unknown_object(self, source):
        with pytest.raises(UnknownObjectError):
            source.random_access_many(["a", "zzz"])


class TestInstrumentedCharging:
    def make(self):
        tracker = CostTracker(2)
        s0 = InstrumentedSource(MaterializedSource("s0", GRADES), tracker, 0)
        s1 = InstrumentedSource(MaterializedSource("s1", GRADES), tracker, 1)
        return tracker, s0, s1

    def test_batch_charges_unit_equivalent(self):
        tracker, s0, s1 = self.make()
        s0.sorted_access_batch(3)
        s1.sorted_access_batch(2)
        s1.random_access_many(["a", "b", "c"])
        stats = tracker.snapshot()
        assert stats.sorted_by_list == (3, 2)
        assert stats.random_by_list == (0, 3)

    def test_short_batch_charges_what_was_delivered(self):
        tracker, s0, _ = self.make()
        s0.sorted_access_batch(99)
        assert tracker.snapshot().sorted_by_list == (5, 0)

    def test_empty_batch_charges_nothing(self):
        tracker, s0, _ = self.make()
        s0.sorted_access_batch(99)
        s0.sorted_access_batch(5)
        s0.random_access_many([])
        stats = tracker.snapshot()
        assert stats.sorted_by_list == (5, 0)
        assert stats.random_by_list == (0, 0)

    def test_mixed_unit_and_batch_counts_add(self):
        tracker, s0, _ = self.make()
        s0.next_sorted()
        s0.sorted_access_batch(2)
        s0.random_access("a")
        s0.random_access_many(["b", "c"])
        stats = tracker.snapshot()
        assert stats.sorted_by_list == (3, 0)
        assert stats.random_by_list == (3, 0)


class TestStreamOnly:
    def test_sorted_batches_pass_through(self):
        source = StreamOnlySource(MaterializedSource("s", GRADES))
        assert len(source.sorted_access_batch(2)) == 2

    def test_random_access_many_still_refused(self):
        source = StreamOnlySource(MaterializedSource("s", GRADES))
        with pytest.raises(SubsystemCapabilityError):
            source.random_access_many(["a"])


class TestTrustedMint:
    def test_trusted_source_behaves_like_validated(self):
        items = rank_items(GRADES)
        grades = {it.obj: it.grade for it in items}
        trusted = MaterializedSource.trusted("t", items, grades)
        plain = MaterializedSource("p", GRADES)
        assert list(trusted.sorted_access_batch(5)) == list(
            plain.sorted_access_batch(5)
        )
        assert trusted.random_access("d") == plain.random_access("d")
        assert len(trusted) == len(plain)


class TestTieBreakKey:
    def test_integers_sort_numerically(self):
        ranked = rank_items({10: 0.5, 2: 0.5, 1: 0.5})
        assert [it.obj for it in ranked] == [1, 2, 10]

    def test_non_integers_sort_by_repr(self):
        ranked = rank_items({"b": 0.5, "a": 0.5})
        assert [it.obj for it in ranked] == ["a", "b"]

    def test_keys_are_comparable_across_types(self):
        assert sorted(
            [tie_break_key("x"), tie_break_key(3), tie_break_key((1, 2))]
        )[0] == tie_break_key(3)

    def test_bool_not_treated_as_int(self):
        # bools are crisp grades' object ids only in degenerate tests;
        # they take the repr branch so True/False order deterministically.
        assert tie_break_key(True)[0] == 1


class TestUnbatchedWrapper:
    def test_forces_unit_fallback_counts(self):
        tracker = CostTracker(1)
        source = InstrumentedSource(
            UnbatchedSource(MaterializedSource("s", GRADES)), tracker, 0
        )
        batch = source.sorted_access_batch(3)
        assert [it.obj for it in batch] == ["a", "b", "c"]
        assert tracker.snapshot().sorted_by_list == (3,)

    def test_item_identity_with_batched_path(self):
        plain = MaterializedSource("s", GRADES)
        wrapped = UnbatchedSource(MaterializedSource("s", GRADES))
        assert list(plain.sorted_access_batch(5)) == list(
            wrapped.sorted_access_batch(5)
        )
