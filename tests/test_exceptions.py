"""Tests for the exception hierarchy."""


from repro import exceptions as ex


class TestHierarchy:
    ALL_ERRORS = (
        ex.GradeRangeError(1.5),
        ex.UnknownObjectError("x"),
        ex.ExhaustedSourceError("src"),
        ex.InsufficientObjectsError(5, 3),
        ex.AggregationArityError("min", 2, 3),
        ex.InconsistentSkeletonError("bad"),
        ex.ParseError("bad", 3),
        ex.CatalogError("missing"),
        ex.PlanningError("stuck"),
        ex.SubsystemCapabilityError("cannot"),
    )

    def test_all_derive_from_repro_error(self):
        for err in self.ALL_ERRORS:
            assert isinstance(err, ex.ReproError), type(err).__name__

    def test_stdlib_compatibility(self):
        """Dual inheritance lets callers catch stdlib categories."""
        assert isinstance(ex.GradeRangeError(2), ValueError)
        assert isinstance(ex.UnknownObjectError("x"), KeyError)
        assert isinstance(ex.InsufficientObjectsError(2, 1), ValueError)
        assert isinstance(ex.ParseError("x"), ValueError)
        assert isinstance(ex.CatalogError("x"), LookupError)


class TestMessages:
    def test_grade_range_error(self):
        err = ex.GradeRangeError(1.5, context="list 2")
        assert "1.5" in str(err) and "list 2" in str(err)
        assert err.grade == 1.5

    def test_unknown_object(self):
        err = ex.UnknownObjectError("obj-9", source="qbic")
        assert "obj-9" in str(err) and "qbic" in str(err)

    def test_exhausted_source(self):
        assert "anonymous" in str(ex.ExhaustedSourceError())
        assert "colors" in str(ex.ExhaustedSourceError("colors"))

    def test_insufficient_objects(self):
        err = ex.InsufficientObjectsError(10, 4)
        assert "10" in str(err) and "4" in str(err)
        assert (err.k, err.available) == (10, 4)

    def test_aggregation_arity(self):
        err = ex.AggregationArityError("median", 3, 2)
        assert "median" in str(err)

    def test_parse_error_position(self):
        err = ex.ParseError("unexpected", position=7)
        assert "position 7" in str(err)
        assert err.position == 7

    def test_parse_error_without_position(self):
        assert ex.ParseError("oops").position is None
