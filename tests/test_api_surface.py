"""Tests for the public API surface.

Checks that the documented entry points exist, that ``__all__``
declarations are honest (every name importable, no dangling exports),
and that the package's own doctests pass — the cheapest guarantee that
README/docstring examples don't rot.
"""

import doctest
import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.access",
    "repro.algorithms",
    "repro.middleware",
    "repro.subsystems",
    "repro.workloads",
    "repro.analysis",
]

DOCTEST_MODULES = [
    "repro.core.graded_set",
    "repro.core.tnorms",
    "repro.core.means",
    "repro.core.weights",
    "repro.core.parametric",
    "repro.algorithms.median",
    "repro.algorithms.hard_query",
    "repro.algorithms.selection",
    "repro.analysis.bounds",
    "repro.analysis.fitting",
    "repro.analysis.tables",
    "repro.middleware.parser",
    "repro.subsystems.text",
    "repro.workloads.skeletons",
    "repro.workloads.datasets",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_top_level_version():
    import repro

    assert repro.__version__


def test_headline_imports():
    """The README quickstart imports, verbatim."""
    from repro import FaginA0, Garlic, MINIMUM, NaiveAlgorithm  # noqa: F401
    from repro.workloads import independent_database  # noqa: F401


def test_algorithm_names_unique():
    from repro.algorithms import (
        DisjunctionB0,
        EarlyStopFagin,
        FaginA0,
        FaginA0Min,
        MedianTopK,
        NaiveAlgorithm,
        NoRandomAccessAlgorithm,
        ShrunkenFagin,
        ThresholdAlgorithm,
        UllmanAlgorithm,
    )

    names = [
        cls().name
        for cls in (
            DisjunctionB0,
            EarlyStopFagin,
            FaginA0,
            FaginA0Min,
            MedianTopK,
            NaiveAlgorithm,
            NoRandomAccessAlgorithm,
            ShrunkenFagin,
            ThresholdAlgorithm,
            UllmanAlgorithm,
        )
    ]
    assert len(set(names)) == len(names)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.failed == 0, (
        f"{outcome.failed} doctest failure(s) in {module_name}"
    )
    # Modules listed here are expected to actually carry examples.
    assert outcome.attempted > 0, f"no doctests found in {module_name}"
