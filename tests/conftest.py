"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.access.scoring_database import ScoringDatabase
from repro.workloads.datasets import cd_store
from repro.workloads.skeletons import independent_database


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG, fresh per test."""
    return random.Random(1234)


@pytest.fixture
def tiny_db() -> ScoringDatabase:
    """A fixed 2-list, 5-object database with hand-checkable answers.

    Overall min grades: a=0.5, b=0.6, c=0.3, d=0.2, e=0.1 — so the
    top-2 under min are b (0.6) then a (0.5).
    """
    return ScoringDatabase(
        [
            {"a": 0.9, "b": 0.6, "c": 0.3, "d": 0.8, "e": 0.1},
            {"a": 0.5, "b": 0.7, "c": 0.4, "d": 0.2, "e": 0.95},
        ]
    )


@pytest.fixture
def db2() -> ScoringDatabase:
    """An independent 2-list database of moderate size."""
    return independent_database(2, 300, seed=99)


@pytest.fixture
def db3() -> ScoringDatabase:
    """An independent 3-list database of moderate size."""
    return independent_database(3, 200, seed=77)


@pytest.fixture(scope="session")
def albums():
    """The CD-store catalogue used by middleware integration tests."""
    return cd_store(100, seed=5)
