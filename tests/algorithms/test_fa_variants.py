"""Tests for the A0 variants (Section 4's minor improvements)."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_variants import EarlyStopFagin, ShrunkenFagin
from repro.core.aggregation import FunctionAggregation
from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

ALGORITHMS = [EarlyStopFagin(), ShrunkenFagin()]


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.name)
class TestCorrectness:
    def test_tiny_known_answers(self, alg, tiny_db):
        result = alg.top_k(tiny_db.session(), MINIMUM, 2)
        assert result.objects() == ("b", "a")

    def test_matches_ground_truth_min(self, alg, db2):
        truth = db2.overall_grades(MINIMUM)
        result = alg.top_k(db2.session(), MINIMUM, 10)
        assert is_valid_top_k(result.items, truth, 10)

    def test_matches_ground_truth_mean(self, alg, db3):
        truth = db3.overall_grades(ARITHMETIC_MEAN)
        result = alg.top_k(db3.session(), ARITHMETIC_MEAN, 6)
        assert is_valid_top_k(result.items, truth, 6)

    def test_many_seeds(self, alg):
        for seed in range(15):
            db = independent_database(3, 50, seed=seed)
            truth = db.overall_grades(MINIMUM)
            result = alg.top_k(db.session(), MINIMUM, 4)
            assert is_valid_top_k(result.items, truth, 4), f"seed {seed}"

    def test_rejects_non_monotone(self, alg, tiny_db):
        bad = FunctionAggregation(lambda *g: 0.5, "flat", monotone=False)
        with pytest.raises(ValueError, match="monotone"):
            alg.top_k(tiny_db.session(), bad, 1)


class TestEarlyStopSavings:
    def test_never_more_sorted_accesses(self):
        for seed in range(10):
            db = independent_database(3, 300, seed=seed)
            full = FaginA0().top_k(db.session(), MINIMUM, 5)
            early = EarlyStopFagin().top_k(db.session(), MINIMUM, 5)
            assert early.stats.sorted_cost <= full.stats.sorted_cost

    def test_saves_at_most_m_minus_one(self):
        for seed in range(10):
            db = independent_database(3, 300, seed=seed)
            full = FaginA0().top_k(db.session(), MINIMUM, 5)
            early = EarlyStopFagin().top_k(db.session(), MINIMUM, 5)
            assert full.stats.sorted_cost - early.stats.sorted_cost <= 2


class TestShrunkenSavings:
    def test_same_sorted_cost_as_a0(self, db2):
        """The shrink happens after the sorted phase is paid for."""
        full = FaginA0().top_k(db2.session(), MINIMUM, 10)
        shrunk = ShrunkenFagin().top_k(db2.session(), MINIMUM, 10)
        assert shrunk.stats.sorted_cost == full.stats.sorted_cost

    def test_never_more_random_accesses(self):
        for seed in range(10):
            db = independent_database(2, 400, seed=seed)
            full = FaginA0().top_k(db.session(), MINIMUM, 10)
            shrunk = ShrunkenFagin().top_k(db.session(), MINIMUM, 10)
            assert shrunk.stats.random_cost <= full.stats.random_cost

    def test_depths_bounded_by_t(self, db2):
        result = ShrunkenFagin().top_k(db2.session(), MINIMUM, 10)
        assert all(ti <= result.details["T"] for ti in result.details["Ti"])

    def test_shrunken_prefixes_still_intersect_in_k(self, db2):
        """The correctness precondition: |∩ X^i_{Ti}| >= k."""
        result = ShrunkenFagin().top_k(db2.session(), MINIMUM, 10)
        depths = result.details["Ti"]
        sk = db2.skeleton()
        prefixes = [set(sk.prefix(i, d)) for i, d in enumerate(depths)]
        common = set.intersection(*prefixes)
        assert len(common) >= 10
