"""Tests for the top-k contract machinery."""

import pytest

from repro.access.cost import AccessStats
from repro.access.types import GradedItem
from repro.algorithms.base import TopKResult, is_valid_top_k, top_k_of
from repro.algorithms.fa import FaginA0
from repro.core.graded_set import GradedSet
from repro.core.tnorms import MINIMUM
from repro.exceptions import InsufficientObjectsError


class TestTopKResult:
    def _result(self):
        return TopKResult(
            items=(GradedItem("a", 0.9), GradedItem("b", 0.5)),
            stats=AccessStats((3, 3), (1, 1)),
            algorithm="test",
        )

    def test_k(self):
        assert self._result().k == 2

    def test_objects_and_grades(self):
        r = self._result()
        assert r.objects() == ("a", "b")
        assert r.grades() == (0.9, 0.5)

    def test_as_graded_set(self):
        gs = self._result().as_graded_set()
        assert isinstance(gs, GradedSet)
        assert gs.grade("a") == 0.9

    def test_repr(self):
        assert "S=6" in repr(self._result())


class TestTopKOf:
    def test_selects_highest(self):
        top = top_k_of({"a": 0.1, "b": 0.9, "c": 0.5}, 2)
        assert [it.obj for it in top] == ["b", "c"]

    def test_deterministic_ties(self):
        top = top_k_of({"b": 0.5, "a": 0.5}, 1)
        assert top[0].obj == "a"


class TestIsValidTopK:
    def test_accepts_correct_answer(self):
        truth = GradedSet({"a": 0.9, "b": 0.5, "c": 0.1})
        items = (GradedItem("a", 0.9), GradedItem("b", 0.5))
        assert is_valid_top_k(items, truth, 2)

    def test_accepts_any_tie_break(self):
        truth = GradedSet({"a": 0.5, "b": 0.5, "c": 0.1})
        assert is_valid_top_k((GradedItem("a", 0.5),), truth, 1)
        assert is_valid_top_k((GradedItem("b", 0.5),), truth, 1)

    def test_rejects_wrong_size(self):
        truth = GradedSet({"a": 0.9, "b": 0.5})
        assert not is_valid_top_k((GradedItem("a", 0.9),), truth, 2)

    def test_rejects_duplicates(self):
        truth = GradedSet({"a": 0.9, "b": 0.5})
        items = (GradedItem("a", 0.9), GradedItem("a", 0.9))
        assert not is_valid_top_k(items, truth, 2)

    def test_rejects_wrong_grade(self):
        truth = GradedSet({"a": 0.9, "b": 0.5})
        assert not is_valid_top_k((GradedItem("a", 0.8),), truth, 1)

    def test_rejects_dominated_answer(self):
        truth = GradedSet({"a": 0.9, "b": 0.5})
        assert not is_valid_top_k((GradedItem("b", 0.5),), truth, 1)

    def test_rejects_unknown_object(self):
        truth = GradedSet({"a": 0.9})
        assert not is_valid_top_k((GradedItem("zzz", 0.9),), truth, 1)


class TestArgumentValidation:
    def test_k_must_be_positive(self, tiny_db):
        with pytest.raises(ValueError):
            FaginA0().top_k(tiny_db.session(), MINIMUM, 0)

    def test_k_bounded_by_n(self, tiny_db):
        with pytest.raises(InsufficientObjectsError):
            FaginA0().top_k(tiny_db.session(), MINIMUM, 6)

    def test_stats_are_run_delta(self, tiny_db):
        """Re-running on a dirty session reports only the new accesses."""
        session = tiny_db.session()
        first = FaginA0().top_k(session, MINIMUM, 1)
        session.restart_all()
        second = FaginA0().top_k(session, MINIMUM, 1)
        assert second.stats.sum_cost == first.stats.sum_cost
        total = session.tracker.snapshot()
        assert total.sum_cost == first.stats.sum_cost + second.stats.sum_cost
