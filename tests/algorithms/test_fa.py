"""Tests for algorithm A0 (Fagin's Algorithm) — Theorem 4.2 territory."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.fa import FaginA0, IncrementalFagin, run_sorted_phase
from repro.algorithms.naive import NaiveAlgorithm
from repro.core.aggregation import FunctionAggregation
from repro.core.means import ARITHMETIC_MEAN, GEOMETRIC_MEAN
from repro.core.tnorms import ALGEBRAIC_PRODUCT, BOUNDED_DIFFERENCE, MINIMUM
from repro.exceptions import InsufficientObjectsError
from repro.workloads.skeletons import independent_database


class TestSortedPhase:
    def test_waits_for_k_matches(self, tiny_db):
        session = tiny_db.session()
        state = run_sorted_phase(session, 2)
        assert len(state.matched) >= 2
        # Uniform depth: both lists advanced equally.
        lens = {len(order) for order in state.order_by_list}
        assert len(lens) == 1
        assert state.depth == lens.pop()

    def test_match_depth_agrees_with_skeleton(self, db2):
        session = db2.session()
        state = run_sorted_phase(session, 5)
        assert state.depth == db2.skeleton().match_depth(5)

    def test_grades_recorded_per_list(self, tiny_db):
        session = tiny_db.session()
        state = run_sorted_phase(session, 1)
        for obj in state.matched:
            assert set(state.seen[obj]) == {0, 1}

    def test_exhaustion_when_k_equals_n(self, tiny_db):
        session = tiny_db.session()
        state = run_sorted_phase(session, 5)
        assert len(state.matched) == 5
        assert state.depth == 5


class TestCorrectness:
    def test_tiny_known_answers(self, tiny_db):
        result = FaginA0().top_k(tiny_db.session(), MINIMUM, 2)
        assert result.objects() == ("b", "a")

    @pytest.mark.parametrize(
        "aggregation",
        [MINIMUM, ALGEBRAIC_PRODUCT, BOUNDED_DIFFERENCE, ARITHMETIC_MEAN,
         GEOMETRIC_MEAN],
        ids=lambda a: a.name,
    )
    def test_matches_naive_for_monotone_aggregations(self, db2, aggregation):
        """Theorem 4.2: A0 is correct for every monotone query."""
        truth = db2.overall_grades(aggregation)
        result = FaginA0().top_k(db2.session(), aggregation, 10)
        assert is_valid_top_k(result.items, truth, 10)

    def test_three_lists(self, db3):
        truth = db3.overall_grades(MINIMUM)
        result = FaginA0().top_k(db3.session(), MINIMUM, 7)
        assert is_valid_top_k(result.items, truth, 7)

    def test_k_equals_n(self, tiny_db):
        result = FaginA0().top_k(tiny_db.session(), MINIMUM, 5)
        assert is_valid_top_k(
            result.items, tiny_db.overall_grades(MINIMUM), 5
        )

    def test_rejects_declared_non_monotone(self, tiny_db):
        bad = FunctionAggregation(
            lambda *g: 1.0 - min(g), "anti-min", monotone=False
        )
        with pytest.raises(ValueError, match="monotone"):
            FaginA0().top_k(tiny_db.session(), bad, 1)

    def test_trust_caller_override(self, tiny_db):
        """trust_caller lets a caller run a misdeclared aggregation."""
        secretly_fine = FunctionAggregation(
            lambda *g: min(g), "min-undeclared", monotone=False
        )
        result = FaginA0(trust_caller=True).top_k(
            tiny_db.session(), secretly_fine, 2
        )
        assert result.objects() == ("b", "a")


class TestCost:
    def test_sublinear_on_independent_lists(self):
        """The headline: ~2*sqrt(N*k) total vs naive's 2*N (m = 2)."""
        db = independent_database(2, 2000, seed=42)
        a0 = FaginA0().top_k(db.session(), MINIMUM, 10)
        naive = NaiveAlgorithm().top_k(db.session(), MINIMUM, 10)
        assert a0.stats.sum_cost < naive.stats.sum_cost / 3

    def test_sorted_cost_is_m_times_depth(self, db2):
        result = FaginA0().top_k(db2.session(), MINIMUM, 5)
        assert result.stats.sorted_cost == 2 * result.details["T"]

    def test_no_duplicate_random_accesses(self, db2):
        """Objects seen in list j by sorted access are not re-fetched."""
        result = FaginA0().top_k(db2.session(), MINIMUM, 5)
        seen = result.details["seen"]
        sorted_cost = result.stats.sorted_cost
        # Every random access fills a genuinely missing grade:
        # R = m * seen - (grades already known from sorted access).
        assert result.stats.random_cost == 2 * seen - sorted_cost

    def test_details_present(self, db2):
        result = FaginA0().top_k(db2.session(), MINIMUM, 3)
        assert result.details["matches"] >= 3
        assert result.details["T"] >= 1
        assert result.details["seen"] >= result.details["matches"]


class TestIncremental:
    def test_next_batches_concatenate_to_full_ranking(self, db2):
        inc = IncrementalFagin(db2.session(), MINIMUM)
        batches = [inc.next_batch(10) for _ in range(3)]
        combined = [it for batch in batches for it in batch.items]
        truth = db2.true_top_k(MINIMUM, 30)
        # Grades must agree position by position (objects may differ
        # only under ties).
        assert [it.grade for it in combined] == pytest.approx(
            [it.grade for it in truth]
        )

    def test_deep_paging_stays_exact(self):
        """Regression: a resumed sorted phase must not count an object
        random-filled by an earlier batch as matched on its first
        sorted delivery. That premature match stopped the phase early
        and broke the exact-prefix guarantee — but only at N large
        enough that pages keep extending the sorted phase."""
        from repro.workloads.skeletons import independent_database

        db = independent_database(3, 10_000, seed=42)
        truth = db.true_top_k(MINIMUM, 80)
        inc = IncrementalFagin(db.session(), MINIMUM)
        combined = []
        for _ in range(8):
            combined.extend(inc.next_batch(10).items)
        assert [it.grade for it in combined] == [it.grade for it in truth]

    def test_batches_do_not_repeat_objects(self, db2):
        inc = IncrementalFagin(db2.session(), MINIMUM)
        first = inc.next_batch(8)
        second = inc.next_batch(8)
        assert not set(first.objects()) & set(second.objects())

    def test_continuation_is_cheaper_than_restart(self, db2):
        """'Continue where we left off' reuses prior sorted progress."""
        inc = IncrementalFagin(db2.session(), MINIMUM)
        inc.next_batch(10)
        continuation = inc.next_batch(10)

        fresh = FaginA0().top_k(db2.session(), MINIMUM, 20)
        assert continuation.stats.sum_cost < fresh.stats.sum_cost

    def test_returned_tracking(self, db2):
        inc = IncrementalFagin(db2.session(), MINIMUM)
        batch = inc.next_batch(4)
        assert inc.returned == batch.objects()

    def test_exhausting_the_database(self, tiny_db):
        inc = IncrementalFagin(tiny_db.session(), MINIMUM)
        inc.next_batch(3)
        inc.next_batch(2)
        with pytest.raises(InsufficientObjectsError):
            inc.next_batch(1)

    def test_k_validation(self, tiny_db):
        inc = IncrementalFagin(tiny_db.session(), MINIMUM)
        with pytest.raises(ValueError):
            inc.next_batch(0)

    def test_requires_monotone(self, tiny_db):
        bad = FunctionAggregation(lambda *g: 0.5, "flat", monotone=False)
        with pytest.raises(ValueError):
            IncrementalFagin(tiny_db.session(), bad)
