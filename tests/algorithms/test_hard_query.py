"""Tests for the Section 7 hard query Q AND NOT Q."""

import random

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.fa import FaginA0
from repro.algorithms.hard_query import (
    SelfNegatedScan,
    hard_query_depth,
    self_negated_lists,
)
from repro.algorithms.naive import NaiveAlgorithm
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.workloads.correlated import hard_query_database


class TestConstruction:
    def test_lists_are_negations(self, rng):
        q, not_q = self_negated_lists(50, rng)
        for obj in q:
            assert not_q[obj] == pytest.approx(1.0 - q[obj])

    def test_grades_distinct_and_fully_fuzzy(self, rng):
        q, _ = self_negated_lists(100, rng)
        values = list(q.values())
        assert len(set(values)) == 100
        assert all(0.0 < g < 1.0 for g in values)

    def test_database_skeleton_is_reversed(self, rng):
        db = hard_query_database(30, rng)
        sk = db.skeleton()
        assert sk.permutations[1] == tuple(reversed(sk.permutations[0]))

    def test_peak_grade_at_most_half(self, rng):
        """Section 7: 1/2 is the maximal possible value of Q AND NOT Q."""
        db = hard_query_database(60, rng)
        overall = db.overall_grades(MINIMUM)
        assert max(g for _, g in overall) <= 0.5

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            self_negated_lists(0, rng)


class TestHardQueryDepth:
    @pytest.mark.parametrize(
        "n,k,expected", [(100, 1, 51), (10, 1, 6), (100, 10, 55), (7, 1, 4)]
    )
    def test_closed_form(self, n, k, expected):
        assert hard_query_depth(n, k) == expected

    def test_matches_actual_skeleton(self, rng):
        db = hard_query_database(40, rng)
        assert db.skeleton().match_depth(1) == hard_query_depth(40, 1)

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            hard_query_depth(5, 6)


class TestLinearCost:
    def test_a0_degrades_to_linear(self, rng):
        """A0 is correct here but must read past N/2 of each list."""
        n = 200
        db = hard_query_database(n, rng)
        result = FaginA0().top_k(db.session(), MINIMUM, 1)
        assert result.details["T"] >= n // 2
        assert result.stats.sum_cost >= n  # Theorem 7.1's Omega(N)

    def test_a0_still_correct(self, rng):
        db = hard_query_database(150, rng)
        truth = db.overall_grades(MINIMUM)
        result = FaginA0().top_k(db.session(), MINIMUM, 3)
        assert is_valid_top_k(result.items, truth, 3)

    def test_naive_cost_is_2n(self, rng):
        db = hard_query_database(100, rng)
        result = NaiveAlgorithm().top_k(db.session(), MINIMUM, 1)
        assert result.stats.sum_cost == 200


class TestSelfNegatedScan:
    def test_finds_the_peak(self, rng):
        db = hard_query_database(120, rng)
        truth = db.overall_grades(MINIMUM)
        result = SelfNegatedScan().top_k(db.session(), MINIMUM, 1)
        assert is_valid_top_k(result.items, truth, 1)

    def test_costs_exactly_n(self, rng):
        n = 80
        db = hard_query_database(n, rng)
        result = SelfNegatedScan().top_k(db.session(), MINIMUM, 1)
        assert result.stats.sorted_cost == n
        assert result.stats.random_cost == 0

    def test_top_k(self, rng):
        db = hard_query_database(90, rng)
        truth = db.overall_grades(MINIMUM)
        result = SelfNegatedScan().top_k(db.session(), MINIMUM, 5)
        assert is_valid_top_k(result.items, truth, 5)

    def test_verification_passes_on_honest_database(self, rng):
        db = hard_query_database(50, rng)
        result = SelfNegatedScan(verify=True).top_k(db.session(), MINIMUM, 2)
        assert result.k == 2

    def test_verification_catches_dishonest_database(self, rng):
        """List 2 is NOT the negation: the contract check must fire."""
        from repro.access.scoring_database import ScoringDatabase

        q, _ = self_negated_lists(30, rng)
        shuffled = dict(zip(q, random.Random(3).sample(list(q.values()), 30)))
        db = ScoringDatabase([q, shuffled])
        with pytest.raises(ValueError, match="negation"):
            SelfNegatedScan(verify=True).top_k(db.session(), MINIMUM, 1)

    def test_requires_min(self, rng):
        db = hard_query_database(30, rng)
        with pytest.raises(ValueError, match="min"):
            SelfNegatedScan().top_k(db.session(), ALGEBRAIC_PRODUCT, 1)

    def test_requires_two_lists(self, db3):
        with pytest.raises(ValueError, match="two lists"):
            SelfNegatedScan().top_k(db3.session(), MINIMUM, 1)
