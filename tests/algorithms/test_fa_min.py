"""Tests for algorithm A0' (Theorem 4.4, Proposition 4.3)."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.workloads.skeletons import independent_database


class TestCorrectness:
    def test_tiny_known_answers(self, tiny_db):
        result = FaginA0Min().top_k(tiny_db.session(), MINIMUM, 2)
        assert result.objects() == ("b", "a")

    def test_matches_ground_truth(self, db2):
        truth = db2.overall_grades(MINIMUM)
        result = FaginA0Min().top_k(db2.session(), MINIMUM, 10)
        assert is_valid_top_k(result.items, truth, 10)

    def test_three_lists(self, db3):
        truth = db3.overall_grades(MINIMUM)
        result = FaginA0Min().top_k(db3.session(), MINIMUM, 6)
        assert is_valid_top_k(result.items, truth, 6)

    def test_many_seeds(self):
        for seed in range(20):
            db = independent_database(2, 60, seed=seed)
            truth = db.overall_grades(MINIMUM)
            result = FaginA0Min().top_k(db.session(), MINIMUM, 3)
            assert is_valid_top_k(result.items, truth, 3), f"seed {seed}"

    def test_rejects_non_min_aggregation(self, tiny_db):
        """A0' is only stated for the standard fuzzy conjunction."""
        with pytest.raises(ValueError, match="min"):
            FaginA0Min().top_k(tiny_db.session(), ALGEBRAIC_PRODUCT, 1)

    def test_k_equals_n(self, tiny_db):
        result = FaginA0Min().top_k(tiny_db.session(), MINIMUM, 5)
        assert is_valid_top_k(
            result.items, tiny_db.overall_grades(MINIMUM), 5
        )


class TestCandidates:
    def test_candidates_subset_of_one_list_prefix(self, db2):
        result = FaginA0Min().top_k(db2.session(), MINIMUM, 5)
        assert result.details["candidates"] <= result.details["T"]

    def test_candidates_at_least_k(self, db2):
        """L is a subset of the candidates, so there are >= k of them."""
        result = FaginA0Min().top_k(db2.session(), MINIMUM, 5)
        assert result.details["candidates"] >= 5

    def test_g0_is_a_real_overall_grade(self, db2):
        result = FaginA0Min().top_k(db2.session(), MINIMUM, 5)
        g0 = result.details["g0"]
        overall = db2.overall_grades(MINIMUM)
        assert any(
            abs(overall.grade(obj) - g0) < 1e-12 for obj in db2.objects
        )


class TestCostComparison:
    def test_same_sorted_cost_as_a0(self, db2):
        """The sorted phase is identical — only random access shrinks."""
        a0 = FaginA0().top_k(db2.session(), MINIMUM, 10)
        a0p = FaginA0Min().top_k(db2.session(), MINIMUM, 10)
        assert a0p.stats.sorted_cost == a0.stats.sorted_cost

    def test_never_more_random_accesses_than_a0(self):
        for seed in range(10):
            db = independent_database(2, 400, seed=seed)
            a0 = FaginA0().top_k(db.session(), MINIMUM, 10)
            a0p = FaginA0Min().top_k(db.session(), MINIMUM, 10)
            assert a0p.stats.random_cost <= a0.stats.random_cost

    def test_strictly_fewer_random_accesses_typically(self):
        db = independent_database(2, 1000, seed=5)
        a0 = FaginA0().top_k(db.session(), MINIMUM, 10)
        a0p = FaginA0Min().top_k(db.session(), MINIMUM, 10)
        assert a0p.stats.random_cost < a0.stats.random_cost
