"""Focused tests for A0's sorted-phase machinery, incl. resumption."""


from repro.algorithms.fa import SortedPhaseState, run_sorted_phase
from repro.workloads.skeletons import independent_database


class TestResumption:
    def test_resume_extends_rather_than_restarts(self, db2):
        session = db2.session()
        state = run_sorted_phase(session, 3)
        depth_after_3 = state.depth
        cost_after_3 = session.tracker.snapshot().sorted_cost

        run_sorted_phase(session, 8, state=state)
        assert state.depth >= depth_after_3
        extra = session.tracker.snapshot().sorted_cost - cost_after_3
        # Resumption pays only the marginal depth, not a fresh run.
        assert extra == 2 * (state.depth - depth_after_3)

    def test_resumed_state_equals_one_shot(self, db2):
        resumed_session = db2.session()
        state = run_sorted_phase(resumed_session, 3)
        run_sorted_phase(resumed_session, 8, state=state)

        fresh_session = db2.session()
        fresh = run_sorted_phase(fresh_session, 8)

        assert state.depth == fresh.depth
        assert state.matched == fresh.matched
        assert state.seen == fresh.seen

    def test_no_op_when_target_already_met(self, db2):
        session = db2.session()
        state = run_sorted_phase(session, 5)
        before = session.tracker.snapshot().sorted_cost
        run_sorted_phase(session, 5, state=state)
        assert session.tracker.snapshot().sorted_cost == before

    def test_fresh_state_created_when_none(self, db2):
        state = run_sorted_phase(db2.session(), 2)
        assert isinstance(state, SortedPhaseState)
        assert len(state.matched) >= 2


class TestInvariants:
    def test_matched_objects_seen_everywhere(self, db3):
        state = run_sorted_phase(db3.session(), 6)
        for obj in state.matched:
            assert set(state.seen[obj]) == {0, 1, 2}

    def test_order_by_list_matches_rankings(self, db2):
        state = run_sorted_phase(db2.session(), 4)
        for i in range(2):
            expected = [it.obj for it in db2.ranking(i)[: state.depth]]
            assert state.order_by_list[i] == expected

    def test_seen_grades_are_true_grades(self, db2):
        state = run_sorted_phase(db2.session(), 4)
        for obj, by_list in state.seen.items():
            for i, grade in by_list.items():
                assert grade == db2.grade(i, obj)

    def test_mid_round_stop_saves_at_most_m_minus_one(self, db3):
        full_state = run_sorted_phase(db3.session(), 5)
        session = db3.session()
        run_sorted_phase(session, 5, stop_mid_round=True)
        full_cost = 3 * full_state.depth
        early_cost = session.tracker.snapshot().sorted_cost
        assert full_cost - 2 <= early_cost <= full_cost

    def test_depth_matches_skeleton_match_depth(self):
        for seed in range(10):
            db = independent_database(2, 120, seed=seed)
            state = run_sorted_phase(db.session(), 4)
            assert state.depth == db.skeleton().match_depth(4)
