"""Tests for the No-Random-Access algorithm (extension)."""

import pytest

from repro.access.session import MiddlewareSession
from repro.access.source import MaterializedSource, StreamOnlySource
from repro.algorithms.base import is_valid_top_k
from repro.algorithms.fa import FaginA0
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.core.aggregation import FunctionAggregation
from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.exceptions import SubsystemCapabilityError
from repro.workloads.skeletons import independent_database


class TestCorrectness:
    def test_tiny_known_answers(self, tiny_db):
        result = NoRandomAccessAlgorithm().top_k(tiny_db.session(), MINIMUM, 2)
        assert result.objects() == ("b", "a")

    @pytest.mark.parametrize(
        "aggregation",
        [MINIMUM, ALGEBRAIC_PRODUCT, ARITHMETIC_MEAN],
        ids=lambda a: a.name,
    )
    def test_matches_ground_truth(self, db2, aggregation):
        truth = db2.overall_grades(aggregation)
        result = NoRandomAccessAlgorithm().top_k(db2.session(), aggregation, 10)
        assert is_valid_top_k(result.items, truth, 10)

    def test_three_lists(self, db3):
        truth = db3.overall_grades(MINIMUM)
        result = NoRandomAccessAlgorithm().top_k(db3.session(), MINIMUM, 6)
        assert is_valid_top_k(result.items, truth, 6)

    def test_many_seeds(self):
        for seed in range(20):
            db = independent_database(2, 70, seed=seed)
            truth = db.overall_grades(MINIMUM)
            result = NoRandomAccessAlgorithm().top_k(db.session(), MINIMUM, 5)
            assert is_valid_top_k(result.items, truth, 5), f"seed {seed}"

    def test_k_equals_n(self, tiny_db):
        result = NoRandomAccessAlgorithm().top_k(tiny_db.session(), MINIMUM, 5)
        assert is_valid_top_k(
            result.items, tiny_db.overall_grades(MINIMUM), 5
        )

    def test_rejects_non_monotone(self, tiny_db):
        bad = FunctionAggregation(lambda *g: 0.5, "flat", monotone=False)
        with pytest.raises(ValueError, match="monotone"):
            NoRandomAccessAlgorithm().top_k(tiny_db.session(), bad, 1)


class TestSortedOnlyContract:
    def test_zero_random_accesses(self, db2):
        result = NoRandomAccessAlgorithm().top_k(db2.session(), MINIMUM, 10)
        assert result.stats.random_cost == 0

    def test_runs_on_stream_only_sources(self, db2):
        """The whole point: works where random access raises."""
        raw = [
            StreamOnlySource(MaterializedSource(f"l{i}", db2.ranking(i)))
            for i in range(db2.num_lists)
        ]
        session = MiddlewareSession.over_sources(
            raw, num_objects=db2.num_objects
        )
        truth = db2.overall_grades(MINIMUM)
        result = NoRandomAccessAlgorithm().top_k(session, MINIMUM, 5)
        assert is_valid_top_k(result.items, truth, 5)

    def test_fa_fails_on_stream_only_sources(self, db2):
        raw = [
            StreamOnlySource(MaterializedSource(f"l{i}", db2.ranking(i)))
            for i in range(db2.num_lists)
        ]
        session = MiddlewareSession.over_sources(
            raw, num_objects=db2.num_objects
        )
        with pytest.raises(SubsystemCapabilityError):
            FaginA0().top_k(session, MINIMUM, 5)


class TestCostShape:
    def test_deeper_sorted_phase_than_fa(self, db2):
        """NRA must certify upper bounds, so it reads deeper than A0."""
        nra = NoRandomAccessAlgorithm().top_k(db2.session(), MINIMUM, 10)
        fa = FaginA0().top_k(db2.session(), MINIMUM, 10)
        assert nra.stats.max_sorted_depth() >= fa.details["T"]

    def test_often_cheaper_in_total_unweighted_cost(self):
        """Skipping the random phase usually wins at c1 = c2."""
        wins = 0
        for seed in range(10):
            db = independent_database(2, 800, seed=seed)
            nra = NoRandomAccessAlgorithm().top_k(db.session(), MINIMUM, 10)
            fa = FaginA0().top_k(db.session(), MINIMUM, 10)
            wins += nra.stats.sum_cost < fa.stats.sum_cost
        assert wins >= 7

    def test_details(self, db2):
        result = NoRandomAccessAlgorithm().top_k(db2.session(), MINIMUM, 5)
        assert result.details["exact"] >= 5
        assert result.details["seen"] >= result.details["exact"]
        assert result.details["rounds"] == result.stats.max_sorted_depth()

    def test_exhaustion_fallback(self):
        """Bound never certifies early on a 2-object database: still
        correct after exhausting the lists."""
        from repro.access.scoring_database import ScoringDatabase

        db = ScoringDatabase(
            [{"a": 0.9, "b": 0.8}, {"a": 0.8, "b": 0.9}]
        )
        truth = db.overall_grades(MINIMUM)
        result = NoRandomAccessAlgorithm().top_k(db.session(), MINIMUM, 2)
        assert is_valid_top_k(result.items, truth, 2)
