"""Tests for Ullman's algorithm (Section 9)."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.ullman import UllmanAlgorithm
from repro.core.aggregation import FunctionAggregation
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.workloads.distributions import Capped, Uniform
from repro.workloads.skeletons import independent_database


class TestCorrectness:
    def test_tiny_top1(self, tiny_db):
        result = UllmanAlgorithm().top_k(tiny_db.session(), MINIMUM, 1)
        assert result.objects() == ("b",)

    def test_threshold_rule_top_k(self, db2):
        truth = db2.overall_grades(MINIMUM)
        result = UllmanAlgorithm().top_k(db2.session(), MINIMUM, 10)
        assert is_valid_top_k(result.items, truth, 10)

    def test_paper_rule_top1(self, db2):
        truth = db2.overall_grades(MINIMUM)
        result = UllmanAlgorithm(stop_rule="paper").top_k(
            db2.session(), MINIMUM, 1
        )
        assert is_valid_top_k(result.items, truth, 1)

    def test_paper_rule_many_seeds(self):
        for seed in range(20):
            db = independent_database(2, 80, seed=seed)
            truth = db.overall_grades(MINIMUM)
            result = UllmanAlgorithm(stop_rule="paper").top_k(
                db.session(), MINIMUM, 1
            )
            assert is_valid_top_k(result.items, truth, 1), f"seed {seed}"

    def test_paper_rule_requires_k1(self, db2):
        with pytest.raises(ValueError, match="k = 1"):
            UllmanAlgorithm(stop_rule="paper").top_k(db2.session(), MINIMUM, 5)

    def test_three_lists_threshold(self, db3):
        truth = db3.overall_grades(MINIMUM)
        result = UllmanAlgorithm().top_k(db3.session(), MINIMUM, 5)
        assert is_valid_top_k(result.items, truth, 5)

    def test_other_tnorm(self, db2):
        truth = db2.overall_grades(ALGEBRAIC_PRODUCT)
        result = UllmanAlgorithm().top_k(db2.session(), ALGEBRAIC_PRODUCT, 5)
        assert is_valid_top_k(result.items, truth, 5)

    def test_sorted_list_choice(self, db2):
        truth = db2.overall_grades(MINIMUM)
        result = UllmanAlgorithm(sorted_list=1).top_k(db2.session(), MINIMUM, 5)
        assert is_valid_top_k(result.items, truth, 5)

    def test_invalid_configuration(self, db2):
        with pytest.raises(ValueError):
            UllmanAlgorithm(stop_rule="nonsense")
        with pytest.raises(ValueError):
            UllmanAlgorithm(sorted_list=9).top_k(db2.session(), MINIMUM, 1)

    def test_rejects_non_monotone(self, db2):
        bad = FunctionAggregation(lambda *g: 0.5, "flat", monotone=False)
        with pytest.raises(ValueError, match="monotone"):
            UllmanAlgorithm().top_k(db2.session(), bad, 1)


class TestSection9Regimes:
    def test_capped_lead_list_stops_fast(self):
        """Grades of A1 capped at 0.9, A2 uniform: expected <= 10 seen."""
        db = independent_database(
            2, 5000, seed=21, distributions=[Capped(0.9), Uniform()]
        )
        result = UllmanAlgorithm(stop_rule="paper").top_k(
            db.session(), MINIMUM, 1
        )
        # Expectation is <= 10; allow generous slack for a single draw.
        assert result.details["objects_seen"] <= 120

    def test_uniform_regime_is_not_constant(self):
        """Landau: both uniform -> Theta(sqrt(N)) expected stopping."""
        import statistics

        seen = []
        for seed in range(30):
            db = independent_database(2, 2500, seed=seed)
            result = UllmanAlgorithm(stop_rule="paper").top_k(
                db.session(), MINIMUM, 1
            )
            seen.append(result.details["objects_seen"])
        mean_seen = statistics.fmean(seen)
        # sqrt(2500) = 50; the mean should be in the tens, far above the
        # capped regime's handful and far below linear.
        assert 10 <= mean_seen <= 250

    def test_accesses_per_object_seen(self, db2):
        """Each object seen costs 1 sorted + (m-1) random accesses."""
        result = UllmanAlgorithm().top_k(db2.session(), MINIMUM, 5)
        seen = result.details["objects_seen"]
        assert result.stats.sorted_cost == seen
        assert result.stats.random_cost == seen


class TestExhaustion:
    def test_degenerate_no_early_stop(self):
        """If the stop never triggers, the scan completes and is correct."""
        # List 0 all-1 grades: ceiling never drops below 1 until the end.
        db_lists = [
            {i: 1.0 for i in range(1, 21)},
            {i: (21 - i) / 40 for i in range(1, 21)},
        ]
        from repro.access.scoring_database import ScoringDatabase

        db = ScoringDatabase(db_lists)
        truth = db.overall_grades(MINIMUM)
        result = UllmanAlgorithm().top_k(db.session(), MINIMUM, 3)
        assert is_valid_top_k(result.items, truth, 3)
