"""Parity suite: batched and unit-step access paths are equivalent.

Every algorithm is run on four backings of the same scoring database:

* ``unit`` — sources wrapped in :class:`UnbatchedSource`, so every
  batched call decomposes into the unit accesses the pre-batching
  implementations performed;
* ``row`` — plain ``ScoringDatabase`` sessions (``MaterializedSource``
  with its slice-based batch overrides);
* ``columnar`` — ``ColumnarScoringDatabase`` sessions (numpy columns,
  shared rank orders, vectorized computation phases downstream);
* ``federated`` — the same lists served by a batch-capable
  :class:`~repro.subsystems.synthetic.SyntheticSubsystem` through
  ``evaluate_batched`` with a deliberately awkward page size, so every
  protocol exchange is paged.

All four must produce identical top-k answers and identical per-list
sorted/random access counts; ``IncrementalFagin`` must additionally
resume identically batch after batch.
"""

import pytest

from repro.access import (
    ColumnarScoringDatabase,
    MaterializedSource,
    MiddlewareSession,
    UnbatchedSource,
)
from repro.core.query import AtomicQuery
from repro.subsystems.synthetic import SyntheticSubsystem
from repro.algorithms.fa import FaginA0, IncrementalFagin
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.fa_variants import EarlyStopFagin, ShrunkenFagin
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.core.aggregation import AggregationFunction
from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import MINIMUM
from repro.workloads.correlated import correlated_database
from repro.workloads.skeletons import independent_database

DATABASES = {
    "independent-m3": lambda: independent_database(3, 240, seed=13),
    "correlated+0.7-m2": lambda: correlated_database(2, 200, 0.7, seed=31),
    "correlated-0.5-m3": lambda: correlated_database(3, 150, -0.4, seed=8),
}

ALGORITHMS = [
    ("fagin", FaginA0, (MINIMUM, ARITHMETIC_MEAN)),
    ("fa-min", FaginA0Min, (MINIMUM,)),
    ("threshold", ThresholdAlgorithm, (MINIMUM, ARITHMETIC_MEAN)),
    ("nra", NoRandomAccessAlgorithm, (MINIMUM, ARITHMETIC_MEAN)),
    ("naive", NaiveAlgorithm, (MINIMUM, ARITHMETIC_MEAN)),
    ("early-stop", EarlyStopFagin, (MINIMUM,)),
    ("shrunken", ShrunkenFagin, (MINIMUM,)),
]


def federated_session(db) -> MiddlewareSession:
    """The db's lists behind a batch-capable subsystem, paged at 7."""
    subsystem = SyntheticSubsystem(
        "fed",
        tables={
            f"attr{i}": db.graded_set(i).as_dict()
            for i in range(db.num_lists)
        },
    )
    return MiddlewareSession.over_sources(
        [
            subsystem.evaluate_batched(
                AtomicQuery(f"attr{i}", None, "~"), batch_size=7
            )
            for i in range(db.num_lists)
        ],
        num_objects=db.num_objects,
    )


def sessions_for(db_factory):
    db = db_factory()
    columnar = ColumnarScoringDatabase.from_scoring_database(db)
    unit = MiddlewareSession.over_sources(
        [
            UnbatchedSource(MaterializedSource(f"list-{i}", db.ranking(i)))
            for i in range(db.num_lists)
        ],
        num_objects=db.num_objects,
    )
    return {
        "unit": unit,
        "row": db.session(),
        "columnar": columnar.session(),
        "federated": federated_session(db),
    }


@pytest.mark.parametrize("db_name", DATABASES)
@pytest.mark.parametrize(
    "algo_name,algo_cls,aggregations", ALGORITHMS, ids=lambda a: str(a)
)
def test_three_paths_agree(db_name, algo_name, algo_cls, aggregations):
    for aggregation in aggregations:
        for k in (1, 5, 20):
            results = {
                path: algo_cls().top_k(session, aggregation, k)
                for path, session in sessions_for(DATABASES[db_name]).items()
            }
            unit = results["unit"]
            for path in ("row", "columnar", "federated"):
                other = results[path]
                assert other.items == unit.items, (
                    f"{db_name}/{algo_name}/{aggregation.name}/k={k}: "
                    f"{path} answers diverge from unit-step"
                )
                assert other.stats == unit.stats, (
                    f"{db_name}/{algo_name}/{aggregation.name}/k={k}: "
                    f"{path} access counts diverge from unit-step "
                    f"({other.stats!r} vs {unit.stats!r})"
                )


class _ScalarOnly(AggregationFunction):
    """A kernel-less clone of an aggregation: same answers, scalar fold.

    Its type is not in the kernel registry and it carries no
    ``aggregate_columns``, so every bulk scoring phase falls back to
    the per-object ``evaluate_trusted`` loop — the lane that isolates
    the vectorized computation phase.
    """

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.arity = inner.arity
        self.monotone = inner.monotone
        self.strict = inner.strict

    def aggregate(self, grades):
        return self._inner.aggregate(grades)

    def evaluate_trusted(self, grades):
        return self._inner.evaluate_trusted(grades)


@pytest.mark.parametrize("db_name", DATABASES)
@pytest.mark.parametrize("aggregation", (MINIMUM, ARITHMETIC_MEAN),
                         ids=lambda a: a.name)
def test_threshold_kernel_lane_parity(db_name, aggregation):
    """TA's three lanes — unit access, batched access with the kernel
    sweep, batched access with the scalar fallback — must agree item
    for item and count for count, including on the exhaustion path
    (k past the population, every list drained)."""
    db = DATABASES[db_name]()
    scalar = _ScalarOnly(aggregation)
    # k = N is the exhaustion path: the lists are drained completely.
    for k in (1, 5, 20, db.num_objects):
        sessions = sessions_for(DATABASES[db_name])
        unit = ThresholdAlgorithm().top_k(sessions["unit"], aggregation, k)
        kernel = ThresholdAlgorithm().top_k(
            sessions["columnar"], aggregation, k
        )
        scalar_run = ThresholdAlgorithm().top_k(
            sessions["federated"], scalar, k
        )
        assert kernel.items == unit.items
        assert kernel.stats == unit.stats
        assert scalar_run.items == unit.items
        assert scalar_run.stats == unit.stats
        assert kernel.details["rounds"] == unit.details["rounds"]
        if k == db.num_objects:
            # Full drain: rounds reports the real sorted depth.
            assert unit.details["rounds"] == unit.stats.max_sorted_depth()


def test_fixed_arity_aggregation_still_raises_on_wrong_list_count():
    """The trusted scoring path must not silently drop grades when a
    fixed-arity aggregation meets the wrong number of lists."""
    from repro.core.weights import FaginWimmersWeighting
    from repro.exceptions import AggregationArityError

    weighted = FaginWimmersWeighting(MINIMUM, (0.7, 0.3))  # arity 2
    db = independent_database(3, 30, seed=2)
    with pytest.raises(AggregationArityError):
        FaginA0().top_k(db.session(), weighted, 3)


def test_top_k_of_zero_k_returns_empty():
    from repro.algorithms.base import top_k_of

    assert top_k_of({"a": 0.5, "b": 0.9}, 0) == ()


@pytest.mark.parametrize("db_name", DATABASES)
def test_incremental_fagin_resumes_identically(db_name):
    cursors = {
        path: IncrementalFagin(session, MINIMUM)
        for path, session in sessions_for(DATABASES[db_name]).items()
    }
    for batch_index in range(4):
        batches = {
            path: cursor.next_batch(6) for path, cursor in cursors.items()
        }
        unit = batches["unit"]
        for path in ("row", "columnar", "federated"):
            other = batches[path]
            assert other.items == unit.items, (
                f"{db_name} batch {batch_index}: {path} answers diverge"
            )
            assert other.stats == unit.stats, (
                f"{db_name} batch {batch_index}: {path} per-batch access "
                f"deltas diverge ({other.stats!r} vs {unit.stats!r})"
            )
    for path in ("row", "columnar", "federated"):
        assert cursors[path].returned == cursors["unit"].returned
