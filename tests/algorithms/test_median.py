"""Tests for the Remark 6.1 median algorithm."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.fa import FaginA0
from repro.algorithms.median import MedianTopK, median_subset_size
from repro.core.means import MEDIAN
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database


class TestSubsetSize:
    @pytest.mark.parametrize("m,r", [(3, 2), (4, 3), (5, 3), (7, 4)])
    def test_values(self, m, r):
        assert median_subset_size(m) == r

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            median_subset_size(0)


class TestCorrectness:
    def test_matches_ground_truth_m3(self, db3):
        truth = db3.overall_grades(MEDIAN)
        result = MedianTopK().top_k(db3.session(), MEDIAN, 8)
        assert is_valid_top_k(result.items, truth, 8)

    def test_many_seeds_m3(self):
        for seed in range(15):
            db = independent_database(3, 60, seed=seed)
            truth = db.overall_grades(MEDIAN)
            result = MedianTopK().top_k(db.session(), MEDIAN, 4)
            assert is_valid_top_k(result.items, truth, 4), f"seed {seed}"

    def test_m4_lower_median(self):
        db = independent_database(4, 60, seed=3)
        truth = db.overall_grades(MEDIAN)
        result = MedianTopK().top_k(db.session(), MEDIAN, 5)
        assert is_valid_top_k(result.items, truth, 5)

    def test_m5(self):
        db = independent_database(5, 40, seed=9)
        truth = db.overall_grades(MEDIAN)
        result = MedianTopK().top_k(db.session(), MEDIAN, 3)
        assert is_valid_top_k(result.items, truth, 3)

    def test_rejects_non_median_aggregation(self, db3):
        with pytest.raises(ValueError, match="median"):
            MedianTopK().top_k(db3.session(), MINIMUM, 3)

    def test_rejects_two_lists(self, db2):
        with pytest.raises(ValueError, match="3 lists"):
            MedianTopK().top_k(db2.session(), MEDIAN, 3)


class TestStructure:
    def test_three_subset_runs_for_m3(self, db3):
        result = MedianTopK().top_k(db3.session(), MEDIAN, 5)
        assert result.details["subset_runs"] == 3  # C(3, 2)

    def test_candidate_union_bounded_by_runs_times_k(self, db3):
        result = MedianTopK().top_k(db3.session(), MEDIAN, 5)
        assert result.details["candidates"] <= 3 * 5


class TestCost:
    def test_beats_generic_a0_on_median(self):
        """Remark 6.1's point: O(sqrt(Nk)) beats A0's N^(2/3) shape.

        (A0 is still *correct* for the median — it is monotone — just
        slower; the remark's construction wins asymptotically.)
        """
        db = independent_database(3, 3000, seed=11)
        med = MedianTopK().top_k(db.session(), MEDIAN, 5)
        a0 = FaginA0().top_k(db.session(), MEDIAN, 5)
        assert med.stats.sum_cost < a0.stats.sum_cost

    def test_cost_grows_sublinearly(self):
        costs = {}
        for n in (500, 4500):
            db = independent_database(3, n, seed=13)
            costs[n] = MedianTopK().top_k(db.session(), MEDIAN, 4).stats.sum_cost
        # sqrt scaling: 9x the objects ~ 3x the cost, certainly < 5x.
        assert costs[4500] < 5 * costs[500]
