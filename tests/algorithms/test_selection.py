"""Tests for the algorithm-selection table."""

import pytest

from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.median import MedianTopK
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.selection import choose_algorithm
from repro.core.aggregation import FunctionAggregation
from repro.core.means import ARITHMETIC_MEAN, MEDIAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM


class TestDecisionTable:
    def test_max_goes_to_b0(self):
        choice = choose_algorithm(MAXIMUM, 2)
        assert isinstance(choice.algorithm, DisjunctionB0)
        assert "B0" in choice.reason or "disjunction" in choice.reason

    def test_median_m3_goes_to_median_alg(self):
        choice = choose_algorithm(MEDIAN, 3)
        assert isinstance(choice.algorithm, MedianTopK)

    def test_median_m2_falls_back(self):
        """The subset construction needs >= 3 lists; median of 2 is
        monotone, so generic A0 applies."""
        choice = choose_algorithm(MEDIAN, 2)
        assert isinstance(choice.algorithm, FaginA0)

    def test_min_goes_to_a0_prime(self):
        choice = choose_algorithm(MINIMUM, 2)
        assert isinstance(choice.algorithm, FaginA0Min)

    def test_other_monotone_goes_to_a0(self):
        for agg in (ALGEBRAIC_PRODUCT, ARITHMETIC_MEAN):
            choice = choose_algorithm(agg, 2)
            assert isinstance(choice.algorithm, FaginA0), agg.name

    def test_non_monotone_goes_to_naive(self):
        bad = FunctionAggregation(
            lambda *g: 1.0 - min(g), "anti", monotone=False
        )
        choice = choose_algorithm(bad, 2)
        assert isinstance(choice.algorithm, NaiveAlgorithm)

    def test_reasons_cite_the_paper(self):
        assert "Theorem" in choose_algorithm(MINIMUM, 2).reason
        assert "Remark 6.1" in choose_algorithm(MAXIMUM, 2).reason

    def test_rejects_zero_lists(self):
        with pytest.raises(ValueError):
            choose_algorithm(MINIMUM, 0)

    def test_name_property(self):
        assert choose_algorithm(MINIMUM, 2).name == "A0-prime"
