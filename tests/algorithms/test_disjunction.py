"""Tests for algorithm B0 (Theorem 4.5, Remark 6.1)."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.disjunction import DisjunctionB0
from repro.core.tconorms import ALGEBRAIC_SUM, MAXIMUM
from repro.workloads.skeletons import independent_database


class TestCorrectness:
    def test_tiny_known_answers(self, tiny_db):
        # max grades: a=0.9, b=0.7, c=0.4, d=0.8, e=0.95 -> top2: e, a
        result = DisjunctionB0().top_k(tiny_db.session(), MAXIMUM, 2)
        assert result.objects() == ("e", "a")
        assert result.grades() == (0.95, 0.9)

    def test_matches_ground_truth(self, db2):
        truth = db2.overall_grades(MAXIMUM)
        result = DisjunctionB0().top_k(db2.session(), MAXIMUM, 10)
        assert is_valid_top_k(result.items, truth, 10)

    def test_three_lists(self, db3):
        truth = db3.overall_grades(MAXIMUM)
        result = DisjunctionB0().top_k(db3.session(), MAXIMUM, 8)
        assert is_valid_top_k(result.items, truth, 8)

    def test_many_seeds(self):
        for seed in range(20):
            db = independent_database(2, 60, seed=seed)
            truth = db.overall_grades(MAXIMUM)
            result = DisjunctionB0().top_k(db.session(), MAXIMUM, 5)
            assert is_valid_top_k(result.items, truth, 5), f"seed {seed}"

    def test_returned_grades_are_exact(self, db2):
        """h(y) = mu(y) for every returned object (the docstring claim)."""
        truth = db2.overall_grades(MAXIMUM)
        result = DisjunctionB0().top_k(db2.session(), MAXIMUM, 10)
        for item in result.items:
            assert item.grade == pytest.approx(truth.grade(item.obj))

    def test_rejects_non_max(self, tiny_db):
        with pytest.raises(ValueError, match="max"):
            DisjunctionB0().top_k(tiny_db.session(), ALGEBRAIC_SUM, 1)


class TestCost:
    def test_exactly_mk_sorted_accesses(self):
        """Remark 6.1: 'middleware cost only mk, independent of N!'"""
        for n in (100, 1000, 5000):
            db = independent_database(2, n, seed=1)
            result = DisjunctionB0().top_k(db.session(), MAXIMUM, 10)
            assert result.stats.sorted_cost == 2 * 10
            assert result.stats.random_cost == 0

    def test_cost_scales_with_k_not_n(self):
        db = independent_database(3, 500, seed=2)
        r5 = DisjunctionB0().top_k(db.session(), MAXIMUM, 5)
        r20 = DisjunctionB0().top_k(db.session(), MAXIMUM, 20)
        assert r5.stats.sum_cost == 15
        assert r20.stats.sum_cost == 60

    def test_k_equals_n_caps_at_list_length(self, tiny_db):
        result = DisjunctionB0().top_k(tiny_db.session(), MAXIMUM, 5)
        assert result.stats.sorted_cost == 10  # 2 lists * 5 objects
        assert is_valid_top_k(
            result.items, tiny_db.overall_grades(MAXIMUM), 5
        )

    def test_union_size_detail(self, db2):
        result = DisjunctionB0().top_k(db2.session(), MAXIMUM, 10)
        assert 10 <= result.details["union_size"] <= 20
