"""Tests for the naive linear baseline (Section 4)."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.naive import NaiveAlgorithm
from repro.core.means import MEDIAN
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database


class TestCorrectness:
    def test_tiny_known_answers(self, tiny_db):
        result = NaiveAlgorithm().top_k(tiny_db.session(), MINIMUM, 2)
        assert result.objects() == ("b", "a")
        assert result.grades() == (0.6, 0.5)

    def test_matches_ground_truth(self, db2):
        result = NaiveAlgorithm().top_k(db2.session(), MINIMUM, 10)
        assert is_valid_top_k(result.items, db2.overall_grades(MINIMUM), 10)

    def test_works_for_non_t_norm_aggregations(self, db3):
        result = NaiveAlgorithm().top_k(db3.session(), MEDIAN, 5)
        assert is_valid_top_k(result.items, db3.overall_grades(MEDIAN), 5)

    def test_k_equals_n(self, tiny_db):
        result = NaiveAlgorithm().top_k(tiny_db.session(), MINIMUM, 5)
        assert result.k == 5

    def test_heap_selection_matches_full_sort_ground_truth(self, db3):
        """naive now selects with heapq.nlargest semantics instead of
        sorting all N aggregate grades; the result must still equal the
        ScoringDatabase ground truth (a full deterministic sort),
        item for item and grade for grade."""
        for k in (1, 7, 50, 200):
            result = NaiveAlgorithm().top_k(db3.session(), MINIMUM, k)
            assert result.items == db3.true_top_k(MINIMUM, k)


class TestCost:
    def test_exactly_m_times_n_sorted_accesses(self, db2):
        """The headline linear cost: m*N sorted, 0 random."""
        result = NaiveAlgorithm().top_k(db2.session(), MINIMUM, 1)
        assert result.stats.sorted_cost == 2 * 300
        assert result.stats.random_cost == 0

    def test_cost_independent_of_k(self, db2):
        r1 = NaiveAlgorithm().top_k(db2.session(), MINIMUM, 1)
        r50 = NaiveAlgorithm().top_k(db2.session(), MINIMUM, 50)
        assert r1.stats.sum_cost == r50.stats.sum_cost

    def test_details_report_scan_size(self, tiny_db):
        result = NaiveAlgorithm().top_k(tiny_db.session(), MINIMUM, 1)
        assert result.details["objects_scanned"] == 5


class TestModelViolation:
    def test_missing_object_in_one_list_detected(self):
        """Sources violating the every-list-grades-every-object model."""
        from repro.access.session import MiddlewareSession
        from repro.access.source import MaterializedSource

        sources = [
            MaterializedSource("l0", {"a": 0.5, "b": 0.4}),
            MaterializedSource("l1", {"a": 0.5}),  # b missing
        ]
        session = MiddlewareSession.over_sources(sources, num_objects=2)
        with pytest.raises(ValueError, match="missing from list"):
            NaiveAlgorithm().top_k(session, MINIMUM, 1)


class TestAsOracle:
    def test_agrees_with_direct_computation(self):
        db = independent_database(3, 80, seed=123)
        result = NaiveAlgorithm().top_k(db.session(), MINIMUM, 8)
        expected = db.true_top_k(MINIMUM, 8)
        assert set(result.grades()) == {it.grade for it in expected}
