"""Edge case: m = 1 — a single atomic query.

The formal model permits m = 1 (the query *is* one ranked list); every
applicable algorithm must degrade gracefully to "read the top k".
"""

import pytest

from repro.access.scoring_database import ScoringDatabase
from repro.algorithms.base import is_valid_top_k
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0, IncrementalFagin
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM


@pytest.fixture
def single_list_db():
    return ScoringDatabase(
        [{f"o{i}": (50 - i) / 50 for i in range(50)}]
    )


SINGLE_LIST_ALGORITHMS = (
    NaiveAlgorithm(),
    FaginA0(),
    FaginA0Min(),
    ThresholdAlgorithm(),
    NoRandomAccessAlgorithm(),
)


@pytest.mark.parametrize(
    "alg", SINGLE_LIST_ALGORITHMS, ids=lambda a: a.name
)
class TestSingleList:
    def test_correct(self, alg, single_list_db):
        truth = single_list_db.overall_grades(MINIMUM)
        result = alg.top_k(single_list_db.session(), MINIMUM, 5)
        assert is_valid_top_k(result.items, truth, 5)

    def test_no_random_access_needed(self, alg, single_list_db):
        """With one list, sorted access alone determines everything."""
        result = alg.top_k(single_list_db.session(), MINIMUM, 5)
        assert result.stats.random_cost == 0


class TestSingleListCosts:
    def test_fa_reads_exactly_k(self, single_list_db):
        """m=1: a match is just an appearance, so T = k."""
        result = FaginA0().top_k(single_list_db.session(), MINIMUM, 5)
        assert result.stats.sorted_cost == 5

    def test_b0_single_list(self, single_list_db):
        truth = single_list_db.overall_grades(MAXIMUM)
        result = DisjunctionB0().top_k(single_list_db.session(), MAXIMUM, 5)
        assert is_valid_top_k(result.items, truth, 5)
        assert result.stats.sorted_cost == 5

    def test_incremental_single_list(self, single_list_db):
        inc = IncrementalFagin(single_list_db.session(), MINIMUM)
        first = inc.next_batch(3)
        second = inc.next_batch(3)
        grades = list(first.grades()) + list(second.grades())
        assert grades == sorted(grades, reverse=True)
        assert len(set(first.objects()) | set(second.objects())) == 6
