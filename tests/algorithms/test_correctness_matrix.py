"""Cross-algorithm correctness matrix.

Every (algorithm, applicable aggregation, m, k) combination is checked
against the naive oracle on freshly drawn random databases — the
library-wide safety net that any change to an algorithm's bookkeeping
must pass.
"""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.fa_variants import EarlyStopFagin, ShrunkenFagin
from repro.algorithms.median import MedianTopK
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.algorithms.ullman import UllmanAlgorithm
from repro.core.means import ARITHMETIC_MEAN, GEOMETRIC_MEAN, MEDIAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import (
    ALGEBRAIC_PRODUCT,
    BOUNDED_DIFFERENCE,
    EINSTEIN_PRODUCT,
    HAMACHER_PRODUCT,
    MINIMUM,
)
from repro.workloads.distributions import Beta, Crisp, PowerLaw, Uniform
from repro.workloads.skeletons import independent_database

# (algorithm factory, aggregations it must handle)
MATRIX = [
    (NaiveAlgorithm, [MINIMUM, MAXIMUM, MEDIAN, ARITHMETIC_MEAN]),
    (
        FaginA0,
        [
            MINIMUM,
            ALGEBRAIC_PRODUCT,
            BOUNDED_DIFFERENCE,
            EINSTEIN_PRODUCT,
            HAMACHER_PRODUCT,
            ARITHMETIC_MEAN,
            GEOMETRIC_MEAN,
            MAXIMUM,  # monotone, so A0 applies (just not optimal)
            MEDIAN,
        ],
    ),
    (FaginA0Min, [MINIMUM]),
    (EarlyStopFagin, [MINIMUM, ALGEBRAIC_PRODUCT, ARITHMETIC_MEAN]),
    (ShrunkenFagin, [MINIMUM, ALGEBRAIC_PRODUCT, ARITHMETIC_MEAN]),
    (DisjunctionB0, [MAXIMUM]),
    (ThresholdAlgorithm, [MINIMUM, ALGEBRAIC_PRODUCT, ARITHMETIC_MEAN]),
    (UllmanAlgorithm, [MINIMUM, ALGEBRAIC_PRODUCT]),
]

CASES = [
    pytest.param(factory, agg, id=f"{factory().name}-{agg.name}")
    for factory, aggs in MATRIX
    for agg in aggs
]


@pytest.mark.parametrize("factory,aggregation", CASES)
@pytest.mark.parametrize("m,k", [(2, 1), (2, 5), (3, 3)])
def test_algorithm_matches_oracle(factory, aggregation, m, k):
    for seed in range(5):
        db = independent_database(m, 64, seed=1000 * m + 10 * k + seed)
        truth = db.overall_grades(aggregation)
        result = factory().top_k(db.session(), aggregation, k)
        assert is_valid_top_k(result.items, truth, k), (
            f"{factory().name} / {aggregation.name} wrong at "
            f"m={m}, k={k}, seed={seed}"
        )


def test_median_algorithm_against_oracle():
    for m in (3, 4):
        for seed in range(5):
            db = independent_database(m, 48, seed=seed)
            truth = db.overall_grades(MEDIAN)
            result = MedianTopK().top_k(db.session(), MEDIAN, 4)
            assert is_valid_top_k(result.items, truth, 4)


@pytest.mark.parametrize(
    "distribution",
    [Uniform(), Beta(2, 5), PowerLaw(3.0), Crisp(0.3)],
    ids=lambda d: d.name,
)
def test_fa_under_varied_grade_distributions(distribution):
    """Ties (Crisp) and skew (PowerLaw/Beta) must not break A0."""
    for seed in range(5):
        db = independent_database(2, 64, seed=seed, distribution=distribution)
        truth = db.overall_grades(MINIMUM)
        result = FaginA0().top_k(db.session(), MINIMUM, 5)
        assert is_valid_top_k(result.items, truth, 5)


def test_all_algorithms_same_grades_different_tiebreaks():
    """All applicable algorithms agree on the top-k grade multiset."""
    db = independent_database(2, 128, seed=9)
    k = 7
    grades = None
    for alg in (
        NaiveAlgorithm(),
        FaginA0(),
        FaginA0Min(),
        EarlyStopFagin(),
        ShrunkenFagin(),
        ThresholdAlgorithm(),
        UllmanAlgorithm(),
    ):
        result = alg.top_k(db.session(), MINIMUM, k)
        got = sorted(result.grades())
        if grades is None:
            grades = got
        else:
            assert got == pytest.approx(grades), alg.name
