"""Tests for the Threshold Algorithm extension (E15 ablation)."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.fa import FaginA0
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.core.aggregation import FunctionAggregation
from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.workloads.skeletons import independent_database


class TestCorrectness:
    def test_tiny_known_answers(self, tiny_db):
        result = ThresholdAlgorithm().top_k(tiny_db.session(), MINIMUM, 2)
        assert result.objects() == ("b", "a")

    @pytest.mark.parametrize(
        "aggregation",
        [MINIMUM, ALGEBRAIC_PRODUCT, ARITHMETIC_MEAN],
        ids=lambda a: a.name,
    )
    def test_matches_ground_truth(self, db2, aggregation):
        truth = db2.overall_grades(aggregation)
        result = ThresholdAlgorithm().top_k(db2.session(), aggregation, 10)
        assert is_valid_top_k(result.items, truth, 10)

    def test_three_lists(self, db3):
        truth = db3.overall_grades(MINIMUM)
        result = ThresholdAlgorithm().top_k(db3.session(), MINIMUM, 6)
        assert is_valid_top_k(result.items, truth, 6)

    def test_many_seeds(self):
        for seed in range(20):
            db = independent_database(2, 70, seed=seed)
            truth = db.overall_grades(MINIMUM)
            result = ThresholdAlgorithm().top_k(db.session(), MINIMUM, 5)
            assert is_valid_top_k(result.items, truth, 5), f"seed {seed}"

    def test_k_equals_n(self, tiny_db):
        result = ThresholdAlgorithm().top_k(tiny_db.session(), MINIMUM, 5)
        assert is_valid_top_k(
            result.items, tiny_db.overall_grades(MINIMUM), 5
        )

    def test_rejects_non_monotone(self, tiny_db):
        bad = FunctionAggregation(lambda *g: 0.5, "flat", monotone=False)
        with pytest.raises(ValueError, match="monotone"):
            ThresholdAlgorithm().top_k(tiny_db.session(), bad, 1)


class TestStoppingBehaviour:
    def test_threshold_detail_is_sound(self, db2):
        """At stop, k answers have grades >= the final threshold."""
        result = ThresholdAlgorithm().top_k(db2.session(), MINIMUM, 10)
        tau = result.details["threshold"]
        assert all(item.grade >= tau - 1e-12 for item in result.items)

    def test_depth_detail(self, db2):
        result = ThresholdAlgorithm().top_k(db2.session(), MINIMUM, 5)
        assert result.stats.max_sorted_depth() == result.details["rounds"]

    def test_exhaustion_round_not_counted(self):
        """Regression: the final empty exchange (every list exhausted)
        performs no sorted accesses and must not inflate ``rounds`` —
        the detail reports depths actually reached, so it equals the
        maximum per-list sorted depth even on an exhausted-lists query.

        The middleware believes more objects exist than the lists
        deliver (a subsystem under-covering the population), which is
        exactly the situation that forces TA through its exhaustion
        round: the stop rule can never certify k answers, so the run
        terminates on an exchange that delivers nothing.
        """
        from repro.access import MaterializedSource, MiddlewareSession

        n = 12
        grades = {i: (n - i) / (n + 1) for i in range(n)}
        session = MiddlewareSession.over_sources(
            [
                MaterializedSource("l0", dict(grades)),
                MaterializedSource("l1", dict(grades)),
            ],
            num_objects=n + 5,
        )
        result = ThresholdAlgorithm().top_k(session, MINIMUM, n + 3)
        assert result.details["rounds"] == n
        assert result.stats.max_sorted_depth() == n
        assert result.details["seen"] == n

    def test_full_drain_rounds_equal_depth(self, tiny_db):
        """k = N drains the lists completely; rounds still reports the
        true sorted depth (no phantom exhaustion round)."""
        n = tiny_db.num_objects
        result = ThresholdAlgorithm().top_k(tiny_db.session(), MINIMUM, n)
        assert result.details["rounds"] == result.stats.max_sorted_depth()


class TestAblationVsFA:
    def test_never_dramatically_worse_than_a0(self):
        """TA's adaptive stop: same order of magnitude as A0 or better."""
        for seed in range(5):
            db = independent_database(2, 1000, seed=seed)
            fa = FaginA0().top_k(db.session(), MINIMUM, 10)
            ta = ThresholdAlgorithm().top_k(db.session(), MINIMUM, 10)
            assert ta.stats.sum_cost <= 3 * fa.stats.sum_cost

    def test_wins_on_aligned_lists(self):
        """When lists agree, TA stops almost immediately; FA must still
        wait for k full matches (same here) — TA never needs more
        sorted depth than FA on identical rankings."""
        from repro.access.scoring_database import ScoringDatabase

        grades = {i: (100 - i) / 100 for i in range(1, 101)}
        db = ScoringDatabase([dict(grades), dict(grades)])
        fa = FaginA0().top_k(db.session(), MINIMUM, 5)
        ta = ThresholdAlgorithm().top_k(db.session(), MINIMUM, 5)
        assert ta.stats.max_sorted_depth() <= fa.stats.max_sorted_depth()
